//! Validating Metered Latency (§4.4) against a true open-loop queue.
//!
//! "In a real system, request/event start times are externally defined, so
//! a delay will affect not only all running events, but all subsequent
//! events that are forced to wait in the queue ... Without a queue,
//! DaCapo's workloads cannot directly model the cascading effect of
//! delays." The simulation *can* build that queue: this example replays
//! the identical request set open-loop (uniform arrivals, FIFO service)
//! and compares the resulting latency distribution against the simple and
//! metered measures computed from the closed-loop run.
//!
//! ```text
//! cargo run --release --example metered_vs_open_loop
//! ```

use chopin::core::latency::{
    events_of, metered_latencies, simple_latencies, LatencyDistribution, SmoothingWindow,
};
use chopin::core::Suite;
use chopin::runtime::collector::CollectorKind;
use chopin::runtime::requests::replay_open_loop;
use chopin::workloads::SizeClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = Suite::chopin();
    let bench = suite.benchmark("spring").expect("in the suite");
    let spec = bench
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default size")?;
    let requests = spec.requests().expect("latency-sensitive");

    println!(
        "{:<10} {:>22} {:>22} {:>22}",
        "collector", "simple p50/p99/p99.9", "metered p50/p99/p99.9", "open p50/p99/p99.9"
    );
    for collector in [
        CollectorKind::Serial,
        CollectorKind::G1,
        CollectorKind::Shenandoah,
    ] {
        let runs = bench
            .runner()
            .collector(collector)
            .heap_factor(2.0)
            .iterations(2)
            .run()?;
        let timed = runs.timed();
        let closed = events_of(timed, Some(requests)).expect("events");
        let open = replay_open_loop(timed.progress(), requests, timed.config().seed());

        let fmt = |d: &LatencyDistribution| {
            format!(
                "{:.1}/{:.1}/{:.1}ms",
                d.percentile(50.0),
                d.percentile(99.0),
                d.percentile(99.9)
            )
        };
        let simple =
            LatencyDistribution::from_durations(simple_latencies(&closed)).expect("non-empty");
        let metered =
            LatencyDistribution::from_durations(metered_latencies(&closed, SmoothingWindow::Full))
                .expect("non-empty");
        let open_dist =
            LatencyDistribution::from_durations(simple_latencies(&open)).expect("non-empty");
        println!(
            "{:<10} {:>22} {:>22} {:>22}",
            collector.to_string(),
            fmt(&simple),
            fmt(&metered),
            fmt(&open_dist),
        );
    }
    println!(
        "\nMetered latency sits between simple latency and the open-loop truth at\n\
         the median and mid percentiles, where the smoothing charges queued\n\
         work to delayed events. At the extreme tail the open-loop queue at\n\
         full load compounds in a way no post-hoc start-time adjustment can\n\
         recover — the residual realism the paper concedes when it says the\n\
         workloads 'cannot directly model the cascading effect of delays'."
    );
    Ok(())
}
