//! A quantitative rendition of Figure 2 (Cheng & Blelloch): several short
//! pauses can hurt user-experienced latency as much as — or more than —
//! one long pause, which is why pause time must not be used as a latency
//! proxy (§4.4).
//!
//! ```text
//! cargo run --release --example pause_clustering
//! ```

use chopin::core::latency::{metered_latencies, LatencyDistribution, SmoothingWindow};
use chopin::runtime::progress::ProgressTrace;
use chopin::runtime::requests::{extract_events, RequestEvent};
use chopin::runtime::spec::RequestProfile;
use chopin::runtime::time::{SimDuration, SimTime};

/// Build a trace with the given pauses (start-ms, length-ms) inside a
/// 1-second run, and return its request events.
fn events_with_pauses(pauses: &[(u64, u64)]) -> Vec<RequestEvent> {
    let mut trace = ProgressTrace::new();
    let total_ms = 1000;
    let mut t = 0u64;
    for &(at, len) in pauses {
        trace.push(
            SimTime::from_nanos(t * 1_000_000),
            SimTime::from_nanos(at * 1_000_000),
            1.0,
        );
        trace.push(
            SimTime::from_nanos(at * 1_000_000),
            SimTime::from_nanos((at + len) * 1_000_000),
            0.0,
        );
        t = at + len;
    }
    trace.push(
        SimTime::from_nanos(t * 1_000_000),
        SimTime::from_nanos((total_ms + t) * 1_000_000),
        1.0,
    );
    let profile = RequestProfile {
        count: 10_000,
        workers: 1,
        dispersion: 0.0,
    };
    extract_events(&trace, &profile, 7)
}

fn report(label: &str, events: &[RequestEvent]) {
    let metered = metered_latencies(
        events,
        SmoothingWindow::Duration(SimDuration::from_millis(100)),
    );
    let dist = LatencyDistribution::from_durations(metered).expect("non-empty");
    println!(
        "{label:<36} max pause is the same story, but p99 {:>8.3}ms  p99.9 {:>8.3}ms",
        dist.percentile(99.0),
        dist.percentile(99.9)
    );
}

fn main() {
    // One 40ms pause vs. eight 5ms pauses in quick succession: total pause
    // time is identical; the naive "max pause" metric says the second
    // schedule is 8x better.
    let single = events_with_pauses(&[(500, 40)]);
    let clustered: Vec<(u64, u64)> = (0..8).map(|i| (500 + i * 7, 5)).collect();
    let clustered = events_with_pauses(&clustered);

    println!("total pause time: 40ms in both schedules\n");
    report("one 40ms pause:", &single);
    report("eight 5ms pauses, 2ms apart:", &clustered);
    println!(
        "\nThe clustered schedule leaves the mutator almost no time to drain its\n\
         queue between pauses, so user-experienced latency is comparable or\n\
         worse, despite a 'max pause' metric 8x smaller (Figure 2's point)."
    );
}
