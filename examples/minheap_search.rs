//! Empirically determine minimum heap sizes (recommendation H2) and
//! compare them with the suite's nominal GMD statistics — including the
//! compressed-pointer penalty that keeps ZGC out of the small-heap region
//! of Figure 1.
//!
//! ```text
//! cargo run --release --example minheap_search
//! ```

use chopin::core::minheap::MinHeapSearch;
use chopin::runtime::collector::CollectorKind;
use chopin::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<12} {:>12} {:>14} {:>14}",
        "benchmark", "nominal GMD", "measured (G1)", "measured (ZGC)"
    );
    for name in ["fop", "lusearch", "jython", "pmd"] {
        let profile = suite::by_name(name).expect("known benchmark");
        let g1 = MinHeapSearch::default().find(&profile)?;
        let zgc = MinHeapSearch {
            collector: CollectorKind::Zgc,
            ..Default::default()
        }
        .find(&profile)?;
        println!(
            "{:<12} {:>9} MB {:>11.1} MB {:>11.1} MB",
            name,
            profile.min_heap_default_mb,
            g1 as f64 / (1 << 20) as f64,
            zgc as f64 / (1 << 20) as f64,
        );
    }
    println!("\nZGC cannot use compressed pointers, so its minimum heaps are larger\nby roughly each workload's GMU/GMD ratio (§2).");
    Ok(())
}
