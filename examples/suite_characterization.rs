//! Explore the suite's integrated workload characterisation: nominal
//! statistics, scores and the diversity PCA (§5).
//!
//! ```text
//! cargo run --release --example suite_characterization
//! ```

use chopin::core::nominal::{metric_ranking, score_table, suite_pca, TABLE2_METRICS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §5.1's worked example: lusearch's allocation rate.
    let lusearch = score_table("lusearch").expect("in the suite");
    let ara = lusearch.iter().find(|s| s.code == "ARA").expect("scored");
    println!(
        "lusearch ARA = {} MB/s: rank {} of {}, score {}",
        ara.value, ara.rank, ara.of, ara.score
    );

    println!("\nallocation-rate ranking (top 5):");
    for (bench, value, rank) in metric_ranking("ARA").expect("ARA exists").iter().take(5) {
        println!("  {rank}. {bench:<10} {value} MB/s");
    }

    let (benchmarks, metrics, pca) = suite_pca()?;
    let ratios = pca.explained_variance_ratio();
    println!(
        "\nPCA over {} complete metrics: PC1 {:.0}%, PC2 {:.0}%, PC3 {:.0}%, PC4 {:.0}% \
         (cumulative {:.0}%)",
        metrics.len(),
        ratios[0] * 100.0,
        ratios[1] * 100.0,
        ratios[2] * 100.0,
        ratios[3] * 100.0,
        pca.cumulative_explained_variance(4) * 100.0
    );

    // The two most extreme benchmarks along PC1 — maximally dissimilar
    // workloads.
    let mut by_pc1: Vec<(&str, f64)> = benchmarks
        .iter()
        .zip(pca.scores())
        .map(|(b, s)| (*b, s[0]))
        .collect();
    by_pc1.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!(
        "most dissimilar along PC1: {} ({:+.2}) vs {} ({:+.2})",
        by_pc1.first().expect("non-empty").0,
        by_pc1.first().expect("non-empty").1,
        by_pc1.last().expect("non-empty").0,
        by_pc1.last().expect("non-empty").1
    );
    println!(
        "\nTable 2's twelve most determinant metrics: {}",
        TABLE2_METRICS.join(" ")
    );
    Ok(())
}
