//! §6.4's architectural-sensitivity analysis: the paper explores four
//! workloads — biojava, jython, xalan and h2o — whose published
//! microarchitectural statistics explain their very different sensitivities
//! to frequency, memory speed and cache size. This example prints the
//! published statistics and re-runs the §6.1.3 sensitivity experiments on
//! the simulated runtime.
//!
//! ```text
//! cargo run --release --example architectural_sensitivity
//! ```

use chopin::core::characterize::{characterize, CharacterizeConfig};
use chopin::core::nominal::row;
use chopin::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CharacterizeConfig::default();
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} | {:>10} {:>10} {:>10}",
        "workload", "UIP", "UDC", "ULL", "USB", "PFS m/p", "PMS m/p", "PLS m/p"
    );
    for name in ["biojava", "jython", "xalan", "h2o"] {
        let published = row(name).expect("in dataset");
        let stats = characterize(&suite::by_name(name).expect("in suite"), &config)?;
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>6} | {:>5.1}/{:<4} {:>5.1}/{:<4} {:>5.1}/{:<4}",
            name,
            published.value("UIP").unwrap_or(f64::NAN),
            published.value("UDC").unwrap_or(f64::NAN),
            published.value("ULL").unwrap_or(f64::NAN),
            published.value("USB").unwrap_or(f64::NAN),
            stats.freq_speedup_pct,
            published.value("PFS").unwrap_or(f64::NAN),
            stats.slow_memory_slowdown_pct,
            published.value("PMS").unwrap_or(f64::NAN),
            stats.reduced_llc_slowdown_pct,
            published.value("PLS").unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nThe paper's reading (§6.4): biojava's IPC of 4.76 marks a highly tuned\n\
         computational workload, insensitive to memory but responsive to clock\n\
         frequency; jython lives in a small, poorly predicted interpreter loop\n\
         (frequency-bound, cache-insensitive); xalan and h2o are memory-bound —\n\
         high cache and DTLB miss rates, low IPC — so slower DRAM and a smaller\n\
         LLC hurt them where frequency barely helps."
    );
    Ok(())
}
