//! Quickstart: run one benchmark on the simulated runtime and print the
//! numbers the paper's methodology cares about.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chopin::core::Suite;
use chopin::runtime::collector::CollectorKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = Suite::chopin();
    println!("DaCapo Chopin (simulated): {} benchmarks", suite.len());

    let bench = suite.benchmark("fop").expect("fop is in the suite");
    println!(
        "running fop: {} (nominal min heap {} MB)",
        bench.profile().description,
        bench.profile().min_heap_default_mb
    );

    // The paper's baseline methodology (§6.1): default collector (G1),
    // 2 x the nominal minimum heap, five iterations timing the last.
    let runs = bench
        .runner()
        .collector(CollectorKind::G1)
        .heap_factor(2.0)
        .iterations(5)
        .run()?;

    for (i, r) in runs.iterations().iter().enumerate() {
        println!(
            "  iteration {}: wall {}, task clock {}, {} collections",
            i + 1,
            r.wall_time(),
            r.task_clock(),
            r.telemetry().gc_count
        );
    }
    let timed = runs.timed();
    println!("timed (last) iteration:");
    println!("  wall time        {}", timed.wall_time());
    println!("  task clock       {}", timed.task_clock());
    println!(
        "  STW pause total  {}",
        timed.telemetry().total_pause_wall()
    );
    println!(
        "  max pause        {}",
        timed
            .telemetry()
            .max_pause()
            .map(|p| p.to_string())
            .unwrap_or_else(|| "none".into())
    );
    Ok(())
}
