//! Compare all five production collectors on one workload across heap
//! sizes — the heart of the paper's motivation (Figure 1 methodology on a
//! single benchmark), showing why both clocks must be reported
//! (recommendation O2).
//!
//! ```text
//! cargo run --release --example gc_comparison
//! ```

use chopin::core::lbo::{Clock, LboAnalysis};
use chopin::core::sweep::{run_sweep, SweepConfig};
use chopin::runtime::collector::CollectorKind;
use chopin::workloads::{suite, SizeClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = suite::by_name("cassandra").expect("cassandra is in the suite");
    let config = SweepConfig {
        collectors: CollectorKind::ALL.to_vec(),
        heap_factors: vec![1.5, 2.0, 3.0, 6.0],
        invocations: 2,
        iterations: 2,
        size: SizeClass::Default,
    };

    println!(
        "sweeping cassandra across {} collectors...",
        config.collectors.len()
    );
    let result = run_sweep(&profile, &config)?;

    for clock in [Clock::Wall, Clock::Task] {
        let lbo = LboAnalysis::compute(&result.samples, clock)?;
        println!("\nlower-bound {clock} overhead (x minheap -> overhead):");
        for (collector, points) in lbo.curves() {
            print!("  {:<9}", collector.to_string());
            for p in points {
                print!("  {:.2}x:{:.3}", p.heap_factor, p.overhead.mean());
            }
            println!();
        }
    }
    println!(
        "\nNote how the concurrent collectors (Shen., ZGC*) look cheap on the wall\n\
         clock but expensive on the task clock: they soak up idle hardware\n\
         threads -- the cassandra effect of Figure 5."
    );
    for f in &result.failures {
        println!(
            "skipped: {} at {:.2}x ({})",
            f.collector, f.heap_factor, f.reason
        );
    }
    Ok(())
}
