//! User-experienced latency on a latency-sensitive workload: simple vs
//! metered latency (§4.4), demonstrating why GC pauses are a poor proxy
//! (recommendations L1/L2).
//!
//! ```text
//! cargo run --release --example latency_analysis
//! ```

use chopin::core::latency::{
    events_of, metered_latencies, simple_latencies, LatencyDistribution, SmoothingWindow,
};
use chopin::core::Suite;
use chopin::runtime::collector::CollectorKind;
use chopin::runtime::time::SimDuration;
use chopin::workloads::SizeClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = Suite::chopin();
    let bench = suite.benchmark("h2").expect("h2 is in the suite");
    let spec = bench
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default size")?;

    for collector in [CollectorKind::Parallel, CollectorKind::Zgc] {
        let runs = bench
            .runner()
            .collector(collector)
            .heap_factor(2.0)
            .iterations(2)
            .run()?;
        let timed = runs.timed();
        let events = events_of(timed, spec.requests()).expect("h2 is latency-sensitive");

        println!("\n== h2 with {collector} at 2.0x heap ==");
        println!(
            "GC pauses: {} pauses, max {} (the *proxy* the paper warns against)",
            timed.telemetry().pauses.len(),
            timed
                .telemetry()
                .max_pause()
                .map(|p| p.to_string())
                .unwrap_or_else(|| "none".into())
        );
        for (name, window) in [
            ("simple latency", SmoothingWindow::None),
            (
                "metered latency (100ms)",
                SmoothingWindow::Duration(SimDuration::from_millis(100)),
            ),
            ("metered latency (full)", SmoothingWindow::Full),
        ] {
            let latencies = match window {
                SmoothingWindow::None => simple_latencies(&events),
                w => metered_latencies(&events, w),
            };
            let dist = LatencyDistribution::from_durations(latencies).expect("events exist");
            print!("{name:<26}");
            for (p, ms) in dist.report() {
                print!("  p{p}: {ms:.2}ms");
            }
            println!();
        }
    }
    Ok(())
}
