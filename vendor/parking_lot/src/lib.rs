//! Offline stub of `parking_lot`: a `Mutex` with parking_lot's poison-free
//! API, implemented over `std::sync::Mutex`.

#![forbid(unsafe_code)]

use std::sync::Mutex as StdMutex;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock matching parking_lot's panic-transparent API:
/// `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex and return the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. Unlike
    /// `std::sync::Mutex`, a panic in another critical section does not
    /// poison the lock (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
