//! Offline stub of `serde`: marker traits plus the no-op derives.
//!
//! Nothing in this workspace serializes data through serde — the derives
//! are forward-looking annotation — so the traits are pure markers and the
//! derive macros (from the sibling `serde_derive` stub) expand to nothing.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
