//! Offline stub of `proptest`: the subset of the API this workspace uses.
//!
//! The real crate shrinks failing inputs and persists regressions; this
//! stub only *generates* — each property runs for `ProptestConfig::cases`
//! deterministic cases seeded from the test name and case index, so
//! failures are reproducible run-to-run. Supported surface: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), `prop_assert!`/`prop_assert_eq!`/`prop_assume!`/`prop_oneof!`,
//! [`Just`], half-open numeric `Range` strategies, tuple strategies up to
//! arity 10, [`Strategy::prop_map`], and [`collection::vec`].

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated; the runner panics with this message.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the runner retries
    /// with a fresh case.
    Reject(String),
}

/// Per-property runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration that runs `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            func: f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

/// Strategy choosing uniformly among alternatives (see [`prop_oneof!`]).
pub struct OneOf<T> {
    /// The candidate strategies.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs alternatives");
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as i128) - (self.start as i128);
                if width <= 0 {
                    return self.start;
                }
                let offset = (rng.next_u64() as u128 % (width as u128)) as i128;
                ((self.start as i128) + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a half-open range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drive one property: run cases until `config.cases` pass, panicking on
/// the first [`TestCaseError::Fail`]. Used by the [`proptest!`] expansion.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut passed: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = (config.cases.max(1) as u64) * 64;
    while passed < config.cases {
        attempt += 1;
        assert!(
            attempt <= max_attempts,
            "property {name}: too many rejected cases ({} passed of {})",
            passed,
            config.cases
        );
        let seed = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt);
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed at case {attempt} (seed {seed:#x}): {msg}")
            }
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a test that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        #[allow(unused_mut, unused_variables, clippy::all)]
        fn $name() {
            let __config = $cfg;
            let __strategy = ( $($strat,)+ );
            $crate::run_property(stringify!($name), &__config, |__rng| {
                let ( $($arg,)+ ) = $crate::Strategy::generate(&__strategy, __rng);
                (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })()
            });
        }
    )*};
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?} == {:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?} == {:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Choose uniformly among the given strategies (all with the same value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![ $( $crate::Strategy::boxed($strat) ),+ ],
        }
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            x in 0u64..100,
            (a, b) in (1i64..10, -5.0f64..5.0),
            v in crate::collection::vec(0u32..7, 2..9),
        ) {
            prop_assert!(x < 100);
            prop_assert!((1..10).contains(&a));
            prop_assert!((-5.0..5.0).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 7));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_and_map_and_assume_work(choice in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assume!(choice != 0);
            let doubled = (0u32..5).prop_map(|n| n * 2);
            let mut rng = crate::TestRng::new(choice as u64);
            let d = doubled.generate(&mut rng);
            prop_assert_eq!(d % 2, 0);
            prop_assert!(choice == 1 || choice == 2);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_seed() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Fail("nope".to_string()))
        });
    }
}
