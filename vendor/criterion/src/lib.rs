//! Offline stub of `criterion`: enough of the API for the workspace's
//! bench targets to compile and run each benchmark body once with a
//! wall-clock report (no statistics engine).

#![forbid(unsafe_code)]

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub runs each body once.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark: the stub times a single invocation.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed_ns: 0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "bench {}/{}: {} iter(s), {:.3} ms total",
            self.name,
            id,
            bencher.iters,
            bencher.elapsed_ns as f64 / 1e6
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Time the routine (a single invocation in this stub).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let _ = f();
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += 1;
    }
}

/// Opaque black box: defeats constant-folding well enough for a stub.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
