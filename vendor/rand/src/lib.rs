//! Offline stub of `rand`: the subset this workspace uses — a seedable
//! small RNG plus `gen`/`gen_range` for the numeric types the simulation
//! draws.
//!
//! [`rngs::SmallRng`] is a SplitMix64 generator: tiny, fast, and with
//! well-mixed output for every 64-bit seed (including 0 and other
//! low-entropy seeds the engine derives from workload names), which is all
//! the deterministic simulation requires.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the type's standard distribution.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable by [`Rng::gen_range`] over a half-open range.
pub trait UniformSampled: Sized {
    /// Draw one value uniformly from `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

impl UniformSampled for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<f64>) -> f64 {
        let f = f64::sample(rng);
        range.start + f * (range.end - range.start)
    }
}

impl UniformSampled for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<f32>) -> f32 {
        let f = f32::sample(rng);
        range.start + f * (range.end - range.start)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<$t>) -> $t {
                let width = (range.end - range.start) as u64;
                if width == 0 {
                    return range.start;
                }
                range.start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.gen_range(1e-12..1.0);
            assert!(f >= 1e-12 && f < 1.0);
            let n = rng.gen_range(4u64..256);
            assert!((4..256).contains(&n));
        }
    }

    #[test]
    fn seeds_determine_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let (x, y, z): (f64, f64, f64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }
}
