//! Offline stub of `serde_derive`: the derive macros expand to nothing.
//!
//! This workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! forward-looking annotation — no code path performs serialization — so
//! empty expansions are sufficient and keep the build self-contained.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
