//! Offline stub of `crossbeam`: scoped threads with crossbeam's API shape,
//! implemented over `std::thread::scope` (stable since Rust 1.63).

#![forbid(unsafe_code)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::thread::ScopedJoinHandle;

    /// A scope handle passed to [`scope`]'s closure and to each spawned
    /// thread's closure (crossbeam's signature).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to this scope. The closure receives the
        /// scope handle, matching crossbeam's `|scope| ...` signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            self.inner.spawn(move || f(&me))
        }
    }

    /// Run `f` with a thread scope; all threads spawned inside are joined
    /// before this returns. The `Result` mirrors crossbeam's signature —
    /// with `std::thread::scope` underneath, a panicking child re-panics at
    /// scope exit rather than surfacing as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_before_return() {
        let counter = AtomicUsize::new(0);
        let r = super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(r.is_ok());
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
