//! Integration: the paper's three case studies (§6.2, §6.3) hold in
//! simulation — cassandra's wall/task divergence, lusearch's Shenandoah
//! pacing collapse, and h2's latency behaviour.

use chopin::core::latency::{
    events_of, metered_latencies, simple_latencies, LatencyDistribution, SmoothingWindow,
};
use chopin::core::Suite;
use chopin::runtime::collector::CollectorKind;
use chopin::workloads::SizeClass;

fn run(bench: &str, collector: CollectorKind, factor: f64) -> chopin::core::IterationSet {
    Suite::chopin()
        .benchmark(bench)
        .expect("in suite")
        .runner()
        .collector(collector)
        .heap_factor(factor)
        .iterations(2)
        .run()
        .expect("completes")
}

#[test]
fn cassandra_task_clock_tells_a_different_story_than_wall_clock() {
    // §6.2: "The wall clock and task clock results are strikingly
    // different ... most likely due to the collectors successfully making
    // use of unused cores, since cassandra itself is not fully utilizing
    // the available hardware."
    let g1 = run("cassandra", CollectorKind::G1, 3.0);
    let zgc = run("cassandra", CollectorKind::Zgc, 3.0);

    let wall_ratio = zgc.timed().wall_time().as_secs_f64() / g1.timed().wall_time().as_secs_f64();
    let task_ratio = zgc.timed().task_clock().as_secs_f64() / g1.timed().task_clock().as_secs_f64();

    assert!(
        wall_ratio < 1.15,
        "ZGC's wall time stays close to G1's (idle cores absorb GC): {wall_ratio:.3}"
    );
    assert!(
        task_ratio > 1.15,
        "but its total CPU is much higher: {task_ratio:.3}"
    );
    assert!(task_ratio > wall_ratio + 0.1);
}

#[test]
fn lusearch_shenandoah_throttles_allocation() {
    // §6.2: "Collectors like Shenandoah throttle the application in cases
    // where the collector can't free memory fast enough ... This has the
    // effect of much worse wall clock time."
    let parallel = run("lusearch", CollectorKind::Parallel, 2.0);
    let shen = run("lusearch", CollectorKind::Shenandoah, 2.0);

    let wall_ratio =
        shen.timed().wall_time().as_secs_f64() / parallel.timed().wall_time().as_secs_f64();
    assert!(
        wall_ratio > 2.0,
        "Shenandoah wall clock is off the chart on lusearch: {wall_ratio:.2}"
    );
    assert!(
        shen.timed().telemetry().throttled_wall.as_nanos() > 0,
        "the pacer must have engaged"
    );

    // The task-clock penalty is smaller than the wall-clock penalty
    // (throttled mutator threads do not burn CPU while stalled).
    let task_ratio =
        shen.timed().task_clock().as_secs_f64() / parallel.timed().task_clock().as_secs_f64();
    assert!(
        task_ratio < wall_ratio,
        "task ratio {task_ratio:.2} must trail wall ratio {wall_ratio:.2}"
    );
}

#[test]
fn h2_metered_latency_is_close_to_simple_latency() {
    // §6.3: "the metered latency is almost identical to the simple
    // latency" for h2, because its few collections are quick relative to
    // query latency.
    let suite = Suite::chopin();
    let bench = suite.benchmark("h2").expect("in suite");
    let spec = bench
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default size")
        .expect("valid");
    let runs = run("h2", CollectorKind::G1, 2.0);
    let events = events_of(runs.timed(), spec.requests()).expect("latency-sensitive");

    let simple = LatencyDistribution::from_durations(simple_latencies(&events)).expect("non-empty");
    let metered =
        LatencyDistribution::from_durations(metered_latencies(&events, SmoothingWindow::Full))
            .expect("non-empty");

    for p in [90.0, 99.0, 99.9] {
        let s = simple.percentile(p);
        let m = metered.percentile(p);
        assert!(
            m >= s - 1e-9 && m < s * 2.0 + 1.0,
            "p{p}: metered {m:.3}ms should sit near simple {s:.3}ms"
        );
    }
}

#[test]
fn h2_latency_collectors_do_not_deliver_better_latency() {
    // Figure 6 / §6.3: "the latency-sensitive collectors (Shenandoah, ZGC
    // ...) perform worse than Parallel and G1 in all cases", because their
    // concurrent work consumes roughly half the CPU the queries need.
    let suite = Suite::chopin();
    let bench = suite.benchmark("h2").expect("in suite");
    let spec = bench
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default size")
        .expect("valid");

    let dist = |collector| {
        let runs = run("h2", collector, 2.0);
        let events = events_of(runs.timed(), spec.requests()).expect("latency-sensitive");
        LatencyDistribution::from_durations(simple_latencies(&events)).expect("non-empty")
    };
    let g1 = dist(CollectorKind::G1);
    let zgc = dist(CollectorKind::Zgc);
    let shen = dist(CollectorKind::Shenandoah);

    assert!(
        zgc.percentile(90.0) > g1.percentile(90.0),
        "zgc p90 {} vs g1 p90 {}",
        zgc.percentile(90.0),
        g1.percentile(90.0)
    );
    assert!(shen.percentile(90.0) > g1.percentile(90.0));
}

#[test]
fn h2_pauses_are_a_misleading_latency_proxy() {
    // Recommendation L1 made concrete: ZGC has by far the smallest pauses
    // on h2, yet its user-experienced latency is worse than Parallel's.
    let suite = Suite::chopin();
    let bench = suite.benchmark("h2").expect("in suite");
    let spec = bench
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default size")
        .expect("valid");

    let parallel = run("h2", CollectorKind::Parallel, 2.0);
    let zgc = run("h2", CollectorKind::Zgc, 2.0);

    let max_pause = |set: &chopin::core::IterationSet| {
        set.timed()
            .telemetry()
            .max_pause()
            .map(|p| p.as_millis_f64())
            .unwrap_or(0.0)
    };
    assert!(
        max_pause(&zgc) < max_pause(&parallel) / 5.0,
        "ZGC pauses are tiny: {} vs {}",
        max_pause(&zgc),
        max_pause(&parallel)
    );

    let p90 = |set: &chopin::core::IterationSet| {
        let events = events_of(set.timed(), spec.requests()).expect("latency-sensitive");
        LatencyDistribution::from_durations(simple_latencies(&events))
            .expect("non-empty")
            .percentile(90.0)
    };
    assert!(
        p90(&zgc) > p90(&parallel),
        "yet its request latency is worse: {} vs {}",
        p90(&zgc),
        p90(&parallel)
    );
}
