//! Integration: all nine latency-sensitive workloads produce coherent
//! event streams and distributions under the baseline methodology.

use chopin::core::latency::{
    events_of, metered_latencies, simple_latencies, LatencyDistribution, SmoothingWindow,
};
use chopin::core::Suite;
use chopin::workloads::SizeClass;

#[test]
fn all_nine_latency_workloads_report_events() {
    let suite = Suite::chopin();
    let latency_benchmarks: Vec<_> = suite.latency_sensitive().collect();
    assert_eq!(latency_benchmarks.len(), 9);

    for bench in latency_benchmarks {
        let spec = bench
            .profile()
            .to_spec(SizeClass::Default)
            .expect("default size")
            .expect("valid spec");
        let runs = bench
            .runner()
            .heap_factor(2.0)
            .iterations(2)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        let events = events_of(runs.timed(), spec.requests())
            .unwrap_or_else(|| panic!("{} must be latency-sensitive", bench.name()));

        // The pre-determined request set is fully consumed.
        assert_eq!(
            events.len(),
            spec.requests().expect("present").count as usize,
            "{}",
            bench.name()
        );

        // Distributions are well-formed on every metric.
        let simple = LatencyDistribution::from_durations(simple_latencies(&events))
            .unwrap_or_else(|| panic!("{}: empty distribution", bench.name()));
        let metered =
            LatencyDistribution::from_durations(metered_latencies(&events, SmoothingWindow::Full))
                .expect("non-empty");
        assert!(simple.percentile(50.0) > 0.0, "{}", bench.name());
        assert!(
            metered.percentile(99.0) >= simple.percentile(99.0) - 1e-9,
            "{}: metered p99 below simple p99",
            bench.name()
        );
        // Events fall within the run.
        let wall = runs.timed().wall_time().as_nanos();
        assert!(
            events.iter().all(|e| e.end.as_nanos() <= wall + 2),
            "{}",
            bench.name()
        );
    }
}

#[test]
fn jme_frames_are_the_smallest_event_set() {
    // jme renders 420 frames; every request-based service issues far more.
    let suite = Suite::chopin();
    let count = |name: &str| {
        let bench = suite.benchmark(name).expect("in suite");
        bench
            .profile()
            .to_spec(SizeClass::Default)
            .expect("default")
            .expect("valid")
            .requests()
            .expect("latency-sensitive")
            .count
    };
    let jme = count("jme");
    for other in [
        "cassandra",
        "h2",
        "kafka",
        "lusearch",
        "spring",
        "tomcat",
        "tradebeans",
        "tradesoap",
    ] {
        assert!(count(other) > jme, "{other}");
    }
}
