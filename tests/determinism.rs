//! Integration: the simulation is deterministic end to end, and invocation
//! seeds produce the controlled variation the CI machinery needs.

use chopin::analysis::ConfidenceInterval;
use chopin::core::Suite;
use chopin::runtime::collector::CollectorKind;

#[test]
fn identical_configurations_produce_identical_results() {
    let suite = Suite::chopin();
    let bench = suite.benchmark("jython").expect("in suite");
    let a = bench.runner().heap_factor(2.0).seed(5).run().expect("runs");
    let b = bench.runner().heap_factor(2.0).seed(5).run().expect("runs");
    assert_eq!(a, b);
}

#[test]
fn ten_invocations_give_tight_confidence_intervals() {
    // §6.1: "In practice, 10 invocations is sufficient to produce results
    // with sufficiently tight confidence intervals."
    let suite = Suite::chopin();
    let bench = suite.benchmark("fop").expect("in suite");
    let walls: Vec<f64> = (0..10)
        .map(|i| {
            bench
                .runner()
                .collector(CollectorKind::Parallel)
                .heap_factor(2.0)
                .iterations(2)
                .seed(100 + i)
                .run()
                .expect("completes")
                .timed()
                .wall_time()
                .as_secs_f64()
        })
        .collect();
    let ci = ConfidenceInterval::from_samples(&walls).expect("ten samples");
    assert!(ci.half_width() > 0.0, "invocations vary: {walls:?}");
    let rel = ci.relative_half_width().expect("non-zero mean");
    assert!(rel < 0.05, "but the interval is tight: {rel:.4}");
}

#[test]
fn noise_scale_follows_the_psd_statistic() {
    // sunflow has the suite's highest invocation noise (PSD 13); biojava
    // one of the lowest (PSD 0 -> floor). The simulated dispersion must
    // reflect that ordering.
    let spread = |name: &str| {
        let suite = Suite::chopin();
        let bench = suite.benchmark(name).expect("in suite");
        let walls: Vec<f64> = (0..8)
            .map(|i| {
                bench
                    .runner()
                    .heap_factor(3.0)
                    .iterations(1)
                    .seed(7 + i)
                    .run()
                    .expect("completes")
                    .timed()
                    .wall_time()
                    .as_secs_f64()
            })
            .collect();
        let mean = walls.iter().sum::<f64>() / walls.len() as f64;
        let var = walls.iter().map(|w| (w - mean) * (w - mean)).sum::<f64>() / walls.len() as f64;
        var.sqrt() / mean
    };
    let sunflow = spread("sunflow");
    let biojava = spread("biojava");
    assert!(
        sunflow > 3.0 * biojava,
        "sunflow cv {sunflow:.4} vs biojava cv {biojava:.4}"
    );
}
