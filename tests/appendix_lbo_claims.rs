//! Integration: per-benchmark claims from the appendix's LBO figures and
//! prose, checked against the simulated curves.

use chopin::core::lbo::{Clock, LboAnalysis};
use chopin::core::sweep::{run_sweep, SweepConfig};
use chopin::runtime::collector::CollectorKind;
use chopin::workloads::{suite, SizeClass};

fn wall_lbo(benchmark: &str, factors: &[f64]) -> LboAnalysis {
    let profile = suite::by_name(benchmark).expect("in suite");
    let config = SweepConfig {
        collectors: CollectorKind::ALL.to_vec(),
        heap_factors: factors.to_vec(),
        invocations: 1,
        iterations: 2,
        size: SizeClass::Default,
    };
    let result = run_sweep(&profile, &config).expect("sweep runs");
    LboAnalysis::compute(&result.samples, Clock::Wall).expect("analysis")
}

fn max_overhead(analysis: &LboAnalysis, collector: CollectorKind) -> f64 {
    analysis
        .curve(collector)
        .map(|points| {
            points
                .iter()
                .map(|p| p.overhead.mean())
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .unwrap_or(f64::NEG_INFINITY)
}

#[test]
fn jme_wall_overheads_are_negligible_for_every_collector() {
    // Figure 27(a)'s y-axis only spans 1.00–1.05: jme is the least
    // GC-intensive workload, so even at 2x no collector costs wall time.
    let analysis = wall_lbo("jme", &[2.0, 4.0, 6.0]);
    for collector in CollectorKind::ALL {
        let worst = max_overhead(&analysis, collector);
        assert!(
            worst < 1.05,
            "{collector} on jme: worst wall LBO {worst:.4}"
        );
    }
}

#[test]
fn kafka_wall_overheads_are_tiny() {
    // Figure 32(a)'s y-axis spans 1.00–1.06; kafka has zero heap-size
    // sensitivity.
    let analysis = wall_lbo("kafka", &[2.0, 6.0]);
    for collector in CollectorKind::ALL {
        let worst = max_overhead(&analysis, collector);
        assert!(worst < 1.08, "{collector} on kafka: {worst:.4}");
    }
}

#[test]
fn lusearch_shenandoah_wall_is_off_the_chart() {
    // §6.2: "Wall clock overheads for Shenandoah are very high, greater
    // than the 2.0 y-axis limit for all values of x."
    let analysis = wall_lbo("lusearch", &[2.0, 3.0, 6.0]);
    let points = analysis
        .curve(CollectorKind::Shenandoah)
        .expect("shenandoah runs lusearch at 2x+");
    for p in points {
        assert!(
            p.overhead.mean() > 2.0,
            "lusearch/Shen at {}x: {:.3}",
            p.heap_factor,
            p.overhead.mean()
        );
    }
}

#[test]
fn high_turnover_benchmarks_have_steeper_curves_than_low_turnover_ones() {
    // The time-space hyperbola's steepness tracks memory turnover:
    // sunflow (GTO 711) collapses fast with heap, batik (GTO 3) barely
    // moves.
    let steep = |name: &str| {
        let a = wall_lbo(name, &[1.5, 6.0]);
        let curve = a.curve(CollectorKind::G1).expect("g1 runs");
        curve[0].overhead.mean() / curve.last().expect("two points").overhead.mean()
    };
    let sunflow = steep("sunflow");
    let batik = steep("batik");
    assert!(
        sunflow > batik * 1.05,
        "sunflow steepness {sunflow:.3} vs batik {batik:.3}"
    );
}

#[test]
fn serial_wall_curves_sit_above_parallel_everywhere() {
    // Single-threaded collection pays wall time on every benchmark that
    // collects meaningfully.
    for name in ["lusearch", "fop", "h2o"] {
        let analysis = wall_lbo(name, &[1.5, 3.0]);
        let serial = analysis.curve(CollectorKind::Serial).expect("runs");
        let parallel = analysis.curve(CollectorKind::Parallel).expect("runs");
        for (s, p) in serial.iter().zip(parallel) {
            assert!(
                s.overhead.mean() >= p.overhead.mean(),
                "{name} at {}x: serial {:.3} vs parallel {:.3}",
                s.heap_factor,
                s.overhead.mean(),
                p.overhead.mean()
            );
        }
    }
}
