//! Integration: empirically measured minimum heaps track the published
//! nominal statistics (GMD/GMS/GMU relationships).

use chopin::core::minheap::MinHeapSearch;
use chopin::runtime::collector::CollectorKind;
use chopin::workloads::{suite, SizeClass};

#[test]
fn measured_min_heaps_track_published_gmd() {
    for name in ["fop", "jython", "lusearch", "spring"] {
        let profile = suite::by_name(name).expect("in suite");
        let measured = MinHeapSearch::default().find(&profile).expect("found");
        let nominal = profile.min_heap_bytes(SizeClass::Default).expect("gmd");
        let ratio = measured as f64 / nominal as f64;
        assert!(
            (0.75..=1.25).contains(&ratio),
            "{name}: measured {measured} vs nominal {nominal} ({ratio:.3})"
        );
    }
}

#[test]
fn min_heap_ordering_across_size_classes() {
    let profile = suite::by_name("lusearch").expect("in suite");
    let small = MinHeapSearch {
        size: SizeClass::Small,
        ..Default::default()
    }
    .find(&profile)
    .expect("small");
    let default = MinHeapSearch::default().find(&profile).expect("default");
    let large = MinHeapSearch {
        size: SizeClass::Large,
        ..Default::default()
    }
    .find(&profile)
    .expect("large");
    assert!(
        small < default && default < large,
        "{small} {default} {large}"
    );
}

#[test]
fn uncompressed_pointers_inflate_min_heaps_like_gmu() {
    // GMU is "nominal minimum heap size for default size without
    // compressed pointers", measured with the default collector. pmd has
    // one of the strongest inflations (269/191 = 1.41).
    let profile = suite::by_name("pmd").expect("in suite");
    let compressed = MinHeapSearch::default().find(&profile).expect("g1");
    let uncompressed = MinHeapSearch {
        compressed_oops: Some(false),
        ..Default::default()
    }
    .find(&profile)
    .expect("g1 uncompressed");
    let inflation = uncompressed as f64 / compressed as f64;
    let published = 269.0 / 191.0;
    assert!(
        (inflation - published).abs() < 0.15,
        "inflation {inflation:.3} vs published {published:.3}"
    );
}

#[test]
fn zgc_needs_even_more_than_the_pointer_inflation() {
    // ZGC pays the pointer inflation *plus* headroom for allocation during
    // its concurrent cycles (floating garbage) — part of why Figure 1's
    // ZGC curve starts late.
    let profile = suite::by_name("pmd").expect("in suite");
    let g1 = MinHeapSearch::default().find(&profile).expect("g1");
    let zgc = MinHeapSearch {
        collector: CollectorKind::Zgc,
        ..Default::default()
    }
    .find(&profile)
    .expect("zgc");
    let ratio = zgc as f64 / g1 as f64;
    let pointer_inflation = 269.0 / 191.0;
    assert!(
        ratio > pointer_inflation,
        "zgc/g1 {ratio:.3} must exceed the pure pointer inflation {pointer_inflation:.3}"
    );
}
