//! Integration: the simulated workload characterisation agrees with the
//! paper's published nominal statistics by *rank* across the whole suite
//! (Spearman correlation). Absolute values belong to the authors'
//! hardware; if the simulation is faithful, the *ordering* of benchmarks
//! by each emergent statistic must carry over.

use chopin::core::characterize::{characterize, rank_agreement, CharacterizeConfig};
use chopin::core::nominal::row;
use chopin::workloads::suite;

#[test]
fn emergent_statistics_rank_correlate_with_published_values() {
    let config = CharacterizeConfig::default();
    let measured: Vec<_> = suite::all()
        .iter()
        .map(|p| characterize(p, &config).unwrap_or_else(|e| panic!("{}: {e}", p.name)))
        .collect();

    let published = |code: &str| -> Vec<f64> {
        measured
            .iter()
            .map(|m| row(&m.benchmark).expect("row").value(code).unwrap_or(0.0))
            .collect()
    };

    // GCC: collections at 2x — fully emergent from the live-set model,
    // trigger logic and allocation volumes.
    let gcc: Vec<f64> = measured.iter().map(|m| m.gc_count_2x as f64).collect();
    let rho = rank_agreement(&published("GCC"), &gcc).expect("defined");
    assert!(rho > 0.8, "GCC rank agreement: {rho:.3}");

    // GCP: share of wall time in pauses at 2x.
    let gcp: Vec<f64> = measured.iter().map(|m| m.gc_pause_pct_2x).collect();
    let rho = rank_agreement(&published("GCP"), &gcp).expect("defined");
    assert!(rho > 0.6, "GCP rank agreement: {rho:.3}");

    // GSS: slowdown in a tight heap.
    let gss: Vec<f64> = measured.iter().map(|m| m.heap_sensitivity_pct).collect();
    let rho = rank_agreement(&published("GSS"), &gss).expect("defined");
    assert!(rho > 0.6, "GSS rank agreement: {rho:.3}");

    // PFS: frequency-scaling sensitivity (calibration closure).
    let pfs: Vec<f64> = measured.iter().map(|m| m.freq_speedup_pct).collect();
    let rho = rank_agreement(&published("PFS"), &pfs).expect("defined");
    assert!(rho > 0.9, "PFS rank agreement: {rho:.3}");

    // GCA: average post-GC heap as a share of the minimum heap.
    let gca: Vec<f64> = measured
        .iter()
        .map(|m| m.avg_post_gc_pct.unwrap_or(0.0))
        .collect();
    if let Some(rho) = rank_agreement(&published("GCA"), &gca) {
        // GCA spans a narrow range (80-133%), so we only require a
        // positive correlation.
        assert!(rho > 0.0, "GCA rank agreement: {rho:.3}");
    }

    // PWU: warmup honours the published iterations-to-warm-up.
    let pwu: Vec<f64> = measured
        .iter()
        .map(|m| m.warmup_iterations as f64)
        .collect();
    let rho = rank_agreement(&published("PWU"), &pwu).expect("defined");
    assert!(rho > 0.85, "PWU rank agreement: {rho:.3}");
}

#[test]
fn memory_and_llc_sensitivities_close_the_loop() {
    // §6.4's exemplars: biojava is "fairly insensitive to memory slowdown
    // (PMS) and last level cache size reduction (PLS)"; h2 is the most
    // memory-speed sensitive workload; luindex among the most LLC
    // sensitive.
    let config = CharacterizeConfig::default();
    let get = |name: &str| {
        characterize(&suite::by_name(name).expect("in suite"), &config).expect("measures")
    };
    let biojava = get("biojava");
    assert!(biojava.slow_memory_slowdown_pct < 3.0, "{biojava:?}");
    assert!(biojava.reduced_llc_slowdown_pct < 3.0, "{biojava:?}");

    let h2 = get("h2");
    assert!(h2.slow_memory_slowdown_pct > 25.0, "{h2:?}");

    let luindex = get("luindex");
    assert!(luindex.reduced_llc_slowdown_pct > 25.0, "{luindex:?}");
}
