//! Integration: validating the Metered Latency model (§4.4) against a true
//! open-loop queueing replay.
//!
//! "Without a queue, DaCapo's workloads cannot directly model the cascading
//! effect of delays. Instead, we model a similar effect with what we call
//! Metered Latency." The simulation can do what the real suite cannot:
//! replay the identical pre-determined request set with externally fixed
//! uniform arrivals and real FIFO queueing, and check that metered latency
//! captures the same tail behaviour.

use chopin::core::latency::{
    events_of, metered_latencies, simple_latencies, LatencyDistribution, SmoothingWindow,
};
use chopin::core::Suite;
use chopin::runtime::collector::CollectorKind;
use chopin::runtime::requests::{replay_open_loop, replay_open_loop_at};
use chopin::workloads::SizeClass;

struct Comparison {
    simple: LatencyDistribution,
    metered: LatencyDistribution,
    open_loop: LatencyDistribution,
}

fn compare(bench: &str, collector: CollectorKind, factor: f64) -> Comparison {
    let suite = Suite::chopin();
    let benchmark = suite.benchmark(bench).expect("in suite");
    let spec = benchmark
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default size")
        .expect("valid");
    let runs = benchmark
        .runner()
        .collector(collector)
        .heap_factor(factor)
        .iterations(2)
        .run()
        .expect("completes");
    let timed = runs.timed();
    let requests = spec.requests().expect("latency-sensitive");

    let closed = events_of(timed, Some(requests)).expect("events");
    let open = replay_open_loop(timed.progress(), requests, timed.config().seed());
    assert_eq!(open.len(), closed.len(), "same pre-determined request set");

    Comparison {
        simple: LatencyDistribution::from_durations(simple_latencies(&closed)).expect("events"),
        metered: LatencyDistribution::from_durations(metered_latencies(
            &closed,
            SmoothingWindow::Full,
        ))
        .expect("events"),
        open_loop: LatencyDistribution::from_durations(simple_latencies(&open)).expect("events"),
    }
}

#[test]
fn metered_latency_tracks_real_queueing_better_than_simple_latency() {
    // Under a pause-heavy collector the open-loop tail exceeds the simple
    // (closed-loop) tail — the cascading effect §4.4 describes. Metered
    // latency must close a meaningful part of that gap.
    let c = compare("spring", CollectorKind::Serial, 2.0);
    let p999_simple = c.simple.percentile(99.9);
    let p999_metered = c.metered.percentile(99.9);
    let p999_open = c.open_loop.percentile(99.9);

    assert!(
        p999_open >= p999_simple,
        "queueing can only add delay: open {p999_open:.3} vs simple {p999_simple:.3}"
    );
    assert!(
        p999_metered >= p999_simple,
        "metered dominates simple by construction"
    );

    // Metered moves toward the open-loop truth.
    let gap_simple = (p999_open - p999_simple).abs();
    let gap_metered = (p999_open - p999_metered).abs();
    assert!(
        gap_metered <= gap_simple + 1e-9,
        "metered p99.9 {p999_metered:.3} must sit closer to open-loop {p999_open:.3} \
         than simple {p999_simple:.3} does"
    );
}

#[test]
fn an_underloaded_pause_free_queue_never_builds() {
    // At 100% offered load even a pause-free open-loop queue diverges
    // (basic queueing theory), so the comparison is made with headroom:
    // at 60% load under ZGC at a generous heap (negligible pauses, no
    // throttling) the open-loop median is just the scaled service time.
    let suite = Suite::chopin();
    let benchmark = suite.benchmark("cassandra").expect("in suite");
    let spec = benchmark
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default size")
        .expect("valid");
    let runs = benchmark
        .runner()
        .collector(CollectorKind::Zgc)
        .heap_factor(6.0)
        .iterations(2)
        .run()
        .expect("completes");
    let timed = runs.timed();
    let requests = spec.requests().expect("latency-sensitive");

    let closed = events_of(timed, Some(requests)).expect("events");
    let simple = LatencyDistribution::from_durations(simple_latencies(&closed)).expect("events");
    let open = replay_open_loop_at(timed.progress(), requests, timed.config().seed(), 0.6);
    let open_dist = LatencyDistribution::from_durations(simple_latencies(&open)).expect("events");

    let m_simple = simple.percentile(50.0);
    let m_open = open_dist.percentile(50.0);
    // Service demands are scaled to 60%, so the open-loop median sits near
    // 0.6x the closed-loop service time — far from a queue blow-up.
    assert!(
        m_open < m_simple * 2.0,
        "open median {m_open:.4} vs simple {m_simple:.4}"
    );
    assert!(m_open > m_simple * 0.2, "open median {m_open:.4}");
}

#[test]
fn open_loop_replay_is_deterministic_per_run() {
    let suite = Suite::chopin();
    let bench = suite.benchmark("kafka").expect("in suite");
    let spec = bench
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default")
        .expect("valid");
    let runs = bench
        .runner()
        .heap_factor(2.0)
        .iterations(1)
        .run()
        .expect("completes");
    let timed = runs.timed();
    let requests = spec.requests().expect("latency-sensitive");
    let a = replay_open_loop(timed.progress(), requests, timed.config().seed());
    let b = replay_open_loop(timed.progress(), requests, timed.config().seed());
    assert_eq!(a, b);
}
