//! Integration: the paper's critique of MMU (§4.4) demonstrated on engine
//! output — "MMU is not ideal since it ... cannot capture throughput
//! reductions due to expensive barriers embedded within the mutator".

use chopin::core::latency::mmu::{mmu, mmu_curve};
use chopin::core::latency::{events_of, simple_latencies, LatencyDistribution};
use chopin::core::Suite;
use chopin::runtime::collector::CollectorKind;
use chopin::runtime::time::SimDuration;
use chopin::workloads::SizeClass;

fn run(bench: &str, collector: CollectorKind, factor: f64) -> chopin::core::IterationSet {
    Suite::chopin()
        .benchmark(bench)
        .expect("in suite")
        .runner()
        .collector(collector)
        .heap_factor(factor)
        .iterations(2)
        .run()
        .expect("completes")
}

#[test]
fn mmu_prefers_concurrent_collectors_at_small_windows() {
    // At 2 ms windows on a workload whose allocation rate ZGC can keep up
    // with (cassandra — h2's 11.8 GB/s churn throttle-limits every
    // concurrent collector), the collector with sub-millisecond pauses
    // scores much better MMU than the full-pause collector...
    let parallel = run("cassandra", CollectorKind::Parallel, 3.0);
    let zgc = run("cassandra", CollectorKind::Zgc, 3.0);
    let w = SimDuration::from_millis(2);
    let mmu_parallel = mmu(parallel.timed().progress(), w).expect("defined");
    let mmu_zgc = mmu(zgc.timed().progress(), w).expect("defined");
    assert!(
        mmu_zgc > mmu_parallel + 0.3,
        "zgc mmu {mmu_zgc:.3} vs parallel {mmu_parallel:.3}"
    );
}

#[test]
fn but_the_mmu_winner_has_worse_user_experienced_latency() {
    // ...yet on h2, the workload of Figure 6, the small-pause collector's
    // actual request latency is *worse* than the full-pause collector's:
    // barrier taxes, concurrent CPU theft and allocation stalls are all
    // invisible to a normalised utilization measure — recommendation L1's
    // reason to measure the user-experienced quantity directly.
    let suite = Suite::chopin();
    let spec = suite
        .benchmark("h2")
        .expect("in suite")
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default")
        .expect("valid");

    let p90 = |collector| {
        let set = run("h2", collector, 2.0);
        let events = events_of(set.timed(), spec.requests()).expect("latency-sensitive");
        LatencyDistribution::from_durations(simple_latencies(&events))
            .expect("non-empty")
            .percentile(90.0)
    };
    assert!(
        p90(CollectorKind::Zgc) > p90(CollectorKind::Parallel),
        "the MMU winner loses on user-experienced latency"
    );
}

#[test]
fn mmu_curves_are_monotone_on_engine_output() {
    for collector in [
        CollectorKind::Serial,
        CollectorKind::G1,
        CollectorKind::Shenandoah,
    ] {
        let set = run("lusearch", collector, 2.0);
        let curve = mmu_curve(set.timed().progress());
        assert!(!curve.is_empty(), "{collector}");
        for w in curve.windows(2) {
            assert!(
                w[0].1 <= w[1].1 + 1e-9,
                "{collector}: MMU must grow with window: {curve:?}"
            );
        }
        // Every utilization is a valid fraction.
        assert!(curve.iter().all(|(_, u)| (0.0..=1.0).contains(u)));
    }
}

#[test]
fn serial_mmu_collapses_at_pause_scale_windows() {
    // Serial's long pauses zero out small-window MMU on a GC-heavy
    // workload.
    let set = run("lusearch", CollectorKind::Serial, 1.5);
    let small = mmu(set.timed().progress(), SimDuration::from_millis(1)).expect("defined");
    assert!(
        small < 0.05,
        "a 1ms window fits inside a Serial pause: {small}"
    );
}
