//! Integration: end-to-end ablations of collector-model mechanisms via the
//! `RunConfig::with_collector_model` hook, plus the "area under the memory
//! use curve" metric §4.2 proposes.

use chopin::core::Suite;
use chopin::runtime::collector::CollectorKind;
use chopin::runtime::config::RunConfig;
use chopin::runtime::engine::run;
use chopin::workloads::{suite, SizeClass};

#[test]
fn removing_shenandoah_barriers_recovers_mutator_throughput() {
    // Ablation: Shenandoah's load-reference barriers are the woven-in cost
    // the LBO methodology cannot attribute; removing them in the model
    // must speed the mutator up by roughly the barrier tax.
    let profile = suite::by_name("jython").expect("in suite");
    let spec = profile
        .to_spec(SizeClass::Default)
        .expect("default size")
        .expect("valid");
    let heap = profile.min_heap_bytes(SizeClass::Default).expect("gmd") * 6;

    let stock = run(
        &spec,
        &RunConfig::new(heap, CollectorKind::Shenandoah).with_noise(0.0),
    )
    .expect("completes");

    let mut no_barriers = CollectorKind::Shenandoah.model();
    let tax = no_barriers.barrier_tax;
    no_barriers.barrier_tax = 0.0;
    let ablated = run(
        &spec,
        &RunConfig::new(heap, CollectorKind::Shenandoah)
            .with_collector_model(no_barriers)
            .with_noise(0.0),
    )
    .expect("completes");

    let mutator_ratio = stock.telemetry().mutator_cpu_ns / ablated.telemetry().mutator_cpu_ns;
    let expected = 1.0 / (1.0 - tax);
    assert!(
        (mutator_ratio - expected).abs() < 0.02,
        "barrier ablation: measured {mutator_ratio:.4}, expected {expected:.4}"
    );
    assert!(stock.wall_time() > ablated.wall_time());
}

#[test]
fn doubling_mark_cost_shows_up_in_gc_cpu() {
    let profile = suite::by_name("fop").expect("in suite");
    let spec = profile
        .to_spec(SizeClass::Default)
        .expect("default size")
        .expect("valid");
    let heap = profile.min_heap_bytes(SizeClass::Default).expect("gmd") * 3;

    let stock = run(
        &spec,
        &RunConfig::new(heap, CollectorKind::G1).with_noise(0.0),
    )
    .expect("completes");
    let mut heavy = CollectorKind::G1.model();
    heavy.work_multiplier *= 2.0;
    let ablated = run(
        &spec,
        &RunConfig::new(heap, CollectorKind::G1)
            .with_collector_model(heavy)
            .with_noise(0.0),
    )
    .expect("completes");

    let ratio = ablated.telemetry().gc_cpu_ns() / stock.telemetry().gc_cpu_ns();
    assert!(
        (1.8..2.2).contains(&ratio),
        "doubling the work multiplier must roughly double GC CPU: {ratio:.3}"
    );
}

#[test]
fn invalid_model_override_is_rejected() {
    let mut broken = CollectorKind::G1.model();
    broken.barrier_tax = 2.0;
    let profile = suite::by_name("fop").expect("in suite");
    let spec = profile
        .to_spec(SizeClass::Default)
        .expect("default size")
        .expect("valid");
    let err = run(
        &spec,
        &RunConfig::new(64 << 20, CollectorKind::G1).with_collector_model(broken),
    )
    .unwrap_err();
    assert!(err.to_string().contains("invalid"), "{err}");
}

#[test]
fn average_occupancy_reflects_the_memory_use_curve() {
    // §4.2: the minimum heap reflects *peak* usage; the area under the
    // memory-use curve reflects *average* usage. h2's long database-build
    // ramp gives it an average well below its peak; a flat steady-state
    // workload sits close to its post-GC level.
    let suite_obj = Suite::chopin();
    let h2 = suite_obj
        .benchmark("h2")
        .expect("in suite")
        .runner()
        .heap_factor(2.0)
        .iterations(1)
        .noise(0.0)
        .run()
        .expect("completes");
    let timed = h2.timed();
    let avg = timed.telemetry().average_occupancy_bytes(timed.wall_time());
    let capacity = timed.config().heap_bytes() as f64;
    assert!(avg > 0.0);
    assert!(
        avg < capacity,
        "average occupancy {avg:.0} must sit below capacity {capacity:.0}"
    );
    // h2's nominal min heap is 681 MB; the average must be meaningfully
    // below the 2x capacity but above the live floor.
    let gmd = 681.0 * (1 << 20) as f64;
    assert!(avg > 0.1 * gmd, "avg {avg}");
    assert!(avg < 1.8 * gmd, "avg {avg}");
}
