//! Integration: Table 2 publishes each benchmark's *rank* alongside its
//! value for the twelve most determinant nominal statistics. Since all 22
//! benchmarks' Table 2 cells are published (even for the five whose
//! appendix pages are truncated), the ranks must be exactly recomputable
//! from the dataset — a double-entry check on both the transcription and
//! the ranking algorithm.

use chopin::core::nominal::{score_table, TABLE2_METRICS};

/// Published (metric, rank) pairs from Table 2 for a sample of benchmarks.
/// Order matches TABLE2_METRICS: GLK GMU PET PFS PKP PWU UAA UAI UBP UBR
/// UBS USF.
const PUBLISHED_RANKS: [(&str, [usize; 12]); 4] = [
    ("avrora", [9, 22, 6, 4, 1, 13, 19, 22, 21, 22, 21, 1]),
    ("cassandra", [2, 8, 3, 18, 5, 13, 1, 21, 15, 17, 15, 4]),
    ("h2", [9, 1, 13, 17, 21, 13, 4, 14, 17, 14, 18, 17]),
    ("lusearch", [9, 19, 13, 13, 7, 2, 14, 1, 11, 18, 11, 12]),
];

#[test]
fn recomputed_ranks_match_published_table2_ranks() {
    for (bench, published) in PUBLISHED_RANKS {
        let table = score_table(bench).expect("in suite");
        for (code, expected) in TABLE2_METRICS.iter().zip(published) {
            let scored = table
                .iter()
                .find(|s| s.code == *code)
                .unwrap_or_else(|| panic!("{bench}/{code} missing"));
            // Competition ranking reproduces the published ranks exactly
            // except where PET's whole-second rounding creates large tie
            // groups (the paper appears to break those ties by unrounded
            // values we do not have) — allow a small tolerance there.
            let tolerance = if *code == "PET" || *code == "PWU" || *code == "PFS" {
                3
            } else {
                1
            };
            assert!(
                scored.rank.abs_diff(expected) <= tolerance,
                "{bench}/{code}: recomputed rank {} vs published {expected}",
                scored.rank
            );
        }
    }
}

#[test]
fn rank_extremes_match_prose() {
    // avrora is the most kernel-bound (PKP rank 1) and most front-end
    // bound (USF rank 1); h2 has the largest uncompressed heap (GMU rank
    // 1); lusearch the largest Intel-vs-AMD slowdown (UAI rank 1);
    // cassandra the largest ARM slowdown (UAA rank 1).
    let rank = |bench: &str, code: &str| {
        score_table(bench)
            .expect("in suite")
            .into_iter()
            .find(|s| s.code == code)
            .expect("metric scored")
            .rank
    };
    assert_eq!(rank("avrora", "PKP"), 1);
    assert_eq!(rank("avrora", "USF"), 1);
    assert_eq!(rank("h2", "GMU"), 1);
    assert_eq!(rank("lusearch", "UAI"), 1);
    assert_eq!(rank("cassandra", "UAA"), 1);
    assert_eq!(rank("zxing", "GLK"), 1, "the largest leakage");
    assert_eq!(rank("biojava", "UBR"), 1, "the most pipeline restarts");
}
