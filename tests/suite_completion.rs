//! Integration: every benchmark in the suite completes under the paper's
//! baseline methodology, and the documented exceptions (ZGC at small heap
//! multiples) fail in the documented way.

use chopin::core::{BenchmarkError, Suite};
use chopin::runtime::collector::CollectorKind;
use chopin::runtime::result::RunError;

#[test]
fn all_22_benchmarks_complete_with_the_baseline_configuration() {
    // §6.1: default collector (G1), 2 x GMD, 5 iterations.
    let suite = Suite::chopin();
    for bench in suite.iter() {
        let runs = bench
            .runner()
            .collector(CollectorKind::G1)
            .heap_factor(2.0)
            .iterations(5)
            .run()
            .unwrap_or_else(|e| panic!("{} failed: {e}", bench.name()));
        assert_eq!(runs.iterations().len(), 5, "{}", bench.name());
        assert!(runs.timed().wall_time().as_nanos() > 0, "{}", bench.name());
    }
}

#[test]
fn all_collectors_complete_everything_at_3x() {
    let suite = Suite::chopin();
    for bench in suite.iter() {
        for collector in CollectorKind::ALL {
            let result = bench
                .runner()
                .collector(collector)
                .heap_factor(3.0)
                .iterations(1)
                .run();
            assert!(
                result.is_ok(),
                "{} with {collector} at 3x: {:?}",
                bench.name(),
                result.err()
            );
        }
    }
}

#[test]
fn zgc_has_missing_points_at_one_times_minheap() {
    // "We only plot data points where the respective collector can run all
    // 22 benchmarks to completion" — ZGC's uncompressed pointers make 1x
    // (defined against the compressed-pointer GMD) infeasible for
    // workloads with substantial GMU/GMD inflation.
    let suite = Suite::chopin();
    let mut zgc_failures = 0;
    for bench in suite.iter() {
        let result = bench
            .runner()
            .collector(CollectorKind::Zgc)
            .heap_factor(1.0)
            .iterations(1)
            .run();
        if let Err(BenchmarkError::Run(RunError::OutOfMemory { .. } | RunError::GcThrash { .. })) =
            result
        {
            zgc_failures += 1;
        }
    }
    assert!(
        zgc_failures >= 10,
        "most benchmarks must be infeasible for ZGC at 1x, got {zgc_failures}"
    );
}

#[test]
fn gc_insensitive_workloads_barely_collect() {
    // jme "is one of the least GC-intensive workloads" (GCC 31); kafka has
    // zero heap-size sensitivity.
    let suite = Suite::chopin();
    for name in ["jme", "kafka"] {
        let runs = suite
            .benchmark(name)
            .expect("in suite")
            .runner()
            .heap_factor(2.0)
            .iterations(1)
            .run()
            .expect("completes");
        let gc = runs.timed().telemetry().gc_count;
        assert!(gc < 500, "{name} should collect rarely, got {gc}");
    }
}

#[test]
fn lusearch_collects_orders_of_magnitude_more_than_batik() {
    // GCC at 2x: lusearch 22408 vs batik 111 — the suite's extremes.
    let suite = Suite::chopin();
    let count = |name: &str| {
        suite
            .benchmark(name)
            .expect("in suite")
            .runner()
            .heap_factor(2.0)
            .iterations(1)
            .run()
            .expect("completes")
            .timed()
            .telemetry()
            .gc_count
    };
    let lusearch = count("lusearch");
    let batik = count("batik");
    assert!(
        lusearch > 20 * batik.max(1),
        "lusearch {lusearch} vs batik {batik}"
    );
}

#[test]
fn large_size_classes_run_where_published() {
    let suite = Suite::chopin();
    for name in ["lusearch", "jython", "kafka"] {
        let bench = suite.benchmark(name).expect("in suite");
        let result = bench
            .runner()
            .size(chopin::workloads::SizeClass::Large)
            .heap_factor(2.0)
            .iterations(1)
            .run();
        assert!(result.is_ok(), "{name} large: {:?}", result.err());
    }
}

#[test]
fn h2_vlarge_runs_in_a_40gb_heap() {
    // §1: "minimum heap sizes from 5 MB to 20 GB" — the 20 GB end is h2's
    // vlarge configuration (GMV 20641 MB). Only a simulator makes this a
    // unit test.
    let suite = Suite::chopin();
    let h2 = suite.benchmark("h2").expect("in suite");
    let runs = h2
        .runner()
        .size(chopin::workloads::SizeClass::VLarge)
        .heap_factor(2.0)
        .iterations(1)
        .run()
        .expect("h2 vlarge completes at 2x of 20.6 GB");
    let timed = runs.timed();
    assert!(timed.config().heap_bytes() > 40 * (1u64 << 30));
    assert!(timed.telemetry().gc_count > 0);
}

#[test]
fn only_h2_has_a_vlarge_configuration() {
    let suite = Suite::chopin();
    for bench in suite.iter() {
        let has = bench
            .nominal_min_heap(chopin::workloads::SizeClass::VLarge)
            .is_some();
        assert_eq!(has, bench.name() == "h2", "{}", bench.name());
    }
}
