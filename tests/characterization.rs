//! Integration: the workload-characterisation layer (§5) — nominal
//! statistics, scores, PCA — and its agreement with measured behaviour.

use chopin::core::nominal::{
    complete_metrics, dataset, metric_ranking, score_table, suite_pca, METRICS,
};
use chopin::core::Suite;
use chopin::workloads::suite;

#[test]
fn dataset_covers_the_whole_suite() {
    let rows = dataset();
    assert_eq!(rows.len(), 22);
    let suite_names: Vec<&str> = Suite::chopin().names();
    for row in &rows {
        assert!(suite_names.contains(&row.benchmark), "{}", row.benchmark);
    }
}

#[test]
fn every_benchmark_scores_at_least_35_dimensions() {
    // §5.1: "We characterize each benchmark ... across at least 35
    // dimensions."
    for bench in Suite::chopin().names() {
        let table = score_table(bench).expect("in suite");
        assert!(
            table.len() >= 35,
            "{bench} has only {} scored metrics",
            table.len()
        );
        assert!(table.len() <= METRICS.len());
    }
}

#[test]
fn scores_are_consistent_with_ranks_everywhere() {
    for bench in Suite::chopin().names() {
        for s in score_table(bench).expect("in suite") {
            assert!(s.rank >= 1 && s.rank <= s.of, "{bench}/{}", s.code);
            assert!(s.score <= 10, "{bench}/{}", s.code);
            assert!(s.min <= s.median && s.median <= s.max, "{bench}/{}", s.code);
            assert!(s.value >= s.min && s.value <= s.max, "{bench}/{}", s.code);
            if s.rank == 1 {
                assert_eq!(s.value, s.max, "{bench}/{}", s.code);
            }
        }
    }
}

#[test]
fn figure4_pca_shows_a_diverse_suite() {
    let (benchmarks, metrics, pca) = suite_pca().expect("pca fits");
    assert_eq!(benchmarks.len(), 22);
    assert!(metrics.len() >= 33, "paper used 33 complete metrics");
    // Top four components explain >50% but far from all of the variance —
    // the suite is diverse, not degenerate.
    let c4 = pca.cumulative_explained_variance(4);
    assert!(c4 > 0.5 && c4 < 0.9, "cumulative PC1-4: {c4}");
}

#[test]
fn published_rankings_match_prose_claims() {
    // §5.1 and §6.4 prose claims, verified against the dataset:
    let first_of = |code: &str| metric_ranking(code).expect("metric")[0].0;
    assert_eq!(first_of("ARA"), "lusearch", "highest allocation rate");
    assert_eq!(first_of("GTO"), "lusearch", "highest memory turnover");
    assert_eq!(first_of("GCC"), "lusearch", "most GCs at 2x");
    assert_eq!(first_of("UIP"), "biojava", "highest IPC");
    assert_eq!(first_of("PKP"), "avrora", "most kernel-bound");
    assert_eq!(first_of("GMD"), "h2", "largest default min heap");
    assert_eq!(first_of("ULL"), "h2o", "highest LLC miss rate");
    assert_eq!(first_of("USB"), "h2o", "most back-end bound");
    assert_eq!(first_of("BUF"), "jython", "most unique function calls");
    assert_eq!(first_of("AOA"), "luindex", "largest objects");
    assert_eq!(first_of("UDT"), "cassandra", "highest DTLB miss rate");
}

#[test]
fn complete_metrics_exclude_partial_columns() {
    let complete = complete_metrics();
    assert!(!complete.contains(&"GML"));
    assert!(!complete.contains(&"GMV"));
    for code in ["ARA", "GMD", "PET", "UIP"] {
        assert!(complete.contains(&code), "{code}");
    }
}

#[test]
fn profiles_and_dataset_agree_on_shared_columns() {
    for p in suite::all() {
        let row = chopin::core::nominal::row(p.name).expect("row exists");
        assert_eq!(row.value("GMD"), Some(p.min_heap_default_mb), "{}", p.name);
        assert_eq!(row.value("GTO"), Some(p.turnover), "{}", p.name);
        assert_eq!(row.value("GLK"), Some(p.leak_pct), "{}", p.name);
        assert_eq!(
            row.value("PWU"),
            Some(p.warmup_iterations as f64),
            "{}",
            p.name
        );
    }
}
