//! Integration: the small/default/large/vlarge size classes scale the way
//! the published per-size minimum heaps (GMS/GMD/GML/GMV) say they should.

use chopin::core::Suite;
use chopin::workloads::{suite, SizeClass};

#[test]
fn size_classes_scale_specs_monotonically() {
    for profile in suite::all() {
        let alloc = |size: SizeClass| {
            profile
                .to_spec(size)
                .map(|r| r.expect("valid spec").total_allocation())
        };
        let small = alloc(SizeClass::Small).expect("small always exists");
        let default = alloc(SizeClass::Default).expect("default always exists");
        assert!(
            small <= default,
            "{}: small {small} vs default {default}",
            profile.name
        );
        if let Some(large) = alloc(SizeClass::Large) {
            assert!(
                default <= large,
                "{}: default {default} vs large {large}",
                profile.name
            );
        }
        if let Some(vlarge) = alloc(SizeClass::VLarge) {
            assert!(
                alloc(SizeClass::Large).unwrap_or(default) <= vlarge,
                "{}",
                profile.name
            );
        }
    }
}

#[test]
fn published_size_minimums_are_ordered() {
    for profile in suite::all() {
        assert!(
            profile.min_heap_small_mb <= profile.min_heap_default_mb,
            "{}",
            profile.name
        );
        if let Some(large) = profile.min_heap_large_mb {
            assert!(profile.min_heap_default_mb <= large, "{}", profile.name);
        }
        if let Some(vlarge) = profile.min_heap_vlarge_mb {
            assert!(
                profile
                    .min_heap_large_mb
                    .unwrap_or(profile.min_heap_default_mb)
                    <= vlarge,
                "{}",
                profile.name
            );
        }
    }
}

#[test]
fn small_configurations_run_quickly_at_2x() {
    let suite_obj = Suite::chopin();
    for name in ["lusearch", "fop", "cassandra", "h2"] {
        let bench = suite_obj.benchmark(name).expect("in suite");
        let runs = bench
            .runner()
            .size(SizeClass::Small)
            .heap_factor(2.0)
            .iterations(1)
            .run()
            .unwrap_or_else(|e| panic!("{name} small: {e}"));
        let small_wall = runs.timed().wall_time();
        let default_wall = bench
            .runner()
            .heap_factor(2.0)
            .iterations(1)
            .run()
            .expect("default runs")
            .timed()
            .wall_time();
        assert!(
            small_wall < default_wall,
            "{name}: small {small_wall} vs default {default_wall}"
        );
    }
}

#[test]
fn large_configurations_reach_multi_gigabyte_heaps() {
    // batik large: 1759 MB GML; h2 large: 10201 MB. At 2x those are
    // 3.4 GB and 20 GB heaps — only a simulation turns these into unit
    // tests.
    let suite_obj = Suite::chopin();
    for (name, min_gb) in [("batik", 1.7), ("h2", 9.9), ("pmd", 3.4)] {
        let bench = suite_obj.benchmark(name).expect("in suite");
        let runs = bench
            .runner()
            .size(SizeClass::Large)
            .heap_factor(2.0)
            .iterations(1)
            .run()
            .unwrap_or_else(|e| panic!("{name} large: {e}"));
        let heap_gb = runs.timed().config().heap_bytes() as f64 / (1u64 << 30) as f64;
        assert!(heap_gb > min_gb * 1.9, "{name}: {heap_gb:.2} GB heap");
        assert!(runs.timed().telemetry().gc_count > 0, "{name}");
    }
}
