//! Property-based integration tests over engine-produced latency events:
//! the invariants of §4.4 hold on real simulation output, not just
//! synthetic event streams.

use chopin::core::latency::{events_of, metered_latencies, simple_latencies, SmoothingWindow};
use chopin::core::Suite;
use chopin::runtime::collector::CollectorKind;
use chopin::runtime::time::SimDuration;
use chopin::workloads::SizeClass;
use proptest::prelude::*;

fn events_for(
    collector: CollectorKind,
    factor: f64,
    seed: u64,
) -> Vec<chopin::runtime::requests::RequestEvent> {
    let suite = Suite::chopin();
    let bench = suite.benchmark("spring").expect("in suite");
    let spec = bench
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default size")
        .expect("valid");
    let runs = bench
        .runner()
        .collector(collector)
        .heap_factor(factor)
        .iterations(1)
        .seed(seed)
        .run()
        .expect("completes");
    events_of(runs.timed(), spec.requests()).expect("latency-sensitive")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_metered_dominates_simple_on_engine_output(
        seed in 1u64..1000,
        factor in 2.0f64..6.0,
        window_ms in 1u64..10_000,
    ) {
        let events = events_for(CollectorKind::G1, factor, seed);
        prop_assume!(!events.is_empty());
        let mut sorted = events.clone();
        sorted.sort();
        let simple = simple_latencies(&sorted);
        for window in [
            SmoothingWindow::Duration(SimDuration::from_millis(window_ms)),
            SmoothingWindow::Full,
        ] {
            let metered = metered_latencies(&events, window);
            prop_assert_eq!(metered.len(), simple.len());
            for (m, s) in metered.iter().zip(&simple) {
                prop_assert!(m.as_nanos() + 1 >= s.as_nanos());
            }
        }
    }

    #[test]
    fn prop_event_count_is_exactly_the_request_count(seed in 1u64..500) {
        let events = events_for(CollectorKind::Parallel, 3.0, seed);
        // spring's default configuration issues 32000 requests.
        prop_assert_eq!(events.len(), 32_000);
    }

    #[test]
    fn prop_events_are_within_the_run(seed in 1u64..500) {
        let suite = Suite::chopin();
        let bench = suite.benchmark("spring").expect("in suite");
        let spec = bench
            .profile()
            .to_spec(SizeClass::Default)
            .expect("default size")
            .expect("valid");
        let runs = bench
            .runner()
            .heap_factor(2.0)
            .iterations(1)
            .seed(seed)
            .run()
            .expect("completes");
        let wall = runs.timed().wall_time();
        let events = events_of(runs.timed(), spec.requests()).expect("latency-sensitive");
        for e in &events {
            prop_assert!(e.start <= e.end);
            prop_assert!(e.end.as_nanos() <= wall.as_nanos() + 2);
        }
    }
}
