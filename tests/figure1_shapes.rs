//! Integration: the qualitative shapes of Figure 1 hold on the simulated
//! runtime — the motivation of the whole paper.

use chopin::core::lbo::{geomean_curves, Clock, LboAnalysis};
use chopin::core::sweep::{run_sweep, SweepConfig};
use chopin::harness::run_suite_sweeps;
use chopin::runtime::collector::CollectorKind;
use chopin::workloads::{suite, SizeClass};
use std::collections::BTreeMap;

fn quick_sweep() -> SweepConfig {
    SweepConfig {
        collectors: CollectorKind::ALL.to_vec(),
        heap_factors: vec![1.5, 2.0, 3.0, 6.0],
        invocations: 1,
        iterations: 2,
        size: SizeClass::Default,
    }
}

fn geomeans(clock: Clock) -> BTreeMap<CollectorKind, Vec<(f64, f64)>> {
    let profiles = suite::all();
    let sweeps = run_suite_sweeps(&profiles, &quick_sweep())
        .into_result()
        .expect("sweeps run");
    let analyses: Vec<LboAnalysis> = sweeps
        .iter()
        .map(|s| LboAnalysis::compute(&s.samples, clock).expect("analysis"))
        .collect();
    geomean_curves(&analyses).expect("non-empty")
}

fn at(curves: &BTreeMap<CollectorKind, Vec<(f64, f64)>>, c: CollectorKind, x: f64) -> f64 {
    curves[&c]
        .iter()
        .find(|(f, _)| (*f - x).abs() < 1e-9)
        .unwrap_or_else(|| panic!("{c} has no point at {x}"))
        .1
}

#[test]
fn figure1b_task_clock_regression_and_time_space_tradeoff() {
    let curves = geomeans(Clock::Task);

    // The headline regression: ordering collectors by introduction year
    // orders their total CPU overhead at every heap size all five share
    // (ZGC's uncompressed pointers keep it out of 2x — biojava's
    // GMU/GMD is 1.97).
    for x in [3.0, 6.0] {
        let serial = at(&curves, CollectorKind::Serial, x);
        let parallel = at(&curves, CollectorKind::Parallel, x);
        let g1 = at(&curves, CollectorKind::G1, x);
        let shen = at(&curves, CollectorKind::Shenandoah, x);
        let zgc = at(&curves, CollectorKind::Zgc, x);
        assert!(
            serial < parallel && parallel < g1 && g1 < shen && shen < zgc,
            "at {x}x: {serial:.3} {parallel:.3} {g1:.3} {shen:.3} {zgc:.3}"
        );
    }

    // "the CPU overhead of garbage collection is 15% in the best case":
    // even the cheapest collector at the most generous heap keeps a
    // noticeable overhead, and it is a *lower bound* (>= 1).
    let best = at(&curves, CollectorKind::Serial, 6.0);
    assert!(best > 1.03, "best-case CPU overhead is visible: {best:.3}");
    assert!(best < 1.35, "but not absurd: {best:.3}");

    // Time-space tradeoff: every curve decreases with heap size.
    for (c, points) in &curves {
        for w in points.windows(2) {
            assert!(
                w[0].1 >= w[1].1 - 0.02,
                "{c}: overhead must fall as heap grows: {points:?}"
            );
        }
    }

    // At small heaps, overheads explode ("at smaller heaps, overheads
    // exceed 2x").
    let small = at(&curves, CollectorKind::Shenandoah, 1.5);
    assert!(small > 2.0, "Shenandoah at 1.5x: {small:.3}");
}

#[test]
fn figure1a_wall_clock_winners_are_parallel_and_g1() {
    let curves = geomeans(Clock::Wall);
    // "In the best case, wall clock overheads are 9% (G1 and Parallel)".
    let parallel = at(&curves, CollectorKind::Parallel, 6.0);
    let g1 = at(&curves, CollectorKind::G1, 6.0);
    let serial = at(&curves, CollectorKind::Serial, 6.0);
    let shen = at(&curves, CollectorKind::Shenandoah, 6.0);
    let zgc = at(&curves, CollectorKind::Zgc, 6.0);
    assert!(
        parallel < serial && g1 < serial,
        "single-threaded pauses cost wall time"
    );
    assert!(
        parallel < shen && parallel < zgc,
        "parallel beats concurrent on wall"
    );
    assert!(
        parallel < 1.15 && g1 < 1.2,
        "winners are single-digit-ish percent"
    );
}

#[test]
fn zgc_curve_starts_later_than_the_others() {
    // ZGC cannot complete all 22 benchmarks at small multiples of the
    // compressed-pointer minimum heap, so its geomean curve has fewer
    // points (visible in Figure 1 as a late-starting line).
    let curves = geomeans(Clock::Task);
    let zgc_points = curves[&CollectorKind::Zgc].len();
    let g1_points = curves[&CollectorKind::G1].len();
    assert!(
        zgc_points < g1_points,
        "ZGC {zgc_points} points vs G1 {g1_points}"
    );
}

#[test]
fn per_benchmark_lbo_is_a_lower_bound() {
    // LBO >= 1 by construction for every benchmark, collector and heap.
    let profile = suite::by_name("jython").expect("in suite");
    let result = run_sweep(&profile, &quick_sweep()).expect("sweep");
    for clock in [Clock::Wall, Clock::Task] {
        let lbo = LboAnalysis::compute(&result.samples, clock).expect("analysis");
        for (c, points) in lbo.curves() {
            for p in points {
                assert!(
                    p.overhead.mean() >= 1.0 - 1e-9,
                    "{c} at {}: {:?}",
                    p.heap_factor,
                    p.overhead
                );
            }
        }
    }
}
