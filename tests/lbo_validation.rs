//! Validation of the LBO methodology itself (§4.5) using the Epsilon
//! no-op collector as a *true* zero-cost baseline — something only a
//! simulator can provide.
//!
//! "Since the baseline is always an overestimate of the ideal, this
//! overhead measure is always an underestimate of the overhead, and is
//! thus a lower bound on overhead." With Epsilon (never collects, no
//! barriers) given a heap large enough to absorb the entire allocation
//! volume, we can measure the ideal directly and check the bound.

use chopin::core::lbo::{Clock, LboAnalysis, RunSample};
use chopin::core::sweep::{run_sweep, SweepConfig};
use chopin::core::{BenchmarkRunner, Suite};
use chopin::runtime::collector::CollectorKind;
use chopin::workloads::{suite, SizeClass};

/// Run the workload under Epsilon with a heap big enough to never exhaust.
fn epsilon_cost(name: &str, clock: Clock) -> f64 {
    let profile = suite::by_name(name).expect("in suite");
    let headroom = profile.total_allocation_bytes() * 2 + (1u64 << 30);
    let runs = BenchmarkRunner::for_profile(profile)
        .collector(CollectorKind::Epsilon)
        .heap_bytes(headroom)
        .iterations(2)
        .noise(0.0)
        .run()
        .expect("epsilon completes in an exhaustion-proof heap");
    let timed = runs.timed();
    assert_eq!(timed.telemetry().gc_count, 0, "epsilon never collects");
    assert!(timed.telemetry().pauses.is_empty());
    match clock {
        Clock::Wall => timed.wall_time().as_secs_f64(),
        Clock::Task => timed.task_clock().as_secs_f64(),
    }
}

fn sweep_samples(name: &str) -> Vec<RunSample> {
    let profile = suite::by_name(name).expect("in suite");
    let config = SweepConfig {
        collectors: CollectorKind::ALL.to_vec(),
        heap_factors: vec![1.5, 2.0, 3.0, 6.0],
        invocations: 1,
        iterations: 2,
        size: SizeClass::Default,
    };
    run_sweep(&profile, &config).expect("sweep runs").samples
}

#[test]
fn lbo_is_a_lower_bound_on_the_true_overhead() {
    for name in ["jython", "fop"] {
        let samples = sweep_samples(name);
        for clock in [Clock::Wall, Clock::Task] {
            let ideal = epsilon_cost(name, clock);
            let analysis = LboAnalysis::compute(&samples, clock).expect("analysis");

            // The distilled baseline must over-estimate the ideal...
            assert!(
                analysis.distilled_s() >= ideal * 0.98,
                "{name}/{clock}: distilled {:.4} vs ideal {:.4}",
                analysis.distilled_s(),
                ideal
            );

            // ...so every reported overhead under-estimates the true one.
            for s in &samples {
                let measured = match clock {
                    Clock::Wall => s.wall_s,
                    Clock::Task => s.task_s,
                };
                let true_overhead = measured / ideal;
                let reported = measured / analysis.distilled_s();
                assert!(
                    reported <= true_overhead + 1e-9,
                    "{name}/{clock}/{}@{}: reported {reported:.4} > true {true_overhead:.4}",
                    s.collector,
                    s.heap_factor
                );
            }
        }
    }
}

#[test]
fn epsilon_is_cheaper_than_every_production_collector() {
    // Given unconstrained memory, never collecting wins on both clocks —
    // §2's "it may be best not to garbage collect at all".
    let ideal_wall = epsilon_cost("jython", Clock::Wall);
    let ideal_task = epsilon_cost("jython", Clock::Task);
    for s in sweep_samples("jython") {
        assert!(s.wall_s >= ideal_wall * 0.995, "{s:?}");
        assert!(s.task_s >= ideal_task * 0.995, "{s:?}");
    }
}

#[test]
fn epsilon_fails_fast_in_a_bounded_heap() {
    let suite = Suite::chopin();
    let result = suite
        .benchmark("jython")
        .expect("in suite")
        .runner()
        .collector(CollectorKind::Epsilon)
        .heap_factor(2.0)
        .iterations(1)
        .run();
    assert!(
        result.is_err(),
        "jython churns 139x its min heap; epsilon must exhaust 2x"
    );
}

#[test]
fn epsilon_survives_workloads_with_low_turnover_and_huge_heaps() {
    // jme turns over only 12x its 29 MB min heap; a 1 GB heap absorbs it.
    let suite = Suite::chopin();
    let runs = suite
        .benchmark("jme")
        .expect("in suite")
        .runner()
        .collector(CollectorKind::Epsilon)
        .heap_bytes(1 << 30)
        .iterations(1)
        .run()
        .expect("jme fits");
    assert_eq!(runs.timed().telemetry().gc_count, 0);
}
