//! Worker liveness tracking: the heartbeat reaper as a pure, clock-free
//! state machine.
//!
//! The transport layer (`chopin_harness::fleet`) used to keep its
//! `last_seen` map and `dead` set inline, which made the reaper's edge
//! cases — a `@beat` delayed *just* past the deadline, a worker declared
//! dead twice, a reaped worker reconnecting — untestable without real
//! sockets and real sleeps. This module extracts that logic behind a
//! caller-supplied millisecond clock, the same discipline as
//! [`crate::lease::LeaseTable`], so the edge cases are pinned by
//! virtual-clock unit tests and the net-fault storms can rely on them:
//!
//! * a worker is **stale** once `now - last_seen > timeout`; the reap is
//!   idempotent (`declare_dead` reports whether this call killed it), so
//!   a frame raced against the deadline can never double-reap;
//! * a dead worker that speaks again (reconnection after a partition
//!   heals) is **revived** explicitly, resetting its liveness clock.

use std::collections::{BTreeMap, BTreeSet};

/// Liveness state for every worker the coordinator has ever admitted,
/// driven by an external millisecond clock.
#[derive(Debug, Clone)]
pub struct Liveness {
    timeout_ms: u64,
    last_seen: BTreeMap<u64, u64>,
    dead: BTreeSet<u64>,
}

impl Liveness {
    /// A tracker reaping workers silent for more than `timeout_ms`.
    #[must_use]
    pub fn new(timeout_ms: u64) -> Liveness {
        Liveness {
            timeout_ms,
            last_seen: BTreeMap::new(),
            dead: BTreeSet::new(),
        }
    }

    /// Record proof of life for `worker` at `now` (any frame counts, not
    /// just `@beat`). A dead worker stays dead until [`Liveness::revive`]
    /// — hearing a late frame from a reaped worker must not resurrect it
    /// behind the lease table's back.
    pub fn observe(&mut self, worker: u64, now: u64) {
        if !self.dead.contains(&worker) {
            self.last_seen.insert(worker, now);
        }
    }

    /// Workers that are now past the silence deadline and not yet
    /// declared dead, in id order.
    #[must_use]
    pub fn stale(&self, now: u64) -> Vec<u64> {
        self.last_seen
            .iter()
            .filter(|(worker, seen)| {
                !self.dead.contains(worker) && now.saturating_sub(**seen) > self.timeout_ms
            })
            .map(|(worker, _)| *worker)
            .collect()
    }

    /// Declare `worker` dead. Returns `true` iff this call killed it —
    /// the idempotence guarantee the reaper and the EOF path both lean
    /// on, so a worker reaped at the deadline and seen hanging up a
    /// poll later is only ever processed once.
    pub fn declare_dead(&mut self, worker: u64) -> bool {
        self.last_seen.remove(&worker);
        self.dead.insert(worker)
    }

    /// The last instant `worker` was observed, if it is tracked and not
    /// dead — the crash-report timestamp the transport records before a
    /// reap erases it.
    #[must_use]
    pub fn last_seen(&self, worker: u64) -> Option<u64> {
        self.last_seen.get(&worker).copied()
    }

    /// Whether `worker` is currently declared dead.
    #[must_use]
    pub fn is_dead(&self, worker: u64) -> bool {
        self.dead.contains(&worker)
    }

    /// Bring a dead worker back (it reconnected and re-admitted) and
    /// restart its liveness clock at `now`. Returns `true` iff the
    /// worker was actually dead.
    pub fn revive(&mut self, worker: u64, now: u64) -> bool {
        let was_dead = self.dead.remove(&worker);
        self.last_seen.insert(worker, now);
        was_dead
    }

    /// Forget `worker` entirely (it drained cleanly; its silence is no
    /// longer meaningful).
    pub fn forget(&mut self, worker: u64) {
        self.last_seen.remove(&worker);
        self.dead.remove(&worker);
    }

    /// How many workers are currently declared dead.
    #[must_use]
    pub fn dead_count(&self) -> usize {
        self.dead.len()
    }

    /// The earliest instant at which some live worker could become
    /// stale, for event-loop timeout clamping. `None` when nothing is
    /// tracked.
    #[must_use]
    pub fn next_deadline(&self) -> Option<u64> {
        self.last_seen
            .iter()
            .filter(|(worker, _)| !self.dead.contains(worker))
            .map(|(_, seen)| seen + self.timeout_ms + 1)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMEOUT: u64 = 10_000;

    #[test]
    fn a_beat_delayed_just_past_the_deadline_reaps_exactly_once() {
        // The reaper edge case from the net-fault storms: worker 3's
        // @beat is delayed so its last observation ages just past the
        // timeout. The reaper must fire exactly once — not zero times
        // (the worker is silent), not twice (the poll loop re-checks
        // every tick).
        let mut live = Liveness::new(TIMEOUT);
        live.observe(3, 0);
        live.observe(4, 0);
        live.observe(4, TIMEOUT); // worker 4 keeps beating

        assert!(live.stale(TIMEOUT).is_empty(), "deadline is exclusive");
        assert_eq!(live.stale(TIMEOUT + 1), vec![3], "one tick past: stale");

        assert!(live.declare_dead(3), "first declaration kills");
        assert!(!live.declare_dead(3), "second declaration is a no-op");
        assert!(live.is_dead(3));

        // Subsequent polls never re-report the dead worker.
        assert!(live.stale(TIMEOUT + 2).is_empty());
        assert!(live.stale(2 * TIMEOUT + 2).contains(&4), "4 ages out later");
    }

    #[test]
    fn the_delayed_beat_itself_cannot_resurrect_a_reaped_worker() {
        // The in-flight @beat finally arrives after the reap. Observing
        // it must not bring the worker back — its leases were already
        // stolen; only an explicit revive (re-admission) may.
        let mut live = Liveness::new(TIMEOUT);
        live.observe(3, 0);
        assert!(live.declare_dead(3));
        live.observe(3, TIMEOUT + 500); // the late beat lands
        assert!(live.is_dead(3));
        assert!(live.stale(3 * TIMEOUT).is_empty());

        assert!(live.revive(3, 2 * TIMEOUT), "re-admission revives");
        assert!(!live.is_dead(3));
        assert!(live.stale(3 * TIMEOUT).is_empty(), "clock restarted");
        assert_eq!(live.stale(3 * TIMEOUT + 2), vec![3]);
    }

    #[test]
    fn deadline_clamping_tracks_the_quietest_live_worker() {
        let mut live = Liveness::new(TIMEOUT);
        assert_eq!(live.next_deadline(), None);
        live.observe(1, 100);
        live.observe(2, 700);
        assert_eq!(live.next_deadline(), Some(100 + TIMEOUT + 1));
        live.declare_dead(1);
        assert_eq!(live.next_deadline(), Some(700 + TIMEOUT + 1));
        live.forget(2);
        assert_eq!(live.next_deadline(), None);
        assert_eq!(live.dead_count(), 1);
    }
}
