//! Crash-tolerant sharding of the chopin sweep matrix across worker
//! processes.
//!
//! The single-process [`SuiteSupervisor`] already survives panics,
//! hangs, SIGKILL storms and its own death (journal + `--resume`), but
//! it runs the whole benchmarks × collectors × heap-factors matrix on
//! one machine. This crate is the coordination core that scales the
//! same loop horizontally without giving up its central guarantee: the
//! sharded CSV stays **byte-identical** to a sequential run.
//!
//! Three pure, transport-free layers (the sockets and processes live in
//! `chopin_harness::fleet`):
//!
//! * [`protocol`] — the line-framed coordinator⇄worker wire format,
//!   extending the sandbox heartbeat pipe's escaping discipline with
//!   field-level space folding so a torn line from a dying worker
//!   corrupts at most itself and any payload survives any field.
//! * [`lease`] — the coordinator's brain: a [`lease::LeaseTable`]
//!   state machine handing out *leases* (cell + deadline + attempt)
//!   driven entirely by a caller-supplied clock, with expiry →
//!   reassignment, seeded full-jitter backoff on re-lease (the same
//!   [`SupervisorPolicy`] jitter as sequential retries), per-slot
//!   crash quarantine and work-stealing for stragglers. The
//!   [`lease::LeaseEvent`] pure-step surface plus the canonical
//!   [`lease::LeaseTable::snapshot`] rendering are what let the
//!   `chopin-model` checker exhaustively explore this exact state
//!   machine under a virtual clock.
//! * [`merge`] — the determinism anchor: duplicate completions from
//!   stolen or re-leased cells are resolved by a fixed
//!   `(attempt, worker)` tiebreak, so merged journals and the final
//!   CSV never depend on which worker happened to finish first.
//! * [`liveness`] — the heartbeat reaper as a clock-free state machine:
//!   staleness, idempotent death declaration, and explicit revival on
//!   reconnect, pinned by virtual-clock tests so the net-fault storms
//!   (delayed `@beat`s, healed partitions) rest on proven edge cases.
//!
//! [`config::FleetPlan`] carries the statically-analyzable fleet shape
//! into the pre-flight analyzer (rules R1201–R1203);
//! [`config::FleetConfig`] is the full runtime configuration including
//! the worker-kill storm used by `artifact chaos --workers`.
//!
//! [`SuiteSupervisor`]: https://docs.rs/chopin-harness
//! [`SupervisorPolicy`]: chopin_faults::SupervisorPolicy

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod lease;
pub mod liveness;
pub mod merge;
pub mod protocol;

pub use config::{parse_storm_flag, FleetConfig, FleetPlan, WorkerStormPlan, MAX_FLEET_WORKERS};
pub use lease::{Grant, LeaseEffect, LeaseEvent, LeaseGrant, LeaseMetrics, LeaseTable};
pub use liveness::Liveness;
pub use merge::CellMerge;
pub use protocol::{admission, FleetFrame};
