//! The coordinator's lease table: which worker owns which cell, for how
//! long, and what happens when it dies.
//!
//! The table is a pure state machine over a caller-supplied millisecond
//! clock (`now`): the transport layer feeds it wall time from a
//! `WallSpan`, the tests feed it a virtual clock, and nothing in here
//! ever sleeps — which is what makes lease expiry, reassignment and
//! backoff-sequence pinning testable without real time.
//!
//! Life of a cell:
//!
//! ```text
//!            grant                    complete
//! Pending ───────────▶ Leased ───────────────────▶ Completed
//!    ▲                   │ ▲                            ▲
//!    │   expiry/death    │ │ steal (duplicate lease)    │ late/duplicate
//!    └───────────────────┘ └────────────────────────────┘ Done: merged by
//!        (+ seeded full-jitter backoff;                    (attempt, worker)
//!         cell-level Fail also burns retry budget
//!         ──▶ Quarantined past max_retries)
//! ```
//!
//! Two failure currencies are deliberately distinct: a **cell** failure
//! (the workload panicked or errored — reported by a live worker via
//! `@fail`) burns the cell's retry budget exactly as a sequential retry
//! would, while a **worker** failure (death, EOF, lease expiry) merely
//! requeues the cell with backoff. A storm that SIGKILLs half the fleet
//! therefore can never quarantine an innocent cell, which is what lets
//! the merged CSV stay byte-identical to an undisturbed run.

use std::collections::BTreeMap;

use chopin_faults::SupervisorPolicy;

use crate::merge::CellMerge;

/// Fleet counters, surfaced through the chopin-obs registry as
/// `fleet.*` by the harness transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseMetrics {
    /// Leases handed out (including re-leases and steals).
    pub issued: u64,
    /// Leases that outlived their deadline and were reassigned.
    pub expired: u64,
    /// Duplicate leases granted on straggler cells.
    pub stolen: u64,
    /// Cells put back on the pending queue with backoff.
    pub requeued: u64,
    /// Duplicate completions resolved by the `(attempt, worker)` merge.
    pub conflicts: u64,
    /// Worker deaths reported by the transport.
    pub worker_deaths: u64,
}

/// A lease handed to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseGrant {
    /// Lease id, echoed back in `Done`/`Fail`.
    pub lease: u64,
    /// Index of the leased cell in the schedule.
    pub cell: usize,
    /// 1-based attempt number for this cell.
    pub attempt: u32,
    /// Whether this is a duplicate lease stolen from a straggler.
    pub stolen: bool,
}

/// The coordinator's answer to a worker asking for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// Run this cell.
    Lease(LeaseGrant),
    /// Nothing grantable yet; ask again in this many milliseconds.
    Wait(u64),
    /// Every cell is resolved; exit cleanly.
    Drain,
}

/// What a cell-level failure report did to the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailOutcome {
    /// The cell went back on the pending queue (with backoff).
    Requeued,
    /// The cell exhausted its retry budget and is quarantined.
    Quarantined,
    /// The report was stale (unknown lease, or the cell already
    /// resolved) and changed nothing.
    Ignored,
}

/// How one cell ended up once the table is drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellResolution {
    /// Completed; the merged winner's provenance and payload.
    Completed {
        /// Winning attempt number.
        attempt: u32,
        /// Winning worker id.
        worker: u64,
        /// The winner's rendered response payload.
        payload: String,
    },
    /// Retry budget exhausted by cell-level failures.
    Quarantined {
        /// The last failure reason reported for the cell.
        reason: String,
    },
    /// Never resolved (the coordinator aborted mid-run).
    Unresolved,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pending { not_before: u64 },
    Leased,
    Completed,
    Quarantined,
}

#[derive(Debug, Clone)]
struct CellState {
    phase: Phase,
    attempts: u32,
    failures: u32,
    requeues: u32,
    outstanding: u32,
    merge: CellMerge<String>,
    last_failure: Option<String>,
}

impl CellState {
    fn resolved(&self) -> bool {
        matches!(self.phase, Phase::Completed | Phase::Quarantined)
    }
}

#[derive(Debug, Clone, Copy)]
struct LeaseRecord {
    cell: usize,
    worker: u64,
    attempt: u32,
    issued_at: u64,
    active: bool,
}

/// One wire-level event applied to the lease table — the pure-step
/// surface used by the `chopin-model` conformance checker, folding every
/// mutator into a single `(state, event, now) -> effect` transition
/// function. The transport keeps calling the named methods; `step` is
/// a thin dispatcher over them, so the model checks the shipped code
/// paths, not a parallel copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseEvent {
    /// `@next`: a worker asks for work.
    Ask {
        /// The requesting worker.
        worker: u64,
    },
    /// `@done`: a worker reports a completed lease.
    Done {
        /// The completed lease.
        lease: u64,
        /// Rendered cell response.
        payload: String,
    },
    /// `@fail`: a worker reports a cell-level failure.
    Fail {
        /// The failed lease.
        lease: u64,
        /// `panicked:<msg>` or `errored:<msg>`.
        reason: String,
    },
    /// EOF / SIGKILL / reaped child: the transport saw a worker die.
    WorkerDead {
        /// The dead worker.
        worker: u64,
    },
    /// A poll timeout fired: sweep expired leases.
    Tick,
}

/// What a [`LeaseEvent`] did to the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseEffect {
    /// `Ask` answered with a grant, a wait, or a drain.
    Granted(Grant),
    /// `Done` merged (`true`) or named an unknown lease (`false`).
    Merged(bool),
    /// `Fail` requeued, quarantined, or ignored.
    Failed(FailOutcome),
    /// `WorkerDead` released the worker's leases.
    Released,
    /// `Tick` expired this many leases.
    Expired(u64),
}

/// The lease state machine. See the module docs for the lifecycle.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    policy: SupervisorPolicy,
    deadline_ms: u64,
    seeds: Vec<u64>,
    cells: Vec<CellState>,
    leases: BTreeMap<u64, LeaseRecord>,
    next_lease: u64,
    metrics: LeaseMetrics,
}

impl LeaseTable {
    /// A table over one cell per entry of `seeds` (the per-cell backoff
    /// seeds, i.e. `cell_seed` of the schedule), retrying under
    /// `policy` with the given lease deadline.
    #[must_use]
    pub fn new(seeds: Vec<u64>, policy: SupervisorPolicy, deadline_ms: u64) -> Self {
        let cells = seeds
            .iter()
            .map(|_| CellState {
                phase: Phase::Pending { not_before: 0 },
                attempts: 0,
                failures: 0,
                requeues: 0,
                outstanding: 0,
                merge: CellMerge::new(),
                last_failure: None,
            })
            .collect();
        LeaseTable {
            policy,
            deadline_ms,
            seeds,
            cells,
            leases: BTreeMap::new(),
            next_lease: 0,
            metrics: LeaseMetrics::default(),
        }
    }

    /// Number of cells in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the table has no cells at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Pre-resolve a cell from a recovered journal entry (resume after a
    /// coordinator crash). Duplicates across worker journals go through
    /// the same `(attempt, worker)` merge as live completions.
    pub fn absorb(&mut self, cell: usize, attempt: u32, worker: u64, payload: String) {
        let Some(state) = self.cells.get_mut(cell) else {
            return;
        };
        if state.merge.is_resolved() {
            self.metrics.conflicts += 1;
        }
        state.merge.offer(attempt, worker, payload);
        state.attempts = state.attempts.max(attempt);
        state.phase = Phase::Completed;
    }

    /// Hand out work to `worker` at virtual time `now`.
    pub fn grant(&mut self, worker: u64, now: u64) -> Grant {
        // Lowest pending index first: grant order is deterministic given
        // the request order, and matches the sequential schedule.
        let mut wait: Option<u64> = None;
        let mut grantable: Option<usize> = None;
        for (idx, cell) in self.cells.iter().enumerate() {
            if let Phase::Pending { not_before } = cell.phase {
                if not_before <= now {
                    grantable = Some(idx);
                    break;
                }
                let delay = not_before - now;
                wait = Some(wait.map_or(delay, |w: u64| w.min(delay)));
            }
        }
        if let Some(idx) = grantable {
            return Grant::Lease(self.issue(idx, worker, now, false));
        }
        if let Some(delay) = wait {
            return Grant::Wait(delay.max(1));
        }
        if self.cells.iter().all(CellState::resolved) {
            return Grant::Drain;
        }
        // No pending, not done: everything left is leased out. Steal a
        // duplicate lease on the most straggling cell — but only once
        // its lease has aged past half the deadline, so healthy runs
        // never fork duplicate work.
        let steal_age = (self.deadline_ms / 2).max(1);
        let mut straggler: Option<(u64, usize)> = None;
        for (idx, cell) in self.cells.iter().enumerate() {
            if cell.phase != Phase::Leased || cell.outstanding >= 2 {
                continue;
            }
            let held_by_requester = self
                .leases
                .values()
                .any(|l| l.active && l.cell == idx && l.worker == worker);
            if held_by_requester {
                continue;
            }
            let oldest = self
                .leases
                .values()
                .filter(|l| l.active && l.cell == idx)
                .map(|l| l.issued_at)
                .min();
            if let Some(issued_at) = oldest {
                if issued_at + steal_age <= now
                    && straggler.is_none_or(|(best, _)| issued_at < best)
                {
                    straggler = Some((issued_at, idx));
                }
            }
        }
        if let Some((_, idx)) = straggler {
            self.metrics.stolen += 1;
            return Grant::Lease(self.issue(idx, worker, now, true));
        }
        // Wait until the youngest lease crosses the steal threshold or
        // its deadline, whichever the caller hits first.
        let next_edge = self
            .leases
            .values()
            .filter(|l| l.active)
            .map(|l| (l.issued_at + steal_age).saturating_sub(now))
            .min()
            .unwrap_or(steal_age);
        Grant::Wait(next_edge.clamp(1, self.deadline_ms.max(1)))
    }

    fn issue(&mut self, cell: usize, worker: u64, now: u64, stolen: bool) -> LeaseGrant {
        let state = &mut self.cells[cell];
        state.attempts += 1;
        state.outstanding += 1;
        state.phase = Phase::Leased;
        let lease = self.next_lease;
        self.next_lease += 1;
        self.metrics.issued += 1;
        self.leases.insert(
            lease,
            LeaseRecord {
                cell,
                worker,
                attempt: state.attempts,
                issued_at: now,
                active: true,
            },
        );
        LeaseGrant {
            lease,
            cell,
            attempt: state.attempts,
            stolen,
        }
    }

    fn requeue(&mut self, cell: usize, now: u64) {
        let seed = self.seeds[cell];
        let state = &mut self.cells[cell];
        if state.resolved() || state.outstanding > 0 {
            return;
        }
        let delay = self.policy.backoff_jitter_ms(state.requeues, seed);
        state.requeues += 1;
        state.phase = Phase::Pending {
            not_before: now.saturating_add(delay),
        };
        self.metrics.requeued += 1;
    }

    /// Apply one wire-level event at virtual time `now`. Dispatches to
    /// the named mutators — the model checker drives the table through
    /// this single entry point so every transition it explores is the
    /// shipped transition.
    pub fn step(&mut self, event: LeaseEvent, now: u64) -> LeaseEffect {
        match event {
            LeaseEvent::Ask { worker } => LeaseEffect::Granted(self.grant(worker, now)),
            LeaseEvent::Done { lease, payload } => {
                LeaseEffect::Merged(self.complete(lease, payload))
            }
            LeaseEvent::Fail { lease, reason } => {
                LeaseEffect::Failed(self.fail(lease, &reason, now))
            }
            LeaseEvent::WorkerDead { worker } => {
                self.worker_dead(worker, now);
                LeaseEffect::Released
            }
            LeaseEvent::Tick => LeaseEffect::Expired(self.expire(now)),
        }
    }

    /// A worker reported a completed lease. Late and duplicate reports
    /// are welcome: they feed the `(attempt, worker)` merge, no matter
    /// how far past the lease deadline the clock has moved — acceptance
    /// is keyed on the lease id being known, never on `now`. Returns
    /// `false` for an unknown lease id.
    pub fn complete(&mut self, lease: u64, payload: String) -> bool {
        let Some(record) = self.leases.get_mut(&lease) else {
            return false;
        };
        let (cell, worker, attempt, was_active) =
            (record.cell, record.worker, record.attempt, record.active);
        record.active = false;
        let state = &mut self.cells[cell];
        if was_active {
            state.outstanding = state.outstanding.saturating_sub(1);
        }
        if state.merge.is_resolved() {
            self.metrics.conflicts += 1;
        }
        state.merge.offer(attempt, worker, payload);
        state.phase = Phase::Completed;
        true
    }

    /// A worker reported a **cell-level** failure (panic/error inside
    /// the workload): burns the cell's retry budget.
    pub fn fail(&mut self, lease: u64, reason: &str, now: u64) -> FailOutcome {
        let Some(record) = self.leases.get_mut(&lease) else {
            return FailOutcome::Ignored;
        };
        if !record.active {
            return FailOutcome::Ignored;
        }
        record.active = false;
        let cell = record.cell;
        let state = &mut self.cells[cell];
        state.outstanding = state.outstanding.saturating_sub(1);
        if state.resolved() {
            return FailOutcome::Ignored;
        }
        state.failures += 1;
        state.last_failure = Some(reason.to_string());
        if state.failures > self.policy.max_retries {
            state.phase = Phase::Quarantined;
            return FailOutcome::Quarantined;
        }
        if state.outstanding == 0 {
            self.requeue(cell, now);
        }
        FailOutcome::Requeued
    }

    /// The transport saw a worker die (EOF, SIGKILL, reaped child): all
    /// its outstanding leases are released and their cells requeued with
    /// backoff — **without** burning any cell's retry budget.
    pub fn worker_dead(&mut self, worker: u64, now: u64) {
        self.metrics.worker_deaths += 1;
        let victims: Vec<(u64, usize)> = self
            .leases
            .iter()
            .filter(|(_, l)| l.active && l.worker == worker)
            .map(|(id, l)| (*id, l.cell))
            .collect();
        for (id, cell) in victims {
            if let Some(record) = self.leases.get_mut(&id) {
                record.active = false;
            }
            let state = &mut self.cells[cell];
            state.outstanding = state.outstanding.saturating_sub(1);
            if !state.resolved() && state.outstanding == 0 {
                self.requeue(cell, now);
            }
        }
    }

    /// Indices of the cells currently leased to `worker`, in schedule
    /// order — what the transport names in a crash report *before*
    /// declaring the worker dead (which releases the leases).
    #[must_use]
    pub fn held_cells(&self, worker: u64) -> Vec<usize> {
        self.leases
            .values()
            .filter(|l| l.active && l.worker == worker)
            .map(|l| l.cell)
            .collect()
    }

    /// Expire every lease past its deadline, requeueing the affected
    /// cells. Returns the number of leases expired.
    ///
    /// The deadline instant itself belongs to expiry: a lease issued at
    /// `t` with deadline `D` is expired by `expire(t + D)`. A `Done`
    /// arriving at exactly `t + D` is therefore accepted either way —
    /// [`complete`](Self::complete) never consults the clock — and the
    /// `(attempt, worker)` merge makes the final resolution identical
    /// whichever of the two is processed first (pinned by
    /// `done_at_the_deadline_instant_is_order_independent`).
    pub fn expire(&mut self, now: u64) -> u64 {
        let victims: Vec<(u64, usize)> = self
            .leases
            .iter()
            .filter(|(_, l)| l.active && l.issued_at + self.deadline_ms <= now)
            .map(|(id, l)| (*id, l.cell))
            .collect();
        let count = victims.len() as u64;
        for (id, cell) in victims {
            if let Some(record) = self.leases.get_mut(&id) {
                record.active = false;
            }
            self.metrics.expired += 1;
            let state = &mut self.cells[cell];
            state.outstanding = state.outstanding.saturating_sub(1);
            if !state.resolved() && state.outstanding == 0 {
                self.requeue(cell, now);
            }
        }
        count
    }

    /// Milliseconds until the earliest outstanding lease deadline, if
    /// any lease is outstanding (the coordinator's poll timeout).
    #[must_use]
    pub fn next_deadline_in(&self, now: u64) -> Option<u64> {
        self.leases
            .values()
            .filter(|l| l.active)
            .map(|l| (l.issued_at + self.deadline_ms).saturating_sub(now))
            .min()
    }

    /// Whether every cell is resolved (completed or quarantined).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.cells.iter().all(CellState::resolved)
    }

    /// Number of resolved cells so far.
    #[must_use]
    pub fn resolved_count(&self) -> usize {
        self.cells.iter().filter(|c| c.resolved()).count()
    }

    /// The fleet counters.
    #[must_use]
    pub fn metrics(&self) -> LeaseMetrics {
        self.metrics
    }

    /// The merged winner of one cell, if any completion has been
    /// offered: `(attempt, worker, payload)`.
    #[must_use]
    pub fn cell_winner(&self, cell: usize) -> Option<(u32, u64, &str)> {
        self.cells
            .get(cell)?
            .merge
            .winner()
            .map(|(a, w, p)| (a, w, p.as_str()))
    }

    /// One resolution per cell in schedule order, without consuming the
    /// table — how the model checker reads the would-be CSV out of an
    /// intermediate state.
    #[must_use]
    pub fn resolutions(&self) -> Vec<CellResolution> {
        self.cells
            .iter()
            .map(|cell| match cell.phase {
                Phase::Completed => match cell.merge.winner() {
                    Some((attempt, worker, payload)) => CellResolution::Completed {
                        attempt,
                        worker,
                        payload: payload.clone(),
                    },
                    None => CellResolution::Unresolved,
                },
                Phase::Quarantined => CellResolution::Quarantined {
                    reason: cell
                        .last_failure
                        .clone()
                        .unwrap_or_else(|| "errored:unknown".to_string()),
                },
                Phase::Pending { .. } | Phase::Leased => CellResolution::Unresolved,
            })
            .collect()
    }

    /// Consume the table, yielding one resolution per cell in schedule
    /// order.
    #[must_use]
    pub fn into_resolutions(self) -> Vec<CellResolution> {
        self.resolutions()
    }

    /// Canonical rendering of the table at virtual time `now`, with
    /// every embedded instant rebased to a delta against `now` — two
    /// tables that differ only by a uniform clock shift render
    /// identically, which is what lets the model checker deduplicate
    /// states reached at different absolute times. Everything that can
    /// influence *future* behaviour or the final CSV is included
    /// (phases, budgets, merge winners, live lease records);
    /// report-only counters ([`LeaseMetrics`], merge conflict tallies)
    /// are deliberately left out — and so are spent lease records and
    /// the lease counter, a symmetry reduction the model relies on. A
    /// spent record's `(cell, worker, attempt)` is fully determined by
    /// the `Done`/`Fail` frame that could still name it, and unissued
    /// lease ids are opaque names, so two tables differing only there
    /// behave identically up to renaming.
    #[must_use]
    pub fn snapshot(&self, now: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (idx, cell) in self.cells.iter().enumerate() {
            let phase = match cell.phase {
                Phase::Pending { not_before } => {
                    format!("pending+{}", not_before.saturating_sub(now))
                }
                Phase::Leased => "leased".to_string(),
                Phase::Completed => "completed".to_string(),
                Phase::Quarantined => "quarantined".to_string(),
            };
            let winner = cell
                .merge
                .winner()
                .map(|(a, w, p)| format!("{a}/{w}/{p:?}"))
                .unwrap_or_default();
            let failure = cell.last_failure.as_deref().unwrap_or("");
            let _ = writeln!(
                out,
                "cell {idx} {phase} a{} f{} r{} o{} win[{winner}] last[{failure:?}]",
                cell.attempts, cell.failures, cell.requeues, cell.outstanding,
            );
        }
        for (id, lease) in self.leases.iter().filter(|(_, l)| l.active) {
            let _ = writeln!(
                out,
                "lease {id} c{} w{} a{} age{}",
                lease.cell,
                lease.worker,
                lease.attempt,
                now.saturating_sub(lease.issued_at),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(cells: usize, deadline_ms: u64, max_retries: u32) -> LeaseTable {
        let policy = SupervisorPolicy {
            cell_deadline_ms: Some(30_000),
            max_retries,
            backoff_base_ms: 10,
            backoff_max_ms: 1_000,
        };
        // Distinct fixed seeds per cell, as cell_seed would produce.
        let seeds = (0..cells).map(|i| 0xC0FFEE + i as u64).collect();
        LeaseTable::new(seeds, policy, deadline_ms)
    }

    fn lease_of(grant: Grant) -> LeaseGrant {
        match grant {
            Grant::Lease(l) => l,
            other => panic!("expected a lease, got {other:?}"),
        }
    }

    #[test]
    fn expiry_reassigns_to_another_worker_with_pinned_backoff() {
        let mut t = table(1, 100, 2);
        let policy = t.policy;
        let seed = t.seeds[0];
        let first = lease_of(t.grant(0, 0));
        assert_eq!((first.cell, first.attempt), (0, 1));
        // One millisecond short of the deadline: nothing expires, and
        // another worker gets told to wait (steal threshold not hit
        // either at age < deadline/2... it is at 99 > 50, so it steals).
        assert_eq!(t.expire(99), 0);
        // At the deadline the lease expires and the cell requeues with
        // the exact sequential jitter for its first requeue.
        assert_eq!(t.expire(100), 1);
        assert_eq!(t.metrics().expired, 1);
        let backoff = policy.backoff_jitter_ms(0, seed);
        assert!(backoff > 0, "seed chosen so the delay is visible");
        match t.grant(1, 100) {
            Grant::Wait(ms) => assert_eq!(ms, backoff),
            other => panic!("expected backoff wait, got {other:?}"),
        }
        let second = lease_of(t.grant(1, 100 + backoff));
        assert_eq!((second.cell, second.attempt), (0, 2));
        // The late worker's completion for the expired lease still
        // counts as a merge candidate — and wins on lower attempt.
        assert!(t.complete(first.lease, "late-but-first-attempt".to_string()));
        assert!(t.complete(second.lease, "release".to_string()));
        assert_eq!(t.metrics().conflicts, 1);
        let res = t.into_resolutions();
        assert_eq!(
            res[0],
            CellResolution::Completed {
                attempt: 1,
                worker: 0,
                payload: "late-but-first-attempt".to_string()
            }
        );
    }

    #[test]
    fn requeue_backoff_sequence_is_pinned_to_the_supervisor_jitter() {
        let mut t = table(1, 1_000_000, 100);
        let policy = t.policy;
        let seed = t.seeds[0];
        let mut now = 0u64;
        let mut observed = Vec::new();
        for _ in 0..4 {
            let grant = lease_of(t.grant(0, now));
            assert_eq!(
                t.fail(grant.lease, "errored:flaky", now),
                FailOutcome::Requeued
            );
            match t.grant(0, now) {
                Grant::Wait(ms) => {
                    observed.push(ms);
                    now += ms;
                }
                Grant::Lease(l) => {
                    // Zero jitter: immediately grantable again.
                    observed.push(0);
                    assert_eq!(t.fail(l.lease, "errored:flaky", now), FailOutcome::Requeued);
                    // Re-align: the next loop iteration re-grants; undo
                    // the extra fail by not counting it.
                    break;
                }
                Grant::Drain => panic!("not done"),
            }
        }
        let expected: Vec<u64> = (0..observed.len() as u32)
            .map(|a| policy.backoff_jitter_ms(a, seed))
            .collect();
        assert_eq!(
            observed, expected,
            "full-jitter sequence must match the sequential supervisor"
        );
    }

    #[test]
    fn worker_death_requeues_without_burning_retry_budget() {
        let mut t = table(1, 10_000, 0); // zero retries: one cell failure quarantines
        for round in 0..5u64 {
            let now = round * 2_000;
            let grant = lease_of(t.grant(round, now));
            assert_eq!(grant.cell, 0);
            t.worker_dead(round, now);
        }
        assert_eq!(t.metrics().worker_deaths, 5);
        assert!(!t.is_done(), "cell must still be schedulable");
        // A genuine cell failure, by contrast, quarantines immediately
        // under max_retries = 0.
        let now = 20_000;
        let grant = lease_of(t.grant(9, now));
        assert_eq!(
            t.fail(grant.lease, "panicked:boom", now),
            FailOutcome::Quarantined
        );
        assert!(t.is_done());
        let res = t.into_resolutions();
        assert_eq!(
            res[0],
            CellResolution::Quarantined {
                reason: "panicked:boom".to_string()
            }
        );
    }

    #[test]
    fn stragglers_are_stolen_and_duplicates_merge_deterministically() {
        let mut t = table(2, 1_000, 2);
        let a = lease_of(t.grant(0, 0));
        let b = lease_of(t.grant(1, 0));
        assert_ne!(a.cell, b.cell);
        // Worker 1 finishes; nothing pending, worker 0's lease is too
        // young to steal.
        assert!(t.complete(b.lease, "cell1".to_string()));
        match t.grant(1, 100) {
            Grant::Wait(ms) => assert_eq!(ms, 400, "until the steal threshold at deadline/2"),
            other => panic!("expected wait, got {other:?}"),
        }
        // Past half the deadline the straggler is stolen.
        let stolen = lease_of(t.grant(1, 500));
        assert!(stolen.stolen);
        assert_eq!(stolen.cell, a.cell);
        assert_eq!(stolen.attempt, 2);
        assert_eq!(t.metrics().stolen, 1);
        // Both finish; the original attempt wins regardless of order.
        assert!(t.complete(stolen.lease, "thief".to_string()));
        assert!(t.complete(a.lease, "original".to_string()));
        assert_eq!(t.metrics().conflicts, 1);
        assert!(t.is_done());
        assert_eq!(t.grant(1, 501), Grant::Drain);
        let res = t.into_resolutions();
        assert_eq!(
            res[0],
            CellResolution::Completed {
                attempt: 1,
                worker: 0,
                payload: "original".to_string()
            }
        );
    }

    #[test]
    fn absorb_prefills_cells_and_merges_journal_duplicates() {
        let mut t = table(3, 1_000, 2);
        t.absorb(0, 1, 4, "w4".to_string());
        t.absorb(0, 1, 2, "w2".to_string()); // steal-race duplicate: lower worker wins
        t.absorb(2, 2, 0, "w0".to_string());
        assert_eq!(t.metrics().conflicts, 1);
        assert_eq!(t.resolved_count(), 2);
        let g = lease_of(t.grant(0, 0));
        assert_eq!(g.cell, 1, "only the unresolved cell is grantable");
        assert!(t.complete(g.lease, "live".to_string()));
        let res = t.into_resolutions();
        assert_eq!(
            res[0],
            CellResolution::Completed {
                attempt: 1,
                worker: 2,
                payload: "w2".to_string()
            }
        );
        assert_eq!(
            res[1],
            CellResolution::Completed {
                attempt: 1,
                worker: 0,
                payload: "live".to_string()
            }
        );
    }

    #[test]
    fn done_at_the_deadline_instant_is_order_independent() {
        // The boundary pin: a lease issued at 0 with deadline 100 is
        // expired by expire(100) — the deadline instant belongs to
        // expiry — while complete() never consults the clock. A @done
        // processed at exactly t=100 must therefore yield the same
        // resolution whether the poll loop sweeps expiry before or
        // after reading it.
        let run = |expire_first: bool| {
            let mut t = table(1, 100, 2);
            let g = lease_of(t.grant(7, 0));
            if expire_first {
                assert_eq!(t.expire(100), 1, "the deadline instant expires");
                assert!(t.complete(g.lease, "boundary".to_string()));
                // The requeued cell may even re-lease; the late winner
                // still holds on lower attempt.
                assert!(t.is_done(), "completion resolves the requeued cell");
            } else {
                assert!(t.complete(g.lease, "boundary".to_string()));
                assert_eq!(t.expire(100), 0, "completion already retired the lease");
            }
            t.into_resolutions()
        };
        let (swept_first, delivered_first) = (run(true), run(false));
        assert_eq!(swept_first, delivered_first);
        assert_eq!(
            swept_first[0],
            CellResolution::Completed {
                attempt: 1,
                worker: 7,
                payload: "boundary".to_string()
            }
        );
        // One millisecond earlier the lease is alive either way.
        let mut t = table(1, 100, 2);
        let g = lease_of(t.grant(7, 0));
        assert_eq!(t.expire(99), 0);
        assert!(t.complete(g.lease, "early".to_string()));
    }

    #[test]
    fn step_dispatches_to_the_named_mutators() {
        let mut stepped = table(2, 100, 1);
        let mut direct = table(2, 100, 1);
        let g = match stepped.step(LeaseEvent::Ask { worker: 0 }, 0) {
            LeaseEffect::Granted(Grant::Lease(g)) => g,
            other => panic!("expected a lease, got {other:?}"),
        };
        let d = lease_of(direct.grant(0, 0));
        assert_eq!(g, d);
        assert_eq!(
            stepped.step(
                LeaseEvent::Done {
                    lease: g.lease,
                    payload: "p".to_string()
                },
                1
            ),
            LeaseEffect::Merged(true)
        );
        assert!(direct.complete(d.lease, "p".to_string()));
        let g2 = match stepped.step(LeaseEvent::Ask { worker: 1 }, 1) {
            LeaseEffect::Granted(Grant::Lease(g)) => g,
            other => panic!("expected a lease, got {other:?}"),
        };
        let d2 = lease_of(direct.grant(1, 1));
        assert_eq!(
            stepped.step(
                LeaseEvent::Fail {
                    lease: g2.lease,
                    reason: "errored:x".to_string()
                },
                2
            ),
            LeaseEffect::Failed(FailOutcome::Requeued)
        );
        assert_eq!(direct.fail(d2.lease, "errored:x", 2), FailOutcome::Requeued);
        assert_eq!(
            stepped.step(LeaseEvent::WorkerDead { worker: 1 }, 3),
            LeaseEffect::Released
        );
        direct.worker_dead(1, 3);
        assert_eq!(stepped.step(LeaseEvent::Tick, 500), LeaseEffect::Expired(0));
        direct.expire(500);
        assert_eq!(
            stepped.snapshot(500),
            direct.snapshot(500),
            "step must be the same transition function as the mutators"
        );
    }

    #[test]
    fn snapshot_is_clock_shift_invariant_and_behaviour_complete() {
        let build = |base: u64| {
            let mut t = table(2, 100, 2);
            let g = lease_of(t.grant(0, base));
            assert!(t.complete(g.lease, "done".to_string()));
            let _ = lease_of(t.grant(1, base + 10));
            t
        };
        let (a, b) = (build(0), build(1_000));
        assert_eq!(
            a.snapshot(20),
            b.snapshot(1_020),
            "uniform clock shifts must not split canonical states"
        );
        // But a behavioural difference — lease age — must show.
        assert_ne!(a.snapshot(20), a.snapshot(21));
        // And report-only counters must stay out: a death report for a
        // worker holding nothing bumps metrics but changes no
        // behaviour, so the canonical form is unchanged.
        let mut c = build(0);
        c.worker_dead(99, 20);
        let fresh = build(0);
        assert_ne!(c.metrics(), fresh.metrics());
        assert_eq!(c.snapshot(20), fresh.snapshot(20));
    }

    #[test]
    fn unresolved_cells_surface_when_the_coordinator_aborts() {
        let mut t = table(2, 1_000, 2);
        let g = lease_of(t.grant(0, 0));
        assert!(t.complete(g.lease, "done".to_string()));
        assert_eq!(t.resolved_count(), 1);
        let res = t.into_resolutions(); // cell 1 never granted
        assert_eq!(res[1], CellResolution::Unresolved);
    }
}
