//! The wire protocol between the fleet coordinator and its workers.
//!
//! The channel is a local TCP stream, framed line by line with the same
//! escaping discipline as the sandbox heartbeat pipe
//! ([`chopin_sandbox::protocol`]): a worker SIGKILLed mid-write leaves at
//! worst one torn line, which the coordinator ignores, never a corrupt
//! stream. Payloads (rendered cell requests and responses) are escaped so
//! any string survives the framing.
//!
//! Frames (one per line, newline-terminated):
//!
//! | frame                        | direction | meaning                                   |
//! |------------------------------|-----------|-------------------------------------------|
//! | `@hello [wid]`               | w → c     | join; locally spawned workers carry their assigned id |
//! | `@welcome <wid> <fp> [j]`    | c → w     | admitted: worker id, sweep fingerprint, journal base |
//! | `@next <wid>`                | w → c     | request work                              |
//! | `@lease <id> <attempt> <p>`  | c → w     | a lease: run the escaped cell request `<p>` |
//! | `@wait <ms>`                 | c → w     | nothing grantable yet; ask again in `ms`  |
//! | `@drain`                     | c → w     | matrix resolved; exit cleanly             |
//! | `@done <wid> <id> <p>`       | w → c     | lease completed, escaped response `<p>`   |
//! | `@fail <wid> <id> <reason>`  | w → c     | the *cell* failed (panic/error), escaped reason |
//! | `@beat <wid>`                | w → c     | heartbeat: the worker is alive            |
//!
//! Worker *deaths* have no frame: they surface as EOF on the stream (the
//! fast path) or as lease-deadline expiry (the wedged-worker path), and
//! the coordinator reassigns the victim's leases either way.

use chopin_sandbox::protocol::{escape, unescape};

/// Environment variable that marks a process as a fleet worker.
pub const ENV_FLEET_WORKER: &str = "CHOPIN_FLEET_WORKER";
/// Coordinator address (`host:port`) for a spawned fleet worker.
pub const ENV_FLEET_ADDR: &str = "CHOPIN_FLEET_ADDR";
/// Worker id assigned by the coordinator to a spawned worker.
pub const ENV_FLEET_WORKER_ID: &str = "CHOPIN_FLEET_WORKER_ID";
/// Worker-kill storm spec (`KIND[:SEED[:STRIDE]]`) forwarded to workers.
pub const ENV_FLEET_STORM: &str = "CHOPIN_FLEET_STORM";
/// Test hook: the coordinator SIGKILLs itself after this many recorded
/// completions, so the resume path can be exercised against real
/// binaries.
pub const ENV_FLEET_DIE_AFTER: &str = "CHOPIN_FLEET_DIE_AFTER";

/// A parsed fleet protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetFrame {
    /// Worker → coordinator: join the fleet. Locally spawned workers
    /// carry the id the coordinator assigned them via the environment;
    /// remote workers (`--fleet-connect`) send `None` and are assigned
    /// one in the welcome.
    Hello {
        /// Pre-assigned worker id, if any.
        worker: Option<u64>,
    },
    /// Coordinator → worker: admitted.
    Welcome {
        /// The worker's id for the rest of the session.
        worker: u64,
        /// The sweep fingerprint every per-worker journal must carry.
        fingerprint: String,
        /// Journal base path; the worker appends to `<base>.w<id>`.
        journal: Option<String>,
    },
    /// Worker → coordinator: request work.
    Next {
        /// The requesting worker.
        worker: u64,
    },
    /// Coordinator → worker: a lease on one cell.
    Lease {
        /// Lease id, echoed back in `Done`/`Fail`.
        lease: u64,
        /// 1-based attempt number for this cell (journal provenance).
        attempt: u32,
        /// Rendered cell request.
        payload: String,
    },
    /// Coordinator → worker: nothing grantable; back off and re-ask.
    Wait {
        /// Suggested delay before the next `Next`, in milliseconds.
        ms: u64,
    },
    /// Coordinator → worker: the matrix is resolved; exit cleanly.
    Drain,
    /// Worker → coordinator: a lease completed.
    Done {
        /// The completing worker.
        worker: u64,
        /// The lease being completed.
        lease: u64,
        /// Rendered cell response.
        payload: String,
    },
    /// Worker → coordinator: the *cell* failed (panicked or errored);
    /// counts against the cell's retry budget, unlike a worker death.
    Fail {
        /// The reporting worker.
        worker: u64,
        /// The failed lease.
        lease: u64,
        /// `panicked:<msg>` or `errored:<msg>`.
        reason: String,
    },
    /// Worker → coordinator: heartbeat.
    Beat {
        /// The live worker.
        worker: u64,
    },
}

/// Render a frame as its wire line (without the trailing newline).
#[must_use]
pub fn render(frame: &FleetFrame) -> String {
    match frame {
        FleetFrame::Hello { worker: None } => "@hello".to_string(),
        FleetFrame::Hello { worker: Some(w) } => format!("@hello {w}"),
        FleetFrame::Welcome {
            worker,
            fingerprint,
            journal,
        } => match journal {
            None => format!("@welcome {worker} {}", escape(fingerprint)),
            Some(j) => format!("@welcome {worker} {} {}", escape(fingerprint), escape(j)),
        },
        FleetFrame::Next { worker } => format!("@next {worker}"),
        FleetFrame::Lease {
            lease,
            attempt,
            payload,
        } => format!("@lease {lease} {attempt} {}", escape(payload)),
        FleetFrame::Wait { ms } => format!("@wait {ms}"),
        FleetFrame::Drain => "@drain".to_string(),
        FleetFrame::Done {
            worker,
            lease,
            payload,
        } => format!("@done {worker} {lease} {}", escape(payload)),
        FleetFrame::Fail {
            worker,
            lease,
            reason,
        } => format!("@fail {worker} {lease} {}", escape(reason)),
        FleetFrame::Beat { worker } => format!("@beat {worker}"),
    }
}

/// Split `line` into at most `n` space-separated words, the last keeping
/// the rest of the line verbatim.
fn words(line: &str, n: usize) -> Vec<&str> {
    line.splitn(n, ' ').collect()
}

/// Parse one line into a frame. Returns `None` for anything that is not
/// a protocol frame (stray prints, torn lines from a dying worker).
#[must_use]
pub fn parse(line: &str) -> Option<FleetFrame> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    if line == "@hello" {
        return Some(FleetFrame::Hello { worker: None });
    }
    if let Some(rest) = line.strip_prefix("@hello ") {
        return rest
            .parse()
            .ok()
            .map(|w| FleetFrame::Hello { worker: Some(w) });
    }
    if let Some(rest) = line.strip_prefix("@welcome ") {
        let parts = words(rest, 3);
        if parts.len() < 2 {
            return None;
        }
        let worker = parts[0].parse().ok()?;
        return Some(FleetFrame::Welcome {
            worker,
            fingerprint: unescape(parts[1]),
            journal: parts.get(2).map(|j| unescape(j)),
        });
    }
    if let Some(rest) = line.strip_prefix("@next ") {
        return rest.parse().ok().map(|worker| FleetFrame::Next { worker });
    }
    if let Some(rest) = line.strip_prefix("@lease ") {
        let parts = words(rest, 3);
        if parts.len() != 3 {
            return None;
        }
        return Some(FleetFrame::Lease {
            lease: parts[0].parse().ok()?,
            attempt: parts[1].parse().ok()?,
            payload: unescape(parts[2]),
        });
    }
    if let Some(rest) = line.strip_prefix("@wait ") {
        return rest.parse().ok().map(|ms| FleetFrame::Wait { ms });
    }
    if line == "@drain" {
        return Some(FleetFrame::Drain);
    }
    if let Some(rest) = line.strip_prefix("@done ") {
        let parts = words(rest, 3);
        if parts.len() != 3 {
            return None;
        }
        return Some(FleetFrame::Done {
            worker: parts[0].parse().ok()?,
            lease: parts[1].parse().ok()?,
            payload: unescape(parts[2]),
        });
    }
    if let Some(rest) = line.strip_prefix("@fail ") {
        let parts = words(rest, 3);
        if parts.len() != 3 {
            return None;
        }
        return Some(FleetFrame::Fail {
            worker: parts[0].parse().ok()?,
            lease: parts[1].parse().ok()?,
            reason: unescape(parts[2]),
        });
    }
    if let Some(rest) = line.strip_prefix("@beat ") {
        return rest.parse().ok().map(|worker| FleetFrame::Beat { worker });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_wire_format() {
        let frames = [
            FleetFrame::Hello { worker: None },
            FleetFrame::Hello { worker: Some(7) },
            FleetFrame::Welcome {
                worker: 3,
                fingerprint: "00c0ffee00c0ffee".to_string(),
                journal: None,
            },
            FleetFrame::Welcome {
                worker: 3,
                fingerprint: "00c0ffee00c0ffee".to_string(),
                journal: Some("results/run with space.journal".to_string()),
            },
            FleetFrame::Next { worker: 0 },
            FleetFrame::Lease {
                lease: 41,
                attempt: 2,
                payload: "bench=fop\ncollector=G1".to_string(),
            },
            FleetFrame::Wait { ms: 25 },
            FleetFrame::Drain,
            FleetFrame::Done {
                worker: 1,
                lease: 41,
                payload: "{\"samples\":[1.0,\n2.0]}".to_string(),
            },
            FleetFrame::Fail {
                worker: 1,
                lease: 41,
                reason: "panicked:index out of bounds\r\n".to_string(),
            },
            FleetFrame::Beat { worker: 255 },
        ];
        for frame in frames {
            let line = render(&frame);
            assert!(
                !line.contains('\n'),
                "frame must stay on one line: {line:?}"
            );
            assert_eq!(parse(&line), Some(frame), "line {line:?}");
        }
    }

    #[test]
    fn torn_and_stray_lines_are_ignored() {
        for line in [
            "",
            "warning: something",
            "@leas",
            "@lease 41",
            "@lease 41 x payload",
            "@done 1",
            "@done one 41 p",
            "@hello -3",
            "@unknown x",
        ] {
            assert_eq!(parse(line), None, "line {line:?}");
        }
    }
}
