//! The wire protocol between the fleet coordinator and its workers.
//!
//! The channel is a local TCP stream, framed line by line with the same
//! torn-line discipline as the sandbox heartbeat pipe
//! ([`chopin_sandbox::protocol`]): a worker SIGKILLed mid-write leaves at
//! worst one torn line, which the coordinator ignores, never a corrupt
//! stream. Escaped fields (fingerprints, journal paths, rendered cell
//! requests and responses) use a superset of the sandbox escaping that
//! also folds spaces into `\s` — fleet frames split fields on spaces, so
//! a space left raw in a *non-final* field (the welcome fingerprint when
//! a journal base follows it) would shift every later field over by one
//! on parse. The proptest round-trip below pins the codec over arbitrary
//! payloads.
//!
//! Frames (one per line, newline-terminated):
//!
//! | frame                        | direction | meaning                                   |
//! |------------------------------|-----------|-------------------------------------------|
//! | `@hello [wid]`               | w → c     | join; locally spawned workers carry their assigned id |
//! | `@welcome <wid> <fp> [j]`    | c → w     | admitted: worker id, sweep fingerprint, journal base |
//! | `@next <wid>`                | w → c     | request work                              |
//! | `@lease <id> <attempt> <p>`  | c → w     | a lease: run the escaped cell request `<p>` |
//! | `@wait <ms>`                 | c → w     | nothing grantable yet; ask again in `ms`  |
//! | `@drain`                     | c → w     | matrix resolved; exit cleanly             |
//! | `@done <wid> <id> <p>`       | w → c     | lease completed, escaped response `<p>`   |
//! | `@fail <wid> <id> <reason>`  | w → c     | the *cell* failed (panic/error), escaped reason |
//! | `@beat <wid>`                | w → c     | heartbeat: the worker is alive            |
//!
//! Worker *deaths* have no frame: they surface as EOF on the stream (the
//! fast path) or as lease-deadline expiry (the wedged-worker path), and
//! the coordinator reassigns the victim's leases either way.

/// Escape one frame field so it survives both the line framing (`\n`,
/// `\r`) and the space-separated field framing (`\s`). Superset of
/// `chopin_sandbox::protocol::escape`, which only guards the line
/// framing and therefore cannot carry a non-final field.
#[must_use]
pub fn escape_field(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for ch in field.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            ' ' => out.push_str("\\s"),
            other => out.push(other),
        }
    }
    out
}

/// Invert [`escape_field`]. Unknown escapes pass through verbatim, same
/// as the sandbox codec, so a torn escape never corrupts the field.
#[must_use]
pub fn unescape_field(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('s') => out.push(' '),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Environment variable that marks a process as a fleet worker.
pub const ENV_FLEET_WORKER: &str = "CHOPIN_FLEET_WORKER";
/// Coordinator address (`host:port`) for a spawned fleet worker.
pub const ENV_FLEET_ADDR: &str = "CHOPIN_FLEET_ADDR";
/// Worker id assigned by the coordinator to a spawned worker.
pub const ENV_FLEET_WORKER_ID: &str = "CHOPIN_FLEET_WORKER_ID";
/// Worker-kill storm spec (`KIND[:SEED[:STRIDE]]`) forwarded to workers.
pub const ENV_FLEET_STORM: &str = "CHOPIN_FLEET_STORM";
/// Test hook: the coordinator SIGKILLs itself after this many recorded
/// completions, so the resume path can be exercised against real
/// binaries.
pub const ENV_FLEET_DIE_AFTER: &str = "CHOPIN_FLEET_DIE_AFTER";

/// A parsed fleet protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetFrame {
    /// Worker → coordinator: join the fleet. Locally spawned workers
    /// carry the id the coordinator assigned them via the environment;
    /// remote workers (`--fleet-connect`) send `None` and are assigned
    /// one in the welcome.
    Hello {
        /// Pre-assigned worker id, if any.
        worker: Option<u64>,
    },
    /// Coordinator → worker: admitted.
    Welcome {
        /// The worker's id for the rest of the session.
        worker: u64,
        /// The sweep fingerprint every per-worker journal must carry.
        fingerprint: String,
        /// Journal base path; the worker appends to `<base>.w<id>`.
        journal: Option<String>,
    },
    /// Worker → coordinator: request work.
    Next {
        /// The requesting worker.
        worker: u64,
    },
    /// Coordinator → worker: a lease on one cell.
    Lease {
        /// Lease id, echoed back in `Done`/`Fail`.
        lease: u64,
        /// 1-based attempt number for this cell (journal provenance).
        attempt: u32,
        /// Rendered cell request.
        payload: String,
    },
    /// Coordinator → worker: nothing grantable; back off and re-ask.
    Wait {
        /// Suggested delay before the next `Next`, in milliseconds.
        ms: u64,
    },
    /// Coordinator → worker: the matrix is resolved; exit cleanly.
    Drain,
    /// Worker → coordinator: a lease completed.
    Done {
        /// The completing worker.
        worker: u64,
        /// The lease being completed.
        lease: u64,
        /// Rendered cell response.
        payload: String,
    },
    /// Worker → coordinator: the *cell* failed (panicked or errored);
    /// counts against the cell's retry budget, unlike a worker death.
    Fail {
        /// The reporting worker.
        worker: u64,
        /// The failed lease.
        lease: u64,
        /// `panicked:<msg>` or `errored:<msg>`.
        reason: String,
    },
    /// Worker → coordinator: heartbeat.
    Beat {
        /// The live worker.
        worker: u64,
    },
}

/// Render a frame as its wire line (without the trailing newline).
#[must_use]
pub fn render(frame: &FleetFrame) -> String {
    match frame {
        FleetFrame::Hello { worker: None } => "@hello".to_string(),
        FleetFrame::Hello { worker: Some(w) } => format!("@hello {w}"),
        FleetFrame::Welcome {
            worker,
            fingerprint,
            journal,
        } => match journal {
            None => format!("@welcome {worker} {}", escape_field(fingerprint)),
            Some(j) => format!(
                "@welcome {worker} {} {}",
                escape_field(fingerprint),
                escape_field(j)
            ),
        },
        FleetFrame::Next { worker } => format!("@next {worker}"),
        FleetFrame::Lease {
            lease,
            attempt,
            payload,
        } => format!("@lease {lease} {attempt} {}", escape_field(payload)),
        FleetFrame::Wait { ms } => format!("@wait {ms}"),
        FleetFrame::Drain => "@drain".to_string(),
        FleetFrame::Done {
            worker,
            lease,
            payload,
        } => format!("@done {worker} {lease} {}", escape_field(payload)),
        FleetFrame::Fail {
            worker,
            lease,
            reason,
        } => format!("@fail {worker} {lease} {}", escape_field(reason)),
        FleetFrame::Beat { worker } => format!("@beat {worker}"),
    }
}

/// Split `line` into at most `n` space-separated words, the last keeping
/// the rest of the line verbatim.
fn words(line: &str, n: usize) -> Vec<&str> {
    line.splitn(n, ' ').collect()
}

/// Parse one line into a frame. Returns `None` for anything that is not
/// a protocol frame (stray prints, torn lines from a dying worker).
#[must_use]
pub fn parse(line: &str) -> Option<FleetFrame> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    if line == "@hello" {
        return Some(FleetFrame::Hello { worker: None });
    }
    if let Some(rest) = line.strip_prefix("@hello ") {
        return rest
            .parse()
            .ok()
            .map(|w| FleetFrame::Hello { worker: Some(w) });
    }
    if let Some(rest) = line.strip_prefix("@welcome ") {
        let parts = words(rest, 3);
        if parts.len() < 2 {
            return None;
        }
        let worker = parts[0].parse().ok()?;
        return Some(FleetFrame::Welcome {
            worker,
            fingerprint: unescape_field(parts[1]),
            journal: parts.get(2).map(|j| unescape_field(j)),
        });
    }
    if let Some(rest) = line.strip_prefix("@next ") {
        return rest.parse().ok().map(|worker| FleetFrame::Next { worker });
    }
    if let Some(rest) = line.strip_prefix("@lease ") {
        let parts = words(rest, 3);
        if parts.len() != 3 {
            return None;
        }
        return Some(FleetFrame::Lease {
            lease: parts[0].parse().ok()?,
            attempt: parts[1].parse().ok()?,
            payload: unescape_field(parts[2]),
        });
    }
    if let Some(rest) = line.strip_prefix("@wait ") {
        return rest.parse().ok().map(|ms| FleetFrame::Wait { ms });
    }
    if line == "@drain" {
        return Some(FleetFrame::Drain);
    }
    if let Some(rest) = line.strip_prefix("@done ") {
        let parts = words(rest, 3);
        if parts.len() != 3 {
            return None;
        }
        return Some(FleetFrame::Done {
            worker: parts[0].parse().ok()?,
            lease: parts[1].parse().ok()?,
            payload: unescape_field(parts[2]),
        });
    }
    if let Some(rest) = line.strip_prefix("@fail ") {
        let parts = words(rest, 3);
        if parts.len() != 3 {
            return None;
        }
        return Some(FleetFrame::Fail {
            worker: parts[0].parse().ok()?,
            lease: parts[1].parse().ok()?,
            reason: unescape_field(parts[2]),
        });
    }
    if let Some(rest) = line.strip_prefix("@beat ") {
        return rest.parse().ok().map(|worker| FleetFrame::Beat { worker });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frames_round_trip_through_the_wire_format() {
        let frames = [
            FleetFrame::Hello { worker: None },
            FleetFrame::Hello { worker: Some(7) },
            FleetFrame::Welcome {
                worker: 3,
                fingerprint: "00c0ffee00c0ffee".to_string(),
                journal: None,
            },
            FleetFrame::Welcome {
                worker: 3,
                fingerprint: "00c0ffee00c0ffee".to_string(),
                journal: Some("results/run with space.journal".to_string()),
            },
            FleetFrame::Next { worker: 0 },
            FleetFrame::Lease {
                lease: 41,
                attempt: 2,
                payload: "bench=fop\ncollector=G1".to_string(),
            },
            FleetFrame::Wait { ms: 25 },
            FleetFrame::Drain,
            FleetFrame::Done {
                worker: 1,
                lease: 41,
                payload: "{\"samples\":[1.0,\n2.0]}".to_string(),
            },
            FleetFrame::Fail {
                worker: 1,
                lease: 41,
                reason: "panicked:index out of bounds\r\n".to_string(),
            },
            FleetFrame::Beat { worker: 255 },
        ];
        for frame in frames {
            let line = render(&frame);
            assert!(
                !line.contains('\n'),
                "frame must stay on one line: {line:?}"
            );
            assert_eq!(parse(&line), Some(frame), "line {line:?}");
        }
    }

    // Palette biased toward codec-hostile characters: separators, the
    // escape character itself, and the letters that follow a backslash
    // in escape sequences (so `\` + `s` adjacency is exercised).
    fn field() -> impl Strategy<Value = String> {
        proptest::collection::vec(0u8..10, 0..12).prop_map(|codes| {
            codes
                .iter()
                .map(|c| match c {
                    0 => 'a',
                    1 => ' ',
                    2 => '\\',
                    3 => '\n',
                    4 => '\r',
                    5 => 's',
                    6 => 'n',
                    7 => 'r',
                    8 => 'é',
                    _ => '@',
                })
                .collect()
        })
    }

    proptest! {
        #[test]
        fn arbitrary_payloads_round_trip_in_every_escaped_field(
            fp in field(),
            journal in field(),
            payload in field(),
            worker in 0u64..1000,
            lease in 0u64..1000,
            attempt in 1u32..9,
        ) {
            let frames = [
                FleetFrame::Welcome {
                    worker,
                    fingerprint: fp.clone(),
                    journal: None,
                },
                // The non-final escaped field: a raw space or newline in
                // the fingerprint here would shift the journal field.
                FleetFrame::Welcome {
                    worker,
                    fingerprint: fp.clone(),
                    journal: Some(journal.clone()),
                },
                FleetFrame::Lease {
                    lease,
                    attempt,
                    payload: payload.clone(),
                },
                FleetFrame::Done {
                    worker,
                    lease,
                    payload: payload.clone(),
                },
                FleetFrame::Fail {
                    worker,
                    lease,
                    reason: payload.clone(),
                },
            ];
            for frame in frames {
                let line = render(&frame);
                prop_assert!(
                    !line.contains('\n') && !line.contains('\r'),
                    "frame must stay on one line: {line:?}"
                );
                prop_assert_eq!(parse(&line), Some(frame.clone()), "line {:?}", line);
            }
        }
    }

    #[test]
    fn field_codec_keeps_spaces_out_of_the_field_framing() {
        // Regression shape for the asymmetry the round-trip found: a
        // fingerprint containing a space, followed by a journal base.
        let frame = FleetFrame::Welcome {
            worker: 3,
            fingerprint: "finger print".to_string(),
            journal: Some("results/run.journal".to_string()),
        };
        let line = render(&frame);
        assert_eq!(line, "@welcome 3 finger\\sprint results/run.journal");
        assert_eq!(parse(&line), Some(frame));
        assert_eq!(unescape_field(&escape_field("\\s \\n\r\n")), "\\s \\n\r\n");
    }

    #[test]
    fn torn_and_stray_lines_are_ignored() {
        for line in [
            "",
            "warning: something",
            "@leas",
            "@lease 41",
            "@lease 41 x payload",
            "@done 1",
            "@done one 41 p",
            "@hello -3",
            "@unknown x",
        ] {
            assert_eq!(parse(line), None, "line {line:?}");
        }
    }
}
