//! The wire protocol between the fleet coordinator and its workers.
//!
//! The channel is a local TCP stream, framed line by line with the same
//! torn-line discipline as the sandbox heartbeat pipe
//! ([`chopin_sandbox::protocol`]): a worker SIGKILLed mid-write leaves at
//! worst one torn line, which the coordinator ignores, never a corrupt
//! stream. Escaped fields (fingerprints, journal paths, rendered cell
//! requests and responses) use a superset of the sandbox escaping that
//! also folds spaces into `\s` — fleet frames split fields on spaces, so
//! a space left raw in a *non-final* field (the welcome fingerprint when
//! a journal base follows it) would shift every later field over by one
//! on parse. The proptest round-trip below pins the codec over arbitrary
//! payloads.
//!
//! Frames (one per line, newline-terminated):
//!
//! | frame                             | direction | meaning                                   |
//! |-----------------------------------|-----------|-------------------------------------------|
//! | `@hello [wid\|-] [token]`         | w → c     | join; locally spawned workers carry their assigned id; `-` holds the id slot when only a token follows |
//! | `@welcome <wid> <fp> <coord> <epoch> [j]` | c → w | admitted: worker id, sweep fingerprint, coordinator incarnation + epoch, journal base |
//! | `@reject <reason>`                | c → w     | refused (bad token, fingerprint mismatch); exit, do not retry |
//! | `@next <wid>`                     | w → c     | request work                              |
//! | `@lease <id> <attempt> <p>`       | c → w     | a lease: run the escaped cell request `<p>` |
//! | `@wait <ms>`                      | c → w     | nothing grantable yet; ask again in `ms`  |
//! | `@drain`                          | c → w     | matrix resolved; exit cleanly             |
//! | `@done <wid> <id> <coord> <p>`    | w → c     | lease completed, escaped response `<p>`, granting coordinator echoed |
//! | `@fail <wid> <id> <coord> <reason>` | w → c   | the *cell* failed (panic/error), escaped reason |
//! | `@beat <wid>`                     | w → c     | heartbeat: the worker is alive            |
//! | `@adopt <addr> <fp>`              | s → c     | a standby registers its listener address  |
//! | `@standby <addr>`                 | c → w     | the advertised successor address workers reconnect to |
//!
//! Worker *deaths* have no frame: they surface as EOF on the stream (the
//! fast path) or as lease-deadline expiry (the wedged-worker path), and
//! the coordinator reassigns the victim's leases either way.
//!
//! **Epoch fencing.** Every coordinator incarnation mints a fresh
//! `coord` nonce and a logical `epoch`, carries both in `@welcome`, and
//! requires `@done`/`@fail` to echo the `coord` it granted under. A
//! successor coordinator's lease table restarts lease ids at 0, so a
//! stale completion from the previous incarnation could otherwise merge
//! the wrong payload into whichever cell reused that id — the echo
//! extends the generation-checked late-result rejection across
//! hand-offs. The `-` placeholder in optional trailing fields is
//! reserved: journal bases and listener addresses never equal `-`.

/// Escape one frame field so it survives both the line framing (`\n`,
/// `\r`) and the space-separated field framing (`\s`). Superset of
/// `chopin_sandbox::protocol::escape`, which only guards the line
/// framing and therefore cannot carry a non-final field.
#[must_use]
pub fn escape_field(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for ch in field.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            ' ' => out.push_str("\\s"),
            other => out.push(other),
        }
    }
    out
}

/// Invert [`escape_field`]. Unknown escapes pass through verbatim, same
/// as the sandbox codec, so a torn escape never corrupts the field.
#[must_use]
pub fn unescape_field(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('s') => out.push(' '),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Environment variable that marks a process as a fleet worker.
pub const ENV_FLEET_WORKER: &str = "CHOPIN_FLEET_WORKER";
/// Coordinator address (`host:port`) for a spawned fleet worker.
pub const ENV_FLEET_ADDR: &str = "CHOPIN_FLEET_ADDR";
/// Worker id assigned by the coordinator to a spawned worker.
pub const ENV_FLEET_WORKER_ID: &str = "CHOPIN_FLEET_WORKER_ID";
/// Worker-kill storm spec (`KIND[:SEED[:STRIDE]]`) forwarded to workers.
pub const ENV_FLEET_STORM: &str = "CHOPIN_FLEET_STORM";
/// Test hook: the coordinator SIGKILLs itself after this many recorded
/// completions, so the resume path can be exercised against real
/// binaries.
pub const ENV_FLEET_DIE_AFTER: &str = "CHOPIN_FLEET_DIE_AFTER";
/// Per-run auth token forwarded to spawned workers; external workers
/// take it from `--fleet-token`.
pub const ENV_FLEET_TOKEN: &str = "CHOPIN_FLEET_TOKEN";

/// The token gate applied to every `Hello`/`Adopt`: admitted iff the
/// coordinator expects no token, or the offered token matches exactly.
///
/// This tiny function is deliberately public and pure: it is the single
/// admission decision shared by the shipped transport and the
/// `chopin-model` intruder transition (rule R1403), so the checker
/// exercises the exact predicate production runs.
#[must_use]
pub fn admission(expected: Option<&str>, offered: Option<&str>) -> bool {
    match expected {
        None => true,
        Some(want) => offered == Some(want),
    }
}

/// A parsed fleet protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetFrame {
    /// Worker → coordinator: join the fleet. Locally spawned workers
    /// carry the id the coordinator assigned them via the environment;
    /// remote workers (`--fleet-connect`) send `None` and are assigned
    /// one in the welcome. The token, when the run has one, gates
    /// admission ([`admission`]).
    Hello {
        /// Pre-assigned worker id, if any.
        worker: Option<u64>,
        /// Per-run auth token, if the run has one.
        token: Option<String>,
    },
    /// Coordinator → worker: admitted.
    Welcome {
        /// The worker's id for the rest of the session.
        worker: u64,
        /// The sweep fingerprint every per-worker journal must carry.
        fingerprint: String,
        /// This coordinator incarnation's nonce, echoed in `Done`/`Fail`
        /// so a successor can fence stale completions.
        coord: u64,
        /// Logical hand-off depth: the primary serves epoch 1, each
        /// takeover increments it.
        epoch: u32,
        /// Journal base path; the worker appends to `<base>.w<id>`.
        journal: Option<String>,
    },
    /// Coordinator → worker: refused. The worker must exit without
    /// retrying; the reason is a clean protocol error, not chaos.
    Reject {
        /// Why admission was refused.
        reason: String,
    },
    /// Worker → coordinator: request work.
    Next {
        /// The requesting worker.
        worker: u64,
    },
    /// Coordinator → worker: a lease on one cell.
    Lease {
        /// Lease id, echoed back in `Done`/`Fail`.
        lease: u64,
        /// 1-based attempt number for this cell (journal provenance).
        attempt: u32,
        /// Rendered cell request.
        payload: String,
    },
    /// Coordinator → worker: nothing grantable; back off and re-ask.
    Wait {
        /// Suggested delay before the next `Next`, in milliseconds.
        ms: u64,
    },
    /// Coordinator → worker: the matrix is resolved; exit cleanly.
    Drain,
    /// Worker → coordinator: a lease completed.
    Done {
        /// The completing worker.
        worker: u64,
        /// The lease being completed.
        lease: u64,
        /// The coordinator nonce the lease was granted under.
        coord: u64,
        /// Rendered cell response.
        payload: String,
    },
    /// Worker → coordinator: the *cell* failed (panicked or errored);
    /// counts against the cell's retry budget, unlike a worker death.
    Fail {
        /// The reporting worker.
        worker: u64,
        /// The failed lease.
        lease: u64,
        /// The coordinator nonce the lease was granted under.
        coord: u64,
        /// `panicked:<msg>` or `errored:<msg>`.
        reason: String,
    },
    /// Worker → coordinator: heartbeat.
    Beat {
        /// The live worker.
        worker: u64,
    },
    /// Standby → coordinator: register as the hand-off successor. The
    /// coordinator validates the fingerprint and token, replies with a
    /// `Welcome`, and broadcasts the address as `Standby` to workers.
    Adopt {
        /// The standby's own listener address workers reconnect to.
        addr: String,
        /// The standby's recomputed sweep fingerprint; a mismatch is a
        /// different experiment and is rejected.
        fingerprint: String,
    },
    /// Coordinator → worker: the advertised successor address. Workers
    /// remember it and reconnect there (with exponential backoff) if the
    /// coordinator goes silent.
    Standby {
        /// The successor's listener address.
        addr: String,
    },
}

/// Render a frame as its wire line (without the trailing newline).
#[must_use]
pub fn render(frame: &FleetFrame) -> String {
    match frame {
        FleetFrame::Hello {
            worker: None,
            token: None,
        } => "@hello".to_string(),
        FleetFrame::Hello {
            worker: Some(w),
            token: None,
        } => format!("@hello {w}"),
        FleetFrame::Hello { worker, token } => {
            let id = worker.map_or("-".to_string(), |w| w.to_string());
            match token {
                None => format!("@hello {id}"),
                Some(t) => format!("@hello {id} {}", escape_field(t)),
            }
        }
        FleetFrame::Welcome {
            worker,
            fingerprint,
            coord,
            epoch,
            journal,
        } => match journal {
            None => format!(
                "@welcome {worker} {} {coord} {epoch}",
                escape_field(fingerprint)
            ),
            Some(j) => format!(
                "@welcome {worker} {} {coord} {epoch} {}",
                escape_field(fingerprint),
                escape_field(j)
            ),
        },
        FleetFrame::Reject { reason } => format!("@reject {}", escape_field(reason)),
        FleetFrame::Next { worker } => format!("@next {worker}"),
        FleetFrame::Lease {
            lease,
            attempt,
            payload,
        } => format!("@lease {lease} {attempt} {}", escape_field(payload)),
        FleetFrame::Wait { ms } => format!("@wait {ms}"),
        FleetFrame::Drain => "@drain".to_string(),
        FleetFrame::Done {
            worker,
            lease,
            coord,
            payload,
        } => format!("@done {worker} {lease} {coord} {}", escape_field(payload)),
        FleetFrame::Fail {
            worker,
            lease,
            coord,
            reason,
        } => format!("@fail {worker} {lease} {coord} {}", escape_field(reason)),
        FleetFrame::Beat { worker } => format!("@beat {worker}"),
        FleetFrame::Adopt { addr, fingerprint } => format!(
            "@adopt {} {}",
            escape_field(addr),
            escape_field(fingerprint)
        ),
        FleetFrame::Standby { addr } => format!("@standby {}", escape_field(addr)),
    }
}

/// Split `line` into at most `n` space-separated words, the last keeping
/// the rest of the line verbatim.
fn words(line: &str, n: usize) -> Vec<&str> {
    line.splitn(n, ' ').collect()
}

/// Parse one line into a frame. Returns `None` for anything that is not
/// a protocol frame (stray prints, torn lines from a dying worker).
#[must_use]
pub fn parse(line: &str) -> Option<FleetFrame> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    if line == "@hello" {
        return Some(FleetFrame::Hello {
            worker: None,
            token: None,
        });
    }
    if let Some(rest) = line.strip_prefix("@hello ") {
        let parts = words(rest, 2);
        let worker = if parts[0] == "-" {
            None
        } else {
            Some(parts[0].parse().ok()?)
        };
        return Some(FleetFrame::Hello {
            worker,
            token: parts.get(1).map(|t| unescape_field(t)),
        });
    }
    if let Some(rest) = line.strip_prefix("@welcome ") {
        let parts = words(rest, 5);
        if parts.len() < 4 {
            return None;
        }
        return Some(FleetFrame::Welcome {
            worker: parts[0].parse().ok()?,
            fingerprint: unescape_field(parts[1]),
            coord: parts[2].parse().ok()?,
            epoch: parts[3].parse().ok()?,
            journal: parts.get(4).map(|j| unescape_field(j)),
        });
    }
    if let Some(rest) = line.strip_prefix("@reject ") {
        return Some(FleetFrame::Reject {
            reason: unescape_field(rest),
        });
    }
    if let Some(rest) = line.strip_prefix("@next ") {
        return rest.parse().ok().map(|worker| FleetFrame::Next { worker });
    }
    if let Some(rest) = line.strip_prefix("@lease ") {
        let parts = words(rest, 3);
        if parts.len() != 3 {
            return None;
        }
        return Some(FleetFrame::Lease {
            lease: parts[0].parse().ok()?,
            attempt: parts[1].parse().ok()?,
            payload: unescape_field(parts[2]),
        });
    }
    if let Some(rest) = line.strip_prefix("@wait ") {
        return rest.parse().ok().map(|ms| FleetFrame::Wait { ms });
    }
    if line == "@drain" {
        return Some(FleetFrame::Drain);
    }
    if let Some(rest) = line.strip_prefix("@done ") {
        let parts = words(rest, 4);
        if parts.len() != 4 {
            return None;
        }
        return Some(FleetFrame::Done {
            worker: parts[0].parse().ok()?,
            lease: parts[1].parse().ok()?,
            coord: parts[2].parse().ok()?,
            payload: unescape_field(parts[3]),
        });
    }
    if let Some(rest) = line.strip_prefix("@fail ") {
        let parts = words(rest, 4);
        if parts.len() != 4 {
            return None;
        }
        return Some(FleetFrame::Fail {
            worker: parts[0].parse().ok()?,
            lease: parts[1].parse().ok()?,
            coord: parts[2].parse().ok()?,
            reason: unescape_field(parts[3]),
        });
    }
    if let Some(rest) = line.strip_prefix("@beat ") {
        return rest.parse().ok().map(|worker| FleetFrame::Beat { worker });
    }
    if let Some(rest) = line.strip_prefix("@adopt ") {
        let parts = words(rest, 2);
        if parts.len() != 2 {
            return None;
        }
        return Some(FleetFrame::Adopt {
            addr: unescape_field(parts[0]),
            fingerprint: unescape_field(parts[1]),
        });
    }
    if let Some(rest) = line.strip_prefix("@standby ") {
        return Some(FleetFrame::Standby {
            addr: unescape_field(rest),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frames_round_trip_through_the_wire_format() {
        let frames = [
            FleetFrame::Hello {
                worker: None,
                token: None,
            },
            FleetFrame::Hello {
                worker: Some(7),
                token: None,
            },
            FleetFrame::Hello {
                worker: None,
                token: Some("s3cret token".to_string()),
            },
            FleetFrame::Hello {
                worker: Some(7),
                token: Some("s3cret".to_string()),
            },
            FleetFrame::Welcome {
                worker: 3,
                fingerprint: "00c0ffee00c0ffee".to_string(),
                coord: 0xdead_beef,
                epoch: 1,
                journal: None,
            },
            FleetFrame::Welcome {
                worker: 3,
                fingerprint: "00c0ffee00c0ffee".to_string(),
                coord: 42,
                epoch: 2,
                journal: Some("results/run with space.journal".to_string()),
            },
            FleetFrame::Reject {
                reason: "auth token mismatch".to_string(),
            },
            FleetFrame::Next { worker: 0 },
            FleetFrame::Lease {
                lease: 41,
                attempt: 2,
                payload: "bench=fop\ncollector=G1".to_string(),
            },
            FleetFrame::Wait { ms: 25 },
            FleetFrame::Drain,
            FleetFrame::Done {
                worker: 1,
                lease: 41,
                coord: 7,
                payload: "{\"samples\":[1.0,\n2.0]}".to_string(),
            },
            FleetFrame::Fail {
                worker: 1,
                lease: 41,
                coord: 7,
                reason: "panicked:index out of bounds\r\n".to_string(),
            },
            FleetFrame::Beat { worker: 255 },
            FleetFrame::Adopt {
                addr: "10.0.0.7:4321".to_string(),
                fingerprint: "00c0ffee00c0ffee".to_string(),
            },
            FleetFrame::Standby {
                addr: "10.0.0.7:4321".to_string(),
            },
        ];
        for frame in frames {
            let line = render(&frame);
            assert!(
                !line.contains('\n'),
                "frame must stay on one line: {line:?}"
            );
            assert_eq!(parse(&line), Some(frame), "line {line:?}");
        }
    }

    // Palette biased toward codec-hostile characters: separators, the
    // escape character itself, and the letters that follow a backslash
    // in escape sequences (so `\` + `s` adjacency is exercised).
    fn field() -> impl Strategy<Value = String> {
        proptest::collection::vec(0u8..10, 0..12).prop_map(|codes| {
            codes
                .iter()
                .map(|c| match c {
                    0 => 'a',
                    1 => ' ',
                    2 => '\\',
                    3 => '\n',
                    4 => '\r',
                    5 => 's',
                    6 => 'n',
                    7 => 'r',
                    8 => 'é',
                    _ => '@',
                })
                .collect()
        })
    }

    proptest! {
        #[test]
        fn arbitrary_payloads_round_trip_in_every_escaped_field(
            fp in field(),
            journal in field(),
            payload in field(),
            worker in 0u64..1000,
            lease in 0u64..1000,
            attempt in 1u32..9,
        ) {
            let frames = [
                FleetFrame::Welcome {
                    worker,
                    fingerprint: fp.clone(),
                    coord: lease,
                    epoch: attempt,
                    journal: None,
                },
                // The non-final escaped field: a raw space or newline in
                // the fingerprint here would shift the journal field.
                FleetFrame::Welcome {
                    worker,
                    fingerprint: fp.clone(),
                    coord: lease,
                    epoch: attempt,
                    journal: Some(journal.clone()),
                },
                FleetFrame::Lease {
                    lease,
                    attempt,
                    payload: payload.clone(),
                },
                FleetFrame::Done {
                    worker,
                    lease,
                    coord: worker,
                    payload: payload.clone(),
                },
                FleetFrame::Fail {
                    worker,
                    lease,
                    coord: worker,
                    reason: payload.clone(),
                },
                FleetFrame::Reject {
                    reason: payload.clone(),
                },
                // Both Adopt fields are escaped and non-final/final.
                FleetFrame::Adopt {
                    addr: fp.clone(),
                    fingerprint: journal.clone(),
                },
                FleetFrame::Standby {
                    addr: payload.clone(),
                },
            ];
            for frame in frames {
                let line = render(&frame);
                prop_assert!(
                    !line.contains('\n') && !line.contains('\r'),
                    "frame must stay on one line: {line:?}"
                );
                prop_assert_eq!(parse(&line), Some(frame.clone()), "line {:?}", line);
            }
        }
    }

    #[test]
    fn field_codec_keeps_spaces_out_of_the_field_framing() {
        // Regression shape for the asymmetry the round-trip found: a
        // fingerprint containing a space, followed by a journal base.
        let frame = FleetFrame::Welcome {
            worker: 3,
            fingerprint: "finger print".to_string(),
            coord: 9,
            epoch: 1,
            journal: Some("results/run.journal".to_string()),
        };
        let line = render(&frame);
        assert_eq!(line, "@welcome 3 finger\\sprint 9 1 results/run.journal");
        assert_eq!(parse(&line), Some(frame));
        assert_eq!(unescape_field(&escape_field("\\s \\n\r\n")), "\\s \\n\r\n");
    }

    #[test]
    fn torn_and_stray_lines_are_ignored() {
        for line in [
            "",
            "warning: something",
            "@leas",
            "@lease 41",
            "@lease 41 x payload",
            "@done 1",
            "@done one 41 7 p",
            "@done 1 41 p",
            "@hello -3",
            "@welcome 3 fp",
            "@welcome 3 fp x 1",
            "@adopt onlyaddr",
            "@unknown x",
        ] {
            assert_eq!(parse(line), None, "line {line:?}");
        }
    }

    #[test]
    fn the_admission_gate_is_exact() {
        assert!(admission(None, None));
        assert!(admission(None, Some("anything")));
        assert!(admission(Some("t0k3n"), Some("t0k3n")));
        assert!(!admission(Some("t0k3n"), None));
        assert!(!admission(Some("t0k3n"), Some("t0k3n ")));
        assert!(!admission(Some("t0k3n"), Some("wrong")));
    }
}
