//! Fleet configuration: the statically-analyzable plan shape
//! ([`FleetPlan`]), the full runtime configuration ([`FleetConfig`]) and
//! the worker-kill storm ([`WorkerStormPlan`]).
//!
//! The split mirrors `SupervisorPolicy` living in `chopin-faults`: the
//! plan shape lives here so the pre-flight analyzer can validate fleet
//! plans (rules R1201–R1203) without depending on the harness transport.

use serde::{Deserialize, Serialize};

use chopin_faults::hard::{parse_hard_flag, HardFaultKind, HardFaultPlan};
use chopin_faults::net::NetFaultPlan;
use chopin_faults::FaultPlanError;

/// Upper bound on the fleet size: past this, coordination overhead is a
/// configuration error, not scale (rule R1201).
pub const MAX_FLEET_WORKERS: u32 = 256;

/// Default lease deadline: twice the default per-cell deadline, so one
/// retried cell fits inside one lease.
pub const DEFAULT_LEASE_DEADLINE_MS: u64 = 120_000;

/// Default number of crashes a worker slot survives before the
/// coordinator quarantines the slot instead of respawning it.
pub const DEFAULT_MAX_WORKER_CRASHES: u32 = 3;

/// Default lease count after which a storm victim kills itself: dying on
/// the *second* lease means every victim generation still completes one
/// cell, so a storm always makes progress.
pub const DEFAULT_STORM_KILL_AFTER_LEASES: u32 = 2;

/// The statically-analyzable fleet shape carried inside a `PlanIR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetPlan {
    /// Number of worker processes the coordinator spawns.
    pub workers: u32,
    /// Lease deadline in milliseconds; `None` means
    /// [`DEFAULT_LEASE_DEADLINE_MS`].
    pub lease_deadline_ms: Option<u64>,
}

impl FleetPlan {
    /// A plan with the default lease deadline.
    #[must_use]
    pub fn new(workers: u32) -> Self {
        FleetPlan {
            workers,
            lease_deadline_ms: None,
        }
    }

    /// The effective lease deadline.
    #[must_use]
    pub fn deadline_ms(&self) -> u64 {
        self.lease_deadline_ms.unwrap_or(DEFAULT_LEASE_DEADLINE_MS)
    }

    /// Validate field ranges (the dynamic half of rule R1201/R1202: the
    /// analyzer re-checks these statically against the cell matrix).
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        if self.workers == 0 {
            return Err(FaultPlanError {
                field: "workers".to_string(),
                reason: "must be at least 1 (omit --fleet for a sequential run)".to_string(),
            });
        }
        if self.workers > MAX_FLEET_WORKERS {
            return Err(FaultPlanError {
                field: "workers".to_string(),
                reason: format!(
                    "{} exceeds the {MAX_FLEET_WORKERS}-worker bound",
                    self.workers
                ),
            });
        }
        if let Some(d) = self.lease_deadline_ms {
            if d == 0 {
                return Err(FaultPlanError {
                    field: "lease_deadline_ms".to_string(),
                    reason: "must be positive (omit --lease-deadline for the default)".to_string(),
                });
            }
            if d > chopin_faults::policy::MAX_DEADLINE_MS {
                return Err(FaultPlanError {
                    field: "lease_deadline_ms".to_string(),
                    reason: format!(
                        "{d} exceeds the {}ms bound",
                        chopin_faults::policy::MAX_DEADLINE_MS
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A deterministic schedule of *worker* deaths: the fleet analog of the
/// per-cell [`HardFaultPlan`], selecting victims by worker id instead of
/// cell identity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerStormPlan {
    /// Victim selection and death kind (kill/abort; the oom blow-up needs
    /// the sandbox RLIMIT_AS backstop, which fleet workers do not carry).
    pub plan: HardFaultPlan,
    /// A victim worker dies upon receiving this lease number (1-based).
    pub kill_after_leases: u32,
}

impl WorkerStormPlan {
    /// A storm with the default kill point.
    #[must_use]
    pub fn new(plan: HardFaultPlan) -> Self {
        WorkerStormPlan {
            plan,
            kill_after_leases: DEFAULT_STORM_KILL_AFTER_LEASES,
        }
    }

    /// Whether the worker with this id dies under the storm.
    #[must_use]
    pub fn is_victim(&self, worker_id: u64) -> bool {
        self.plan.worker_victim(worker_id)
    }
}

/// Parse a `--fleet-storm` flag value: `KIND[:SEED[:STRIDE]]`, same
/// grammar as `--hard-faults` but restricted to kinds a bare worker
/// process can inflict on itself.
pub fn parse_storm_flag(flag: &str) -> Result<WorkerStormPlan, String> {
    let plan = parse_hard_flag(flag)?;
    if plan.kind == HardFaultKind::OomBlowup {
        return Err(
            "fleet storms support kill and abort only: the oom blow-up needs the \
             sandbox RLIMIT_AS backstop, which fleet workers do not carry"
                .to_string(),
        );
    }
    Ok(WorkerStormPlan::new(plan))
}

/// The full runtime fleet configuration held by the supervisor.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The statically-analyzable shape (worker count, lease deadline).
    pub plan: FleetPlan,
    /// Optional worker-kill storm (the `artifact chaos --workers` leg).
    pub storm: Option<WorkerStormPlan>,
    /// Crash budget per worker slot before the slot is quarantined.
    pub max_worker_crashes: u32,
    /// Test hook: abort the coordinator after this many recorded
    /// completions, leaving worker journals behind for `--resume`.
    pub die_after: Option<u64>,
    /// Listener bind address (`--fleet-bind`); `None` means the loopback
    /// default `127.0.0.1:0`.
    pub bind: Option<String>,
    /// Per-run auth token (`--fleet-token`); every `Hello`/`Adopt` must
    /// carry it or be cleanly rejected.
    pub token: Option<String>,
    /// Seeded network-fault schedule (`--net-faults`) injected at the
    /// coordinator's transport shim.
    pub net: Option<NetFaultPlan>,
    /// When set, this process is a standby coordinator for the primary
    /// at the given address (`--fleet-standby ADDR`): it registers,
    /// watches the primary's heartbeat, and takes over on silence.
    pub standby_of: Option<String>,
    /// `--fleet-await-standby`: the primary issues no leases until a
    /// standby coordinator has adopted. An armed-failover drill — work
    /// only starts once a successor is guaranteed to exist, so a
    /// mid-sweep coordinator death always has somewhere to hand over
    /// to. Without a standby ever registering, the fleet idles by
    /// design (workers heartbeat and re-poll).
    pub await_standby: bool,
}

impl FleetConfig {
    /// A fleet of `workers` with defaults everywhere else.
    #[must_use]
    pub fn new(workers: u32) -> Self {
        FleetConfig {
            plan: FleetPlan::new(workers),
            storm: None,
            max_worker_crashes: DEFAULT_MAX_WORKER_CRASHES,
            die_after: None,
            bind: None,
            token: None,
            net: None,
            standby_of: None,
            await_standby: false,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        self.plan.validate()?;
        if let Some(storm) = &self.storm {
            storm.plan.validate()?;
            if storm.kill_after_leases == 0 {
                return Err(FaultPlanError {
                    field: "kill_after_leases".to_string(),
                    reason: "must be at least 1".to_string(),
                });
            }
        }
        if self.max_worker_crashes == 0 {
            return Err(FaultPlanError {
                field: "max_worker_crashes".to_string(),
                reason: "must be at least 1".to_string(),
            });
        }
        if let Some(net) = &self.net {
            net.validate()?;
        }
        if let Some(bind) = &self.bind {
            if bind.parse::<std::net::SocketAddr>().is_err() {
                return Err(FaultPlanError {
                    field: "bind".to_string(),
                    reason: format!(
                        "{bind:?} is not a routable socket address (expected HOST:PORT, \
                         e.g. 0.0.0.0:7400)"
                    ),
                });
            }
        }
        if let Some(token) = &self.token {
            if token.is_empty() || token.contains(char::is_whitespace) {
                return Err(FaultPlanError {
                    field: "token".to_string(),
                    reason: "must be nonempty and free of whitespace".to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_validation_rejects_degenerate_fleets() {
        assert!(FleetPlan::new(1).validate().is_ok());
        assert!(FleetPlan::new(MAX_FLEET_WORKERS).validate().is_ok());
        assert_eq!(FleetPlan::new(0).validate().unwrap_err().field, "workers");
        assert_eq!(
            FleetPlan::new(MAX_FLEET_WORKERS + 1)
                .validate()
                .unwrap_err()
                .field,
            "workers"
        );
        let mut plan = FleetPlan::new(4);
        plan.lease_deadline_ms = Some(0);
        assert_eq!(plan.validate().unwrap_err().field, "lease_deadline_ms");
        plan.lease_deadline_ms = Some(DEFAULT_LEASE_DEADLINE_MS);
        assert!(plan.validate().is_ok());
        assert_eq!(plan.deadline_ms(), DEFAULT_LEASE_DEADLINE_MS);
    }

    #[test]
    fn storm_flag_grammar_matches_hard_faults_but_rejects_oom() {
        let storm = parse_storm_flag("kill").unwrap();
        assert_eq!(storm.plan.kind, HardFaultKind::Kill);
        assert_eq!(storm.kill_after_leases, DEFAULT_STORM_KILL_AFTER_LEASES);
        let storm = parse_storm_flag("abort:99:3").unwrap();
        assert_eq!(storm.plan.seed, 99);
        assert_eq!(storm.plan.stride, 3);
        assert!(parse_storm_flag("oom").is_err());
        assert!(parse_storm_flag("segv").is_err());
        assert!(parse_storm_flag("kill:0").is_err(), "zero seed rejected");
    }

    #[test]
    fn config_validation_covers_storm_and_crash_budget() {
        let mut cfg = FleetConfig::new(4);
        assert!(cfg.validate().is_ok());
        cfg.max_worker_crashes = 0;
        assert_eq!(cfg.validate().unwrap_err().field, "max_worker_crashes");
        cfg.max_worker_crashes = DEFAULT_MAX_WORKER_CRASHES;
        cfg.storm = parse_storm_flag("kill").ok();
        assert!(cfg.validate().is_ok());
        if let Some(storm) = &mut cfg.storm {
            storm.kill_after_leases = 0;
        }
        assert_eq!(cfg.validate().unwrap_err().field, "kill_after_leases");
    }

    #[test]
    fn config_validation_covers_bind_token_and_net_plan() {
        let mut cfg = FleetConfig::new(2);
        cfg.bind = Some("0.0.0.0:7400".to_string());
        cfg.token = Some("c0ffee".to_string());
        cfg.net = chopin_faults::net::parse_net_flag("storm").ok();
        assert!(cfg.validate().is_ok());

        cfg.bind = Some("not-an-addr".to_string());
        assert_eq!(cfg.validate().unwrap_err().field, "bind");
        cfg.bind = Some("127.0.0.1:0".to_string());
        assert!(cfg.validate().is_ok());

        cfg.token = Some("has space".to_string());
        assert_eq!(cfg.validate().unwrap_err().field, "token");
        cfg.token = Some(String::new());
        assert_eq!(cfg.validate().unwrap_err().field, "token");
        cfg.token = None;

        if let Some(net) = &mut cfg.net {
            net.seed = 0;
        }
        assert_eq!(cfg.validate().unwrap_err().field, "seed");
    }
}
