//! Deterministic resolution of duplicate cell completions.
//!
//! Work-stealing and lease reassignment mean one cell can legitimately
//! complete on two workers — a stolen straggler finishes on both the
//! original worker and the thief, or a re-leased cell's first worker
//! turns out merely slow rather than dead. Cell execution is
//! deterministic, so the duplicate *payloads* are byte-identical in a
//! healthy fleet; the tiebreak exists so the merged journal and CSV are
//! well-defined even when they are not (a half-written journal from a
//! SIGKILLed worker, a torn final line): the candidate with the lowest
//! `(attempt, worker)` pair wins, always, on every host, regardless of
//! arrival order. Two candidates can even share the `(attempt, worker)`
//! pair — a worker journals a cell and *then* sends `@done`, so a resume
//! can absorb the shard row while the live completion is still in
//! flight; the payload itself breaks that tie (lowest byte order wins),
//! keeping resolution a pure function of the candidate *set*.

/// Accumulates completion candidates for one cell and resolves them by
/// the fixed `(attempt, worker)` tiebreak.
#[derive(Debug, Clone, Default)]
pub struct CellMerge<T> {
    winner: Option<(u32, u64, T)>,
    conflicts: u64,
}

impl<T> CellMerge<T> {
    /// An empty merge (no candidates yet).
    #[must_use]
    pub fn new() -> Self {
        CellMerge {
            winner: None,
            conflicts: 0,
        }
    }

    /// The winning candidate, if any completion was offered.
    #[must_use]
    pub fn winner(&self) -> Option<(u32, u64, &T)> {
        self.winner.as_ref().map(|(a, w, v)| (*a, *w, v))
    }

    /// Consume the merge, yielding the winning candidate.
    #[must_use]
    pub fn into_winner(self) -> Option<(u32, u64, T)> {
        self.winner
    }

    /// How many duplicate offers were resolved away.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Whether any candidate has been offered.
    #[must_use]
    pub fn is_resolved(&self) -> bool {
        self.winner.is_some()
    }
}

impl<T: Ord> CellMerge<T> {
    /// Offer a completion candidate. Returns `true` when the candidate
    /// became (or stayed) the winner. Any offer after the first counts
    /// as a merge conflict. Ties on `(attempt, worker)` — a shard row
    /// and its in-flight live duplicate — fall through to the payload,
    /// so the outcome is independent of arrival order even then.
    pub fn offer(&mut self, attempt: u32, worker: u64, value: T) -> bool {
        match &self.winner {
            None => {
                self.winner = Some((attempt, worker, value));
                true
            }
            Some((a, w, v)) => {
                self.conflicts += 1;
                if (attempt, worker, &value) < (*a, *w, v) {
                    self.winner = Some((attempt, worker, value));
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_candidate_wins_until_beaten() {
        let mut m = CellMerge::new();
        assert!(!m.is_resolved());
        assert!(m.offer(2, 5, "late-attempt"));
        assert!(m.is_resolved());
        // Higher (attempt, worker) loses.
        assert!(!m.offer(3, 0, "even-later"));
        // Same attempt, lower worker id wins.
        assert!(m.offer(2, 1, "same-attempt-lower-worker"));
        // Lower attempt beats everything.
        assert!(m.offer(1, 9, "first-attempt"));
        assert_eq!(m.conflicts(), 3);
        assert_eq!(m.winner(), Some((1, 9, &"first-attempt")));
        assert_eq!(m.into_winner(), Some((1, 9, "first-attempt")));
    }

    #[test]
    fn resolution_is_arrival_order_independent() {
        let candidates = [(2u32, 3u64, "a"), (1, 7, "b"), (2, 0, "c"), (1, 2, "d")];
        let mut orders = vec![
            vec![0usize, 1, 2, 3],
            vec![3, 2, 1, 0],
            vec![1, 3, 0, 2],
            vec![2, 0, 3, 1],
        ];
        let mut winners = Vec::new();
        for order in orders.drain(..) {
            let mut m = CellMerge::new();
            for i in order {
                let (a, w, v) = candidates[i];
                m.offer(a, w, v);
            }
            assert_eq!(m.conflicts(), 3);
            winners.push(m.into_winner());
        }
        for w in &winners {
            assert_eq!(*w, Some((1, 2, "d")), "order must not matter");
        }
    }

    #[test]
    fn equal_attempt_worker_candidates_tiebreak_on_the_payload() {
        // A worker journals a cell, then sends @done: a resume can
        // absorb the shard row while the live duplicate is still queued,
        // and a torn shard tail can make the two payloads differ. The
        // winner must not depend on which arrives first.
        let shard = "half-writ";
        let live = "whole";
        let mut forward = CellMerge::new();
        assert!(forward.offer(1, 0, shard));
        assert!(!forward.offer(1, 0, live));
        let mut backward = CellMerge::new();
        assert!(backward.offer(1, 0, live));
        assert!(backward.offer(1, 0, shard));
        assert_eq!(forward.winner(), backward.winner());
        assert_eq!(forward.winner(), Some((1, 0, &shard)), "lowest byte order");
        assert_eq!(forward.conflicts(), 1);
        assert_eq!(backward.conflicts(), 1);
        // Byte-identical duplicates (the healthy-fleet case) still merge
        // to the obvious fixpoint.
        let mut dup = CellMerge::new();
        dup.offer(1, 0, live);
        assert!(!dup.offer(1, 0, live));
        assert_eq!(dup.winner(), Some((1, 0, &live)));
    }
}
