//! The versioned bench-report schema: the machine-readable trajectory
//! point one PR's perf run leaves behind (`BENCH_<PR>.json`).
//!
//! Schema v1 records, per hot-path bench, the *raw per-sample array* —
//! not just a mean — because the EMSE steady-state work (PAPERS.md)
//! shows single summary numbers routinely misrepresent runs whose
//! samples never settled. Derived statistics (min/mean/p50/p99) are
//! stored alongside the samples so downstream consumers (the gate, the
//! HTML report) never re-derive them differently.
//!
//! The first trajectory point, `BENCH_6.json`, predates this schema; its
//! v0 shape (one benchmark, per-observer min/mean only) is still parsed
//! by [`BenchReport::parse`] as a fallback so the ledger's history is
//! never stranded. Serialisation is hand-rolled (the vendored `serde` is
//! a marker stub) and floats marshal via `{:?}` per the workspace
//! float-marshalling contract (srclint R1004 — this file is in the
//! checked writer set).

use chopin_obs::json::{self, json_string, JsonValue};

/// The current bench-report schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// Minimum samples a bench must record for its statistics to mean
/// anything (lint rule R1102).
pub const MIN_SAMPLES: u64 = 5;

/// One bench's measurements within a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Stable bench identifier, e.g. `hotloop.noop`.
    pub id: String,
    /// Bench configuration as sorted key/value pairs (benchmark,
    /// collector, heap factor, iteration counts, ...).
    pub config: Vec<(String, String)>,
    /// Declared number of timed samples.
    pub sample_count: u64,
    /// The raw per-sample wall times, nanoseconds, in measurement order.
    /// Empty only for points migrated from v0, where the array was never
    /// recorded.
    pub samples_ns: Vec<u64>,
    /// Fastest sample (the gate's comparison statistic).
    pub min_ns: u64,
    /// Mean over the samples.
    pub mean_ns: u64,
    /// Median, when per-sample data was available.
    pub p50_ns: Option<u64>,
    /// 99th percentile, when per-sample data was available.
    pub p99_ns: Option<u64>,
    /// Work units the bench processed per sample (events dispatched,
    /// cycles planned, journal entries replayed; 0 when not meaningful).
    pub work: u64,
}

impl BenchRecord {
    /// Build a record from raw samples, deriving every statistic from
    /// the sorted array.
    pub fn from_samples(
        id: impl Into<String>,
        config: Vec<(String, String)>,
        samples_ns: Vec<u64>,
        work: u64,
    ) -> BenchRecord {
        let mut sorted = samples_ns.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let min_ns = sorted.first().copied().unwrap_or(0);
        let sum: u128 = sorted.iter().map(|&s| u128::from(s)).sum();
        let mean_ns = if n == 0 { 0 } else { (sum / n as u128) as u64 };
        let rank = |q: f64| -> Option<u64> {
            if n == 0 {
                return None;
            }
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            Some(sorted[idx])
        };
        let mut config = config;
        config.sort();
        BenchRecord {
            id: id.into(),
            config,
            sample_count: n as u64,
            samples_ns,
            min_ns,
            mean_ns,
            p50_ns: rank(0.50),
            p99_ns: rank(0.99),
            work,
        }
    }
}

/// One PR's complete perf-trajectory point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Schema version of the parsed document (0 for legacy v0 points).
    pub schema_version: u64,
    /// The PR that produced this point.
    pub pr: u64,
    /// Git revision the suite ran at (short hash; `unknown` when the
    /// repository was unavailable).
    pub git_rev: String,
    /// Every bench measured, in suite order.
    pub benches: Vec<BenchRecord>,
}

impl BenchReport {
    /// Look up a bench by id.
    pub fn bench(&self, id: &str) -> Option<&BenchRecord> {
        self.benches.iter().find(|b| b.id == id)
    }

    /// Serialize to the canonical v1 JSON document (one trailing
    /// newline, keys in fixed order, floats never written — every field
    /// is integral or a string).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema_version\": {},\n  \"pr\": {},\n  \"git_rev\": {},\n  \"benches\": [",
            self.schema_version,
            self.pr,
            json_string(&self.git_rev)
        ));
        for (i, b) in self.benches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"id\": {}, ", json_string(&b.id)));
            let config: Vec<String> = b
                .config
                .iter()
                .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
                .collect();
            out.push_str(&format!("\"config\": {{{}}}, ", config.join(", ")));
            out.push_str(&format!("\"sample_count\": {}, ", b.sample_count));
            let samples: Vec<String> = b.samples_ns.iter().map(u64::to_string).collect();
            out.push_str(&format!("\"samples_ns\": [{}], ", samples.join(", ")));
            out.push_str(&format!("\"min_ns\": {}, ", b.min_ns));
            out.push_str(&format!("\"mean_ns\": {}", b.mean_ns));
            if let Some(p50) = b.p50_ns {
                out.push_str(&format!(", \"p50_ns\": {p50}"));
            }
            if let Some(p99) = b.p99_ns {
                out.push_str(&format!(", \"p99_ns\": {p99}"));
            }
            out.push_str(&format!(", \"work\": {}}}", b.work));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a bench-report document: the v1 schema when
    /// `schema_version` is present, otherwise the legacy v0 fallback
    /// (the original `BENCH_6.json` shape — per-observer min/mean with
    /// no sample arrays). v0 documents parse with `schema_version: 0`
    /// and `pr: 0`; the trajectory loader stamps the PR from the file
    /// name.
    ///
    /// # Errors
    ///
    /// A description of the first structural problem found.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match doc.get("schema_version") {
            Some(v) => parse_v1(&doc, v),
            None => parse_v0(&doc),
        }
    }
}

fn num_field(obj: &JsonValue, key: &str) -> Result<u64, String> {
    let n = obj
        .get(key)
        .and_then(JsonValue::as_num)
        .ok_or_else(|| format!("missing numeric `{key}`"))?;
    if !n.is_finite() || n < 0.0 || n.fract() != 0.0 {
        return Err(format!("`{key}` must be a non-negative integer, got {n:?}"));
    }
    Ok(n as u64)
}

fn str_field<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn parse_v1(doc: &JsonValue, version: &JsonValue) -> Result<BenchReport, String> {
    let schema_version = version
        .as_num()
        .filter(|v| v.is_finite() && *v >= 0.0 && v.fract() == 0.0)
        .ok_or("schema_version must be a non-negative integer")? as u64;
    let pr = num_field(doc, "pr")?;
    let git_rev = str_field(doc, "git_rev")?.to_string();
    let benches = doc
        .get("benches")
        .and_then(JsonValue::as_arr)
        .ok_or("missing `benches` array")?;
    let mut parsed = Vec::new();
    for (i, b) in benches.iter().enumerate() {
        parsed.push(parse_v1_bench(b).map_err(|e| format!("bench {i}: {e}"))?);
    }
    Ok(BenchReport {
        schema_version,
        pr,
        git_rev,
        benches: parsed,
    })
}

fn parse_v1_bench(b: &JsonValue) -> Result<BenchRecord, String> {
    let id = str_field(b, "id")?.to_string();
    let mut config = Vec::new();
    if let Some(JsonValue::Obj(members)) = b.get("config") {
        for (k, v) in members {
            let v = v
                .as_str()
                .ok_or_else(|| format!("config `{k}` must be a string"))?;
            config.push((k.clone(), v.to_string()));
        }
    }
    config.sort();
    let samples = b
        .get("samples_ns")
        .and_then(JsonValue::as_arr)
        .ok_or("missing `samples_ns` array")?;
    let mut samples_ns = Vec::with_capacity(samples.len());
    for s in samples {
        let n = s
            .as_num()
            .filter(|n| n.is_finite() && *n >= 0.0)
            .ok_or("samples_ns entries must be non-negative numbers")?;
        samples_ns.push(n as u64);
    }
    let optional = |key: &str| -> Result<Option<u64>, String> {
        match b.get(key) {
            None => Ok(None),
            Some(_) => num_field(b, key).map(Some),
        }
    };
    Ok(BenchRecord {
        id,
        config,
        sample_count: num_field(b, "sample_count")?,
        samples_ns,
        min_ns: num_field(b, "min_ns")?,
        mean_ns: num_field(b, "mean_ns")?,
        p50_ns: optional("p50_ns")?,
        p99_ns: optional("p99_ns")?,
        work: optional("work")?.unwrap_or(0),
    })
}

/// The legacy v0 shape written by the original `engine_hotloop_smoke`
/// bench: one benchmark/collector/heap-factor triple and an array of
/// per-observer results. Observers map onto `hotloop.<observer>` bench
/// ids so the v0 point lines up with the modern suite's series.
fn parse_v0(doc: &JsonValue) -> Result<BenchReport, String> {
    let bench = str_field(doc, "bench")?;
    if bench != "engine_hotloop_smoke" {
        return Err(format!("unknown v0 bench `{bench}`"));
    }
    let benchmark = str_field(doc, "benchmark")?;
    let collector = str_field(doc, "collector")?;
    let heap_factor = doc
        .get("heap_factor")
        .and_then(JsonValue::as_num)
        .filter(|f| f.is_finite() && *f > 0.0)
        .ok_or("missing positive `heap_factor`")?;
    let sample_count = num_field(doc, "samples")?;
    let results = doc
        .get("results")
        .and_then(JsonValue::as_arr)
        .ok_or("missing `results` array")?;
    let mut benches = Vec::new();
    for (i, r) in results.iter().enumerate() {
        let err = |e: String| format!("result {i}: {e}");
        let observer = str_field(r, "observer").map_err(err)?;
        let config = vec![
            ("benchmark".to_string(), benchmark.to_string()),
            ("collector".to_string(), collector.to_string()),
            ("heap_factor".to_string(), format!("{heap_factor:?}")),
        ];
        benches.push(BenchRecord {
            id: format!("hotloop.{observer}"),
            config,
            sample_count,
            samples_ns: Vec::new(),
            min_ns: num_field(r, "min_ns").map_err(err)?,
            mean_ns: num_field(r, "mean_ns").map_err(err)?,
            p50_ns: None,
            p99_ns: None,
            work: num_field(r, "events").unwrap_or(0),
        });
    }
    Ok(BenchReport {
        schema_version: 0,
        pr: 0,
        git_rev: String::new(),
        benches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original `BENCH_6.json` bytes as PR 6 committed them — the v0
    /// fallback contract is pinned against this exact document.
    const BENCH_6_V0: &str = include_str!("../tests/fixtures/bench_6_v0.json");

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            pr: 7,
            git_rev: "abc1234".to_string(),
            benches: vec![BenchRecord::from_samples(
                "alloc.accounting",
                vec![("allocations".to_string(), "50000".to_string())],
                vec![900, 1_000, 1_100, 1_050, 950],
                50_000,
            )],
        }
    }

    #[test]
    fn v1_round_trips_through_parse() {
        let report = sample_report();
        let parsed = BenchReport::parse(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_samples_derives_order_statistics() {
        let b = BenchRecord::from_samples("x", Vec::new(), vec![5, 1, 3, 2, 4], 0);
        assert_eq!(b.min_ns, 1);
        assert_eq!(b.mean_ns, 3);
        assert_eq!(b.p50_ns, Some(3));
        assert_eq!(b.p99_ns, Some(5));
        assert_eq!(b.sample_count, 5);
        assert_eq!(b.samples_ns, vec![5, 1, 3, 2, 4], "raw order preserved");
    }

    #[test]
    fn v0_fallback_parses_the_original_bench_6_bytes() {
        let report = BenchReport::parse(BENCH_6_V0).unwrap();
        assert_eq!(report.schema_version, 0);
        assert_eq!(report.pr, 0, "v0 has no pr; the loader stamps it");
        assert_eq!(report.benches.len(), 3);
        let ids: Vec<&str> = report.benches.iter().map(|b| b.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "hotloop.noop",
                "hotloop.recorder",
                "hotloop.tee_recorder_metrics"
            ]
        );
        let noop = report.bench("hotloop.noop").unwrap();
        assert_eq!(noop.min_ns, 9033);
        assert_eq!(noop.mean_ns, 10448);
        assert_eq!(noop.sample_count, 5);
        assert!(noop.samples_ns.is_empty(), "v0 never recorded samples");
        assert_eq!(noop.p50_ns, None);
        let tee = report.bench("hotloop.tee_recorder_metrics").unwrap();
        assert_eq!(tee.work, 583);
        assert_eq!(
            noop.config,
            vec![
                ("benchmark".to_string(), "fop".to_string()),
                ("collector".to_string(), "G1".to_string()),
                ("heap_factor".to_string(), "2.0".to_string()),
            ]
        );
    }

    #[test]
    fn malformed_documents_are_errors() {
        for bad in [
            "{",
            "{}",
            "{\"schema_version\": 1}",
            "{\"schema_version\": 1, \"pr\": -1, \"git_rev\": \"x\", \"benches\": []}",
            "{\"schema_version\": 1, \"pr\": 7, \"git_rev\": \"x\", \"benches\": [{}]}",
            "{\"bench\": \"something_else\"}",
        ] {
            assert!(BenchReport::parse(bad).is_err(), "should reject {bad}");
        }
    }
}
