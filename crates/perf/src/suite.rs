//! The hot-path bench suite: self-timed micro/meso benchmarks over the
//! engine's hottest code paths, measured through the same plumbing the
//! production telemetry uses.
//!
//! Each bench implements [`HotPathBench`]: one `execute()` call is one
//! measured iteration. The runner ([`run_bench`]) times samples through
//! [`chopin_sandbox::clock::WallSpan`] — the workspace's single
//! sanctioned wall-clock abstraction (srclint R1002) — and folds every
//! sample into a shared [`MetricsRegistry`] histogram
//! (`perf.<bench id>_ns`), so bench timings and production telemetry
//! speak one vocabulary and one histogram implementation.
//!
//! The default suite covers the paths the ROADMAP's raw-speed campaign
//! targets:
//!
//! * **`hotloop.*`** — the engine event loop end to end (event dispatch
//!   plus observer fan-out): the monomorphised no-op observer, a
//!   recording observer, and a `Tee` into recorder + metrics.
//! * **`alloc.accounting`** — [`HeapState`] allocation/reclaim
//!   bookkeeping, the arithmetic inside every engine slice.
//! * **`collector.phase_*`** — the pure collection-cycle planners
//!   (G1/Serial/Parallel pause and concurrent-cycle math) across a grid
//!   of heap states.
//! * **`engine.batch_fastforward`** — a deliberately tiny-heap run that
//!   forces the closed-form batching path to fold tens of thousands of
//!   identical cycles.
//!
//! The supervisor journal write/replay bench lives in `chopin-harness`
//! (which owns the journal) and joins the suite through the same trait.

use crate::report::BenchRecord;
use chopin_obs::{EventRecorder, MetricsObserver, MetricsRegistry, NoopObserver, Tee};
use chopin_runtime::collector::cycle::{plan_cycle, CollectionRequest, CycleInput};
use chopin_runtime::collector::{CollectorKind, CollectorModel};
use chopin_runtime::config::RunConfig;
use chopin_runtime::engine::run_with_observer;
use chopin_runtime::heap::HeapState;
use chopin_runtime::spec::MutatorSpec;
use chopin_runtime::time::SimDuration;
use chopin_sandbox::clock::WallSpan;
use chopin_workloads::{suite, SizeClass};
use std::hint::black_box;

/// Default number of timed samples per bench (after warmup). Chosen
/// above [`crate::report::MIN_SAMPLES`] so the default run always
/// satisfies lint rule R1102.
pub const DEFAULT_SAMPLES: usize = 7;

/// Warmup executions before the timed samples (first-touch allocation
/// and code-path warmup noise).
pub const WARMUP_RUNS: usize = 2;

/// One hot-path bench: an `execute()` call is one measured iteration.
pub trait HotPathBench {
    /// Stable bench id (`family.variant`), the trajectory join key.
    fn id(&self) -> &'static str;
    /// Configuration pairs recorded into the report.
    fn config(&self) -> Vec<(String, String)>;
    /// Run one measured iteration, returning the work units processed
    /// (events, cycles, entries; 0 when not meaningful).
    ///
    /// # Errors
    ///
    /// A description of the failure; the runner aborts the bench.
    fn execute(&mut self) -> Result<u64, String>;
}

/// Run one bench: warmups, then `samples` timed iterations, each sample
/// recorded into `metrics` under `perf.<id>_ns`.
///
/// # Errors
///
/// Propagates the first `execute()` failure.
pub fn run_bench(
    bench: &mut dyn HotPathBench,
    samples: usize,
    metrics: &mut MetricsRegistry,
) -> Result<BenchRecord, String> {
    for _ in 0..WARMUP_RUNS {
        bench
            .execute()
            .map_err(|e| format!("{} warmup: {e}", bench.id()))?;
    }
    let histogram = format!("perf.{}_ns", bench.id());
    let mut samples_ns = Vec::with_capacity(samples);
    let mut work = 0;
    for _ in 0..samples {
        let span = WallSpan::begin();
        work = bench
            .execute()
            .map_err(|e| format!("{}: {e}", bench.id()))?;
        let ns = u64::try_from(span.elapsed().as_nanos()).unwrap_or(u64::MAX);
        metrics.observe(&histogram, ns);
        samples_ns.push(ns);
    }
    metrics.inc("perf.samples", samples as u64);
    metrics.inc("perf.benches", 1);
    Ok(BenchRecord::from_samples(
        bench.id(),
        bench.config(),
        samples_ns,
        work,
    ))
}

/// Which observer the hot-loop bench fans events out to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HotLoopObserver {
    Noop,
    Recorder,
    TeeRecorderMetrics,
}

/// The engine hot loop end to end: one fop/G1/2× iteration per sample,
/// with the chosen observer attached.
struct HotLoopBench {
    observer: HotLoopObserver,
    spec: MutatorSpec,
    config: RunConfig,
}

impl HotLoopBench {
    fn new(observer: HotLoopObserver) -> Result<HotLoopBench, String> {
        let fop = suite::by_name("fop").ok_or("fop missing from the suite registry")?;
        let spec = fop
            .to_spec(SizeClass::Default)
            .ok_or("fop has no default size class")?
            .map_err(|e| format!("fop spec invalid: {e}"))?;
        let heap = fop
            .min_heap_bytes(SizeClass::Default)
            .ok_or("fop publishes no minimum heap")?
            * 2;
        Ok(HotLoopBench {
            observer,
            spec,
            config: RunConfig::new(heap, CollectorKind::G1).with_noise(0.0),
        })
    }
}

impl HotPathBench for HotLoopBench {
    fn id(&self) -> &'static str {
        match self.observer {
            HotLoopObserver::Noop => "hotloop.noop",
            HotLoopObserver::Recorder => "hotloop.recorder",
            HotLoopObserver::TeeRecorderMetrics => "hotloop.tee_recorder_metrics",
        }
    }

    fn config(&self) -> Vec<(String, String)> {
        vec![
            ("benchmark".to_string(), "fop".to_string()),
            ("collector".to_string(), "G1".to_string()),
            ("heap_factor".to_string(), format!("{:?}", 2.0f64)),
        ]
    }

    fn execute(&mut self) -> Result<u64, String> {
        match self.observer {
            HotLoopObserver::Noop => {
                run_with_observer(&self.spec, &self.config, &mut NoopObserver)
                    .map_err(|e| e.to_string())?;
                Ok(0)
            }
            HotLoopObserver::Recorder => {
                let mut recorder = EventRecorder::new();
                run_with_observer(&self.spec, &self.config, &mut recorder)
                    .map_err(|e| e.to_string())?;
                Ok(recorder.len() as u64)
            }
            HotLoopObserver::TeeRecorderMetrics => {
                let mut tee = Tee(EventRecorder::new(), MetricsObserver::new());
                run_with_observer(&self.spec, &self.config, &mut tee).map_err(|e| e.to_string())?;
                Ok(tee.0.len() as u64)
            }
        }
    }
}

/// Heap allocation/reclaim bookkeeping: the per-slice arithmetic of
/// [`HeapState`], isolated from the rest of the engine.
struct AllocAccountingBench {
    allocations: u64,
}

impl HotPathBench for AllocAccountingBench {
    fn id(&self) -> &'static str {
        "alloc.accounting"
    }

    fn config(&self) -> Vec<(String, String)> {
        vec![
            ("allocations".to_string(), self.allocations.to_string()),
            ("capacity_mb".to_string(), "256".to_string()),
        ]
    }

    fn execute(&mut self) -> Result<u64, String> {
        let mut heap = HeapState::new(256.0 * 1e6, 1.0);
        let live = 64.0 * 1e6;
        let mut reclaims = 0u64;
        for i in 0..self.allocations {
            // Deterministic size mix: 64 B .. ~128 KB, no RNG (R1007).
            let size = 64.0 + ((i * 2_654_435_761) % 131_072) as f64;
            heap.allocate(size);
            if heap.free() < 16.0 * 1e6 {
                black_box(heap.reclaim_to(live));
                reclaims += 1;
            }
        }
        black_box(heap.total_allocated());
        Ok(self.allocations + reclaims)
    }
}

/// The pure collection-cycle planner for one collector, swept across a
/// grid of heap states and all three request kinds — the pause and
/// concurrent-cycle math the engine consults at every trigger.
struct CollectorPhaseBench {
    kind: CollectorKind,
    model: CollectorModel,
    cycles: u64,
}

impl CollectorPhaseBench {
    fn new(kind: CollectorKind, cycles: u64) -> CollectorPhaseBench {
        CollectorPhaseBench {
            kind,
            model: kind.model(),
            cycles,
        }
    }
}

impl HotPathBench for CollectorPhaseBench {
    fn id(&self) -> &'static str {
        match self.kind {
            CollectorKind::G1 => "collector.phase_g1",
            CollectorKind::Serial => "collector.phase_serial",
            CollectorKind::Parallel => "collector.phase_parallel",
            _ => "collector.phase_other",
        }
    }

    fn config(&self) -> Vec<(String, String)> {
        vec![
            ("collector".to_string(), self.kind.to_string()),
            ("cycles".to_string(), self.cycles.to_string()),
        ]
    }

    fn execute(&mut self) -> Result<u64, String> {
        let mut acc = 0.0f64;
        for i in 0..self.cycles {
            let input = CycleInput {
                live_bytes: 50e6 + (i % 97) as f64 * 2e6,
                allocated_since_gc: 10e6 + (i % 31) as f64 * 3e6,
                survival_fraction: 0.02 + (i % 7) as f64 * 0.01,
                mean_object_size: 48.0 + (i % 5) as f64 * 16.0,
                hardware_threads: 32,
                machine_speed: 1.0,
            };
            let request = match i % 3 {
                0 => CollectionRequest::Normal,
                1 => CollectionRequest::Full,
                _ => CollectionRequest::Degenerate,
            };
            let outcome = plan_cycle(&self.model, &input, request);
            acc += outcome.total_work_cpu_ns() + outcome.stw_wall.as_nanos() as f64;
        }
        black_box(acc);
        Ok(self.cycles)
    }
}

/// A deliberately tiny-heap, allocation-saturated run that pushes the
/// engine past its batching threshold, timing the closed-form
/// fast-forward path that folds tens of thousands of identical cycles.
struct BatchFastForwardBench {
    spec: MutatorSpec,
    config: RunConfig,
}

impl BatchFastForwardBench {
    /// Total allocation far above the batching threshold at this heap:
    /// roughly `total_allocation / free-per-cycle` cycles (~hundreds of
    /// thousands), where the engine's cap is 60k.
    fn new() -> Result<BatchFastForwardBench, String> {
        let spec = MutatorSpec::builder("batch-fastforward")
            .threads(4)
            .total_work(SimDuration::from_millis(200))
            .total_allocation(2 << 40) // 2 TiB through a 32 MiB heap
            .live_range(8 << 20, 12 << 20)
            .build()
            .map_err(|e| format!("batch spec invalid: {e}"))?;
        let config = RunConfig::new(32 << 20, CollectorKind::Serial).with_noise(0.0);
        Ok(BatchFastForwardBench { spec, config })
    }
}

impl HotPathBench for BatchFastForwardBench {
    fn id(&self) -> &'static str {
        "engine.batch_fastforward"
    }

    fn config(&self) -> Vec<(String, String)> {
        vec![
            ("collector".to_string(), "Serial".to_string()),
            ("heap_mb".to_string(), "32".to_string()),
            ("total_allocation_gb".to_string(), "2048".to_string()),
        ]
    }

    fn execute(&mut self) -> Result<u64, String> {
        let result = run_with_observer(&self.spec, &self.config, &mut NoopObserver)
            .map_err(|e| e.to_string())?;
        let batched = result.telemetry().batched_pause_count;
        if batched == 0 {
            return Err("run never entered the batching fast path".to_string());
        }
        Ok(batched)
    }
}

/// The default suite, in reporting order. The harness appends its
/// journal write/replay bench before running.
///
/// # Errors
///
/// Fails if a bench's fixed workload cannot be constructed (a suite
/// registry or spec regression, not an environmental condition).
pub fn default_benches() -> Result<Vec<Box<dyn HotPathBench>>, String> {
    Ok(vec![
        Box::new(HotLoopBench::new(HotLoopObserver::Noop)?),
        Box::new(HotLoopBench::new(HotLoopObserver::Recorder)?),
        Box::new(HotLoopBench::new(HotLoopObserver::TeeRecorderMetrics)?),
        Box::new(AllocAccountingBench {
            allocations: 50_000,
        }),
        Box::new(CollectorPhaseBench::new(CollectorKind::G1, 20_000)),
        Box::new(CollectorPhaseBench::new(CollectorKind::Serial, 20_000)),
        Box::new(CollectorPhaseBench::new(CollectorKind::Parallel, 20_000)),
        Box::new(BatchFastForwardBench::new()?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_suite_ids_are_unique_and_stable() {
        let benches = default_benches().unwrap();
        let ids: Vec<&str> = benches.iter().map(|b| b.id()).collect();
        assert_eq!(
            ids,
            [
                "hotloop.noop",
                "hotloop.recorder",
                "hotloop.tee_recorder_metrics",
                "alloc.accounting",
                "collector.phase_g1",
                "collector.phase_serial",
                "collector.phase_parallel",
                "engine.batch_fastforward",
            ]
        );
        assert!(ids.len() >= 5, "the acceptance floor is 5 distinct benches");
    }

    #[test]
    fn runner_records_samples_and_shared_metrics() {
        let mut metrics = MetricsRegistry::new();
        let mut bench = AllocAccountingBench { allocations: 2_000 };
        let record = run_bench(&mut bench, 5, &mut metrics).unwrap();
        assert_eq!(record.id, "alloc.accounting");
        assert_eq!(record.sample_count, 5);
        assert_eq!(record.samples_ns.len(), 5);
        assert!(record.min_ns > 0);
        assert!(record.work >= 2_000);
        let h = metrics
            .get_histogram("perf.alloc.accounting_ns")
            .expect("samples share the obs histogram vocabulary");
        assert_eq!(h.count(), 5);
        assert_eq!(metrics.counter("perf.benches"), 1);
    }

    #[test]
    fn batch_fastforward_actually_batches() {
        let mut bench = BatchFastForwardBench::new().unwrap();
        let batched = bench.execute().unwrap();
        assert!(
            batched > 60_000,
            "the tiny-heap run must fold >60k cycles, got {batched}"
        );
    }

    #[test]
    fn hotloop_fanout_counts_events() {
        let mut bench = HotLoopBench::new(HotLoopObserver::Recorder).unwrap();
        let events = bench.execute().unwrap();
        assert!(events > 0, "the recorder observer sees engine events");
    }

    #[test]
    fn phase_model_covers_all_request_kinds() {
        let mut bench = CollectorPhaseBench::new(CollectorKind::G1, 300);
        assert_eq!(bench.execute().unwrap(), 300);
    }
}
