//! The perf-trajectory ledger: every `BENCH_<PR>.json` in the repo
//! root, loaded into one ordered series per bench.
//!
//! The ledger is append-only — each PR that runs the suite leaves one
//! point behind — so the trajectory is the repository's performance
//! history, versioned alongside the code that produced it. The loader
//! tolerates the legacy v0 point (`BENCH_6.json` as PR 6 committed it)
//! by stamping its PR number from the file name.

use crate::report::BenchReport;
use std::fs;
use std::path::{Path, PathBuf};

/// One ledger file, parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryPoint {
    /// File name the point was loaded from (`BENCH_6.json`).
    pub file: String,
    /// PR number from the file name — the trajectory's x-axis.
    pub pr: u64,
    /// The parsed report. For v0 points `report.pr` is stamped from the
    /// file name; for v1 points it is whatever the document declares
    /// (lint rule R1103 flags disagreement).
    pub report: BenchReport,
}

/// The full ledger, points sorted by PR number ascending.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trajectory {
    /// All parsed points, ascending by [`TrajectoryPoint::pr`].
    pub points: Vec<TrajectoryPoint>,
}

/// Extract the PR number from a ledger file name: `BENCH_<digits>.json`.
/// Anything else — prefix, suffix, empty or non-numeric middle — is not
/// a ledger file.
pub fn pr_from_filename(name: &str) -> Option<u64> {
    let middle = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
    if middle.is_empty() || !middle.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    middle.parse().ok()
}

/// List the ledger files in `dir`, sorted by PR ascending.
///
/// # Errors
///
/// Fails if the directory cannot be read.
pub fn ledger_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name();
        if let Some(pr) = name.to_str().and_then(pr_from_filename) {
            files.push((pr, entry.path()));
        }
    }
    files.sort();
    Ok(files)
}

impl Trajectory {
    /// Load every `BENCH_*.json` in `dir`. An empty directory yields an
    /// empty trajectory, not an error.
    ///
    /// # Errors
    ///
    /// Fails on an unreadable directory or file, or a document that
    /// parses as neither schema v1 nor legacy v0; the message names the
    /// offending file.
    pub fn load_dir(dir: &Path) -> Result<Trajectory, String> {
        let mut points = Vec::new();
        for (pr, path) in ledger_files(dir)? {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let mut report =
                BenchReport::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            if report.schema_version == 0 {
                report.pr = pr;
            }
            let file = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("BENCH_?.json")
                .to_string();
            points.push(TrajectoryPoint { file, pr, report });
        }
        Ok(Trajectory { points })
    }

    /// The most recent point, by PR number.
    pub fn latest(&self) -> Option<&TrajectoryPoint> {
        self.points.last()
    }

    /// Every bench id appearing anywhere in the ledger, in first-seen
    /// order (oldest point first).
    pub fn bench_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = Vec::new();
        for point in &self.points {
            for bench in &point.report.benches {
                if !ids.contains(&bench.id) {
                    ids.push(bench.id.clone());
                }
            }
        }
        ids
    }

    /// The (pr, record) series for one bench id, ascending by PR.
    pub fn series<'a>(&'a self, id: &str) -> Vec<(u64, &'a crate::report::BenchRecord)> {
        self.points
            .iter()
            .filter_map(|p| p.report.bench(id).map(|b| (p.pr, b)))
            .collect()
    }

    /// The best (fastest) `min_ns` for `id` among points strictly before
    /// `before_pr`, with the PR that set it. This is the gate's
    /// baseline: comparing against the best prior point, not merely the
    /// previous one, keeps slow creep from hiding inside the tolerance.
    pub fn best_prior_min(&self, id: &str, before_pr: u64) -> Option<(u64, u64)> {
        self.series(id)
            .into_iter()
            .filter(|(pr, b)| *pr < before_pr && b.min_ns > 0)
            .min_by_key(|(_, b)| b.min_ns)
            .map(|(pr, b)| (pr, b.min_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchRecord, BenchReport, SCHEMA_VERSION};

    fn temp_ledger(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chopin-perf-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_point(dir: &Path, pr: u64, id: &str, samples: Vec<u64>) {
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            pr,
            git_rev: "test".to_string(),
            benches: vec![BenchRecord::from_samples(id, Vec::new(), samples, 0)],
        };
        fs::write(dir.join(format!("BENCH_{pr}.json")), report.to_json()).unwrap();
    }

    #[test]
    fn filename_parsing_is_strict() {
        assert_eq!(pr_from_filename("BENCH_6.json"), Some(6));
        assert_eq!(pr_from_filename("BENCH_12.json"), Some(12));
        assert_eq!(pr_from_filename("BENCH_.json"), None);
        assert_eq!(pr_from_filename("BENCH_6.json.bak"), None);
        assert_eq!(pr_from_filename("BENCH_six.json"), None);
        assert_eq!(pr_from_filename("bench_6.json"), None);
        assert_eq!(pr_from_filename("BENCH_6_extra.json"), None);
    }

    #[test]
    fn loads_sorted_and_stamps_v0_pr_from_filename() {
        let dir = temp_ledger("sorted");
        write_point(&dir, 10, "a", vec![5, 5, 5, 5, 5]);
        write_point(&dir, 9, "a", vec![7, 7, 7, 7, 7]);
        // A v0 point, under a name that sorts numerically after 9.
        fs::write(
            dir.join("BENCH_8.json"),
            include_str!("../tests/fixtures/bench_6_v0.json"),
        )
        .unwrap();
        let t = Trajectory::load_dir(&dir).unwrap();
        let prs: Vec<u64> = t.points.iter().map(|p| p.pr).collect();
        assert_eq!(prs, [8, 9, 10], "numeric order, not lexicographic");
        assert_eq!(t.points[0].report.pr, 8, "v0 pr stamped from the file name");
        assert_eq!(t.latest().unwrap().pr, 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn best_prior_min_is_the_fastest_strictly_earlier_point() {
        let dir = temp_ledger("best");
        write_point(&dir, 1, "a", vec![100, 110, 120, 130, 140]);
        write_point(&dir, 2, "a", vec![80, 90, 100, 110, 120]);
        write_point(&dir, 3, "a", vec![95, 95, 95, 95, 95]);
        let t = Trajectory::load_dir(&dir).unwrap();
        assert_eq!(t.best_prior_min("a", 3), Some((2, 80)));
        assert_eq!(t.best_prior_min("a", 2), Some((1, 100)));
        assert_eq!(t.best_prior_min("a", 1), None, "nothing earlier than PR 1");
        assert_eq!(t.best_prior_min("missing", 3), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_ledger_file_names_the_file() {
        let dir = temp_ledger("malformed");
        fs::write(dir.join("BENCH_4.json"), "{not json").unwrap();
        let err = Trajectory::load_dir(&dir).unwrap_err();
        assert!(err.contains("BENCH_4.json"), "error names the file: {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_ids_first_seen_order_and_series() {
        let dir = temp_ledger("ids");
        write_point(&dir, 1, "b", vec![10, 10, 10, 10, 10]);
        write_point(&dir, 2, "a", vec![20, 20, 20, 20, 20]);
        let t = Trajectory::load_dir(&dir).unwrap();
        assert_eq!(t.bench_ids(), ["b", "a"]);
        assert_eq!(t.series("b").len(), 1);
        assert_eq!(t.series("a")[0].0, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
