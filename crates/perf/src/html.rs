//! The self-contained HTML overview report: the whole perf trajectory
//! in one file with zero external assets (no scripts, no fonts, no
//! images — a single inline stylesheet), so it can be archived as a CI
//! artifact and opened anywhere, offline, years later.
//!
//! Layout: stat tiles for the headline numbers, a delta table comparing
//! the latest point against each bench's best prior point (the same
//! comparison the gate makes, with the same verdicts), then one
//! sparkline-style trajectory table per bench — every ledger point as a
//! row with its statistics and a horizontal bar scaled to the series
//! maximum, so trends read at a glance without a plotting library.
//!
//! Colors follow the workspace's chart conventions: magnitude bars use
//! a single sequential blue; pass/fail is green/red *plus* an OK /
//! REGRESSION text badge, never color alone; all text wears text
//! tokens; dark mode is its own palette behind `prefers-color-scheme`,
//! not an automatic inversion.

use crate::gate::{GateReport, Status};
use crate::trajectory::Trajectory;
use chopin_obs::format_ns;

/// Escape a string for HTML text and attribute positions.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Bar width in percent, scaled to the series maximum.
fn bar_pct(value: u64, max: u64) -> u64 {
    if max == 0 {
        return 0;
    }
    (value.saturating_mul(100) / max).clamp(1, 100)
}

const STYLE: &str = r#"
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --bar: #2a78d6;
  --ok: #0ca30c;
  --ok-text: #006300;
  --bad: #d03b3b;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --bar: #3987e5;
    --ok: #0ca30c;
    --ok-text: #0ca30c;
    --bad: #d03b3b;
    --border: rgba(255,255,255,0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 980px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 12px 16px; min-width: 130px;
}
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
table {
  width: 100%; border-collapse: collapse; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px;
}
th, td {
  text-align: left; padding: 6px 10px; border-top: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--text-secondary); font-weight: 500; font-size: 12px; border-top: none; }
td.num, th.num { text-align: right; }
.badge {
  display: inline-block; padding: 1px 7px; border-radius: 9px;
  font-size: 11px; font-weight: 600; color: #ffffff;
}
.badge.ok { background: var(--ok); }
.badge.bad { background: var(--bad); }
.badge.new { background: var(--muted); }
.delta-ok { color: var(--ok-text); }
.delta-bad { color: var(--bad); font-weight: 600; }
.barcell { width: 32%; }
.bar {
  height: 10px; background: var(--bar); border-radius: 2px; min-width: 2px;
}
.bartrack { background: var(--grid); border-radius: 2px; }
.mono { color: var(--text-secondary); font-size: 12px; }
footer { color: var(--muted); font-size: 12px; margin-top: 28px; }
"#;

/// Render the full overview report as one self-contained HTML document.
///
/// `gate` supplies the delta-table verdicts when the caller already ran
/// the gate; without it the delta table is omitted (an empty ledger
/// still renders a valid page saying so).
pub fn render_report(trajectory: &Trajectory, gate: Option<&GateReport>) -> String {
    let mut out = String::new();
    out.push_str("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n");
    out.push_str("<title>chopin perf trajectory</title>\n<style>");
    out.push_str(STYLE);
    out.push_str("</style>\n</head>\n<body>\n<main>\n");
    out.push_str("<h1>chopin perf trajectory</h1>\n");

    match trajectory.latest() {
        None => {
            out.push_str(
                "<p class=\"sub\">The ledger is empty: no BENCH_*.json points found.</p>\n",
            );
        }
        Some(latest) => {
            out.push_str(&format!(
                "<p class=\"sub\">Hot-path bench ledger, PR {} through PR {} &middot; {} points &middot; {} benches</p>\n",
                trajectory.points.first().map(|p| p.pr).unwrap_or(0),
                latest.pr,
                trajectory.points.len(),
                trajectory.bench_ids().len(),
            ));
            render_tiles(&mut out, trajectory, gate);
            if let Some(g) = gate {
                render_delta_table(&mut out, g);
            }
            render_trajectory_tables(&mut out, trajectory);
        }
    }

    out.push_str(
        "<footer>Generated by <code>artifact perf --report</code>. \
         Bars scale to each series&#39; slowest point; min_ns is the gate statistic. \
         Legacy v0 points carry min/mean only.</footer>\n",
    );
    out.push_str("</main>\n</body>\n</html>\n");
    out
}

fn render_tiles(out: &mut String, trajectory: &Trajectory, gate: Option<&GateReport>) {
    out.push_str("<div class=\"tiles\">\n");
    let mut tile = |value: String, key: &str| {
        out.push_str(&format!(
            "<div class=\"tile\"><div class=\"v\">{value}</div><div class=\"k\">{key}</div></div>\n"
        ));
    };
    if let Some(latest) = trajectory.latest() {
        tile(format!("PR {}", latest.pr), "latest point");
        tile(latest.report.benches.len().to_string(), "benches in latest");
    }
    tile(trajectory.points.len().to_string(), "ledger points");
    if let Some(g) = gate {
        let regressions = g.regressions().len();
        if regressions == 0 {
            tile(
                "<span class=\"delta-ok\">PASS</span>".to_string(),
                "regression gate",
            );
        } else {
            tile(
                format!("<span class=\"delta-bad\">FAIL ({regressions})</span>"),
                "regression gate",
            );
        }
    }
    out.push_str("</div>\n");
}

fn render_delta_table(out: &mut String, gate: &GateReport) {
    out.push_str(&format!(
        "<h2>Latest vs best prior point (tolerance +{:.1}%)</h2>\n",
        gate.tolerance * 100.0
    ));
    out.push_str(
        "<table>\n<tr><th>bench</th><th class=\"num\">min</th>\
         <th class=\"num\">best prior</th><th class=\"num\">&Delta; min</th>\
         <th>verdict</th></tr>\n",
    );
    for v in &gate.verdicts {
        let (baseline, delta, badge) = match (v.status, v.baseline) {
            (Status::NoBaseline, _) | (_, None) => (
                "&mdash;".to_string(),
                "&mdash;".to_string(),
                "<span class=\"badge new\">NEW</span>".to_string(),
            ),
            (status, Some(b)) => {
                let pct = v.delta_pct().unwrap_or(0.0);
                let delta_class = if status == Status::Regression {
                    "delta-bad"
                } else {
                    "delta-ok"
                };
                let badge = if status == Status::Regression {
                    "<span class=\"badge bad\">REGRESSION</span>"
                } else {
                    "<span class=\"badge ok\">OK</span>"
                };
                (
                    format!(
                        "{} <span class=\"mono\">(PR {})</span>",
                        format_ns(b.min_ns),
                        b.pr
                    ),
                    format!("<span class=\"{delta_class}\">{pct:+.1}%</span>"),
                    badge.to_string(),
                )
            }
        };
        out.push_str(&format!(
            "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td>{}</td></tr>\n",
            esc(&v.id),
            format_ns(v.current_min),
            baseline,
            delta,
            badge,
        ));
    }
    out.push_str("</table>\n");
    for id in &gate.removed {
        out.push_str(&format!(
            "<p class=\"sub\">&#9888; <code>{}</code> was in the previous point but is \
             missing from PR {}.</p>\n",
            esc(id),
            gate.candidate_pr
        ));
    }
}

fn render_trajectory_tables(out: &mut String, trajectory: &Trajectory) {
    out.push_str("<h2>Per-bench trajectories</h2>\n");
    for id in trajectory.bench_ids() {
        let series = trajectory.series(&id);
        let max_min = series.iter().map(|(_, b)| b.min_ns).max().unwrap_or(0);
        out.push_str(&format!("<h2><code>{}</code></h2>\n", esc(&id)));
        out.push_str(
            "<table>\n<tr><th>PR</th><th class=\"num\">min</th><th class=\"num\">mean</th>\
             <th class=\"num\">p50</th><th class=\"num\">p99</th>\
             <th class=\"num\">samples</th><th class=\"barcell\">min (bar)</th></tr>\n",
        );
        for (pr, b) in &series {
            let opt = |v: Option<u64>| match v {
                Some(n) => format_ns(n),
                None => "&mdash;".to_string(),
            };
            out.push_str(&format!(
                "<tr><td>{pr}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"barcell\"><div class=\"bartrack\">\
                 <div class=\"bar\" style=\"width: {}%\"></div></div></td></tr>\n",
                format_ns(b.min_ns),
                format_ns(b.mean_ns),
                opt(b.p50_ns),
                opt(b.p99_ns),
                b.sample_count,
                bar_pct(b.min_ns, max_min),
            ));
        }
        out.push_str("</table>\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate;
    use crate::report::{BenchRecord, BenchReport, SCHEMA_VERSION};
    use crate::trajectory::TrajectoryPoint;

    fn ledger() -> Trajectory {
        let mk = |pr: u64, min: u64| TrajectoryPoint {
            file: format!("BENCH_{pr}.json"),
            pr,
            report: BenchReport {
                schema_version: SCHEMA_VERSION,
                pr,
                git_rev: "test".to_string(),
                benches: vec![BenchRecord::from_samples(
                    "hotloop.noop",
                    Vec::new(),
                    vec![min, min + 50, min + 100, min + 20, min + 10],
                    0,
                )],
            },
        };
        Trajectory {
            points: vec![mk(6, 9_000), mk(7, 9_100)],
        }
    }

    #[test]
    fn report_is_self_contained_and_covers_the_trajectory() {
        let t = ledger();
        let g = gate::check(&t, &t.latest().unwrap().report.clone(), 0.10).unwrap();
        let html = render_report(&t, Some(&g));
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("hotloop.noop"));
        assert!(html.contains("PR 7"));
        assert!(
            html.contains("prefers-color-scheme: dark"),
            "dark palette is selected"
        );
        assert!(
            html.contains(">OK<"),
            "verdicts carry text, not color alone"
        );
        for external in ["<script", "http://", "https://", "url(", "@import"] {
            assert!(
                !html.contains(external),
                "external asset reference: {external}"
            );
        }
    }

    #[test]
    fn regression_renders_a_text_badge() {
        let t = ledger();
        let mut bad = t.latest().unwrap().report.clone();
        bad.benches[0] = BenchRecord::from_samples(
            "hotloop.noop",
            Vec::new(),
            vec![20_000, 20_100, 20_200, 20_300, 20_400],
            0,
        );
        let g = gate::check(&t, &bad, 0.10).unwrap();
        let html = render_report(&t, Some(&g));
        assert!(html.contains("REGRESSION"));
        assert!(html.contains("FAIL"));
    }

    #[test]
    fn empty_ledger_still_renders() {
        let html = render_report(&Trajectory::default(), None);
        assert!(html.contains("ledger is empty"));
    }

    #[test]
    fn escaping_and_bars_are_sane() {
        assert_eq!(esc("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        assert_eq!(bar_pct(50, 100), 50);
        assert_eq!(bar_pct(1, 1_000_000), 1, "tiny values stay visible");
        assert_eq!(bar_pct(0, 0), 0);
        assert_eq!(bar_pct(100, 100), 100);
    }
}
