//! Ledger-integrity rules R1101–R1103, implemented against the shared
//! `chopin-lint` catalogue (one registry, one severity model — the same
//! arrangement the analyzer's R8xx/R9xx and srclint's R10xx families
//! use).
//!
//! * **R1101** — every point declares the current schema version.
//!   Legacy v0 points are migrated, not accumulated: the fallback parser
//!   exists so history is never stranded mid-upgrade, not as a second
//!   long-term format.
//! * **R1102** — every bench records at least [`MIN_SAMPLES`] samples,
//!   and a non-empty `samples_ns` array agrees with its declared
//!   `sample_count`. Single-digit sample counts are where the EMSE
//!   steady-state results show summary statistics turn into noise.
//! * **R1103** — file names and documents agree (`BENCH_<PR>.json`
//!   declares `pr = <PR>`) and the ledger's PR sequence is strictly
//!   ascending, so the trajectory's x-axis can never double back.

use crate::report::{MIN_SAMPLES, SCHEMA_VERSION};
use crate::trajectory::Trajectory;
use chopin_lint::Diagnostic;

/// Run every ledger rule over a loaded trajectory.
pub fn lint_ledger(trajectory: &Trajectory) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    r1101_schema_current(trajectory, &mut out);
    r1102_sample_floor(trajectory, &mut out);
    r1103_sequencing(trajectory, &mut out);
    out
}

/// R1101: schema version is current on every point.
fn r1101_schema_current(trajectory: &Trajectory, out: &mut Vec<Diagnostic>) {
    for point in &trajectory.points {
        if point.report.schema_version != SCHEMA_VERSION {
            out.push(
                Diagnostic::error(
                    "R1101",
                    point.file.clone(),
                    format!(
                        "schema_version {} is not the current version {SCHEMA_VERSION}",
                        point.report.schema_version
                    ),
                )
                .with_hint("migrate the point: re-serialize it through BenchReport::to_json"),
            );
        }
    }
}

/// R1102: sample floor and sample-array consistency.
fn r1102_sample_floor(trajectory: &Trajectory, out: &mut Vec<Diagnostic>) {
    for point in &trajectory.points {
        for bench in &point.report.benches {
            if bench.sample_count < MIN_SAMPLES {
                out.push(
                    Diagnostic::error(
                        "R1102",
                        point.file.clone(),
                        format!(
                            "bench `{}` declares {} samples; the floor is {MIN_SAMPLES}",
                            bench.id, bench.sample_count
                        ),
                    )
                    .with_hint("run the suite with more samples; small sets make min/p99 noise"),
                );
            }
            if !bench.samples_ns.is_empty() && bench.samples_ns.len() as u64 != bench.sample_count {
                out.push(
                    Diagnostic::error(
                        "R1102",
                        point.file.clone(),
                        format!(
                            "bench `{}` declares sample_count {} but samples_ns holds {}",
                            bench.id,
                            bench.sample_count,
                            bench.samples_ns.len()
                        ),
                    )
                    .with_hint(
                        "sample_count must equal the samples_ns length when samples are recorded",
                    ),
                );
            }
        }
    }
}

/// R1103: file-name/document PR agreement and strictly ascending PRs.
fn r1103_sequencing(trajectory: &Trajectory, out: &mut Vec<Diagnostic>) {
    for point in &trajectory.points {
        if point.report.pr != point.pr {
            out.push(
                Diagnostic::error(
                    "R1103",
                    point.file.clone(),
                    format!(
                        "file name says PR {} but the document declares pr {}",
                        point.pr, point.report.pr
                    ),
                )
                .with_hint("rename the file or fix the document; the trajectory joins on both"),
            );
        }
    }
    for pair in trajectory.points.windows(2) {
        if pair[1].report.pr <= pair[0].report.pr {
            out.push(
                Diagnostic::error(
                    "R1103",
                    pair[1].file.clone(),
                    format!(
                        "declared pr {} does not ascend past {} ({})",
                        pair[1].report.pr, pair[0].report.pr, pair[0].file
                    ),
                )
                .with_hint("ledger PRs must be strictly ascending"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchRecord, BenchReport};
    use crate::trajectory::TrajectoryPoint;

    fn point(pr: u64, doc_pr: u64, schema: u64, benches: Vec<BenchRecord>) -> TrajectoryPoint {
        TrajectoryPoint {
            file: format!("BENCH_{pr}.json"),
            pr,
            report: BenchReport {
                schema_version: schema,
                pr: doc_pr,
                git_rev: "test".to_string(),
                benches,
            },
        }
    }

    fn bench(id: &str, samples: usize) -> BenchRecord {
        BenchRecord::from_samples(id, Vec::new(), vec![100; samples], 0)
    }

    #[test]
    fn clean_ledger_has_no_findings() {
        let t = Trajectory {
            points: vec![
                point(6, 6, SCHEMA_VERSION, vec![bench("a", 5)]),
                point(7, 7, SCHEMA_VERSION, vec![bench("a", 7)]),
            ],
        };
        assert!(lint_ledger(&t).is_empty());
    }

    #[test]
    fn stale_schema_version_is_r1101() {
        let t = Trajectory {
            points: vec![point(6, 6, 0, vec![bench("a", 5)])],
        };
        let findings = lint_ledger(&t);
        assert!(findings.iter().any(|d| d.rule == "R1101"), "{findings:?}");
    }

    #[test]
    fn too_few_samples_is_r1102() {
        let t = Trajectory {
            points: vec![point(6, 6, SCHEMA_VERSION, vec![bench("a", 3)])],
        };
        let findings = lint_ledger(&t);
        assert!(findings.iter().any(|d| d.rule == "R1102"), "{findings:?}");
    }

    #[test]
    fn sample_count_mismatch_is_r1102() {
        let mut b = bench("a", 7);
        b.sample_count = 9;
        let t = Trajectory {
            points: vec![point(6, 6, SCHEMA_VERSION, vec![b])],
        };
        let findings = lint_ledger(&t);
        assert!(findings.iter().any(|d| d.rule == "R1102"), "{findings:?}");
    }

    #[test]
    fn migrated_point_without_sample_arrays_is_legal() {
        let mut b = bench("a", 0);
        b.sample_count = 5;
        b.min_ns = 9033;
        b.mean_ns = 10448;
        let t = Trajectory {
            points: vec![point(6, 6, SCHEMA_VERSION, vec![b])],
        };
        assert!(
            lint_ledger(&t).is_empty(),
            "empty samples_ns is the migrated shape"
        );
    }

    #[test]
    fn filename_disagreement_and_regressing_prs_are_r1103() {
        let t = Trajectory {
            points: vec![
                point(6, 9, SCHEMA_VERSION, vec![bench("a", 5)]),
                point(7, 7, SCHEMA_VERSION, vec![bench("a", 5)]),
            ],
        };
        let findings = lint_ledger(&t);
        let r1103: Vec<_> = findings.iter().filter(|d| d.rule == "R1103").collect();
        assert_eq!(
            r1103.len(),
            2,
            "disagreement on BENCH_6 + non-ascending pair: {findings:?}"
        );
    }

    #[test]
    fn catalogue_registers_every_ledger_rule() {
        for id in ["R1101", "R1102", "R1103"] {
            let def = chopin_lint::rule(id).unwrap_or_else(|| panic!("{id} uncatalogued"));
            assert_eq!(def.severity, chopin_lint::Severity::Error);
        }
    }
}
