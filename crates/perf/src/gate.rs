//! The regression gate: compares a candidate report against the ledger
//! and decides whether the PR may land.
//!
//! The baseline for each bench is the **best prior point** — the
//! fastest `min_ns` any earlier PR recorded — not merely the previous
//! point. Comparing against the previous point lets a sequence of
//! just-under-tolerance regressions compound silently ("slow creep");
//! comparing against the best prior point bounds total drift at the
//! tolerance. `min_ns` is the comparison statistic because the minimum
//! of a self-timed sample set is the least noise-contaminated estimate
//! of the code path's cost.
//!
//! A bench present in the most recent prior point but missing from the
//! candidate is a **warning**, not a failure: bench retirement must be
//! visible in the gate output, but it is a review decision, not a
//! mechanical one.

use crate::report::BenchReport;
use crate::trajectory::Trajectory;
use chopin_obs::format_ns;

/// Default allowed slowdown of a bench's `min_ns` versus its best prior
/// point: 10%.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// The gate's per-bench outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance of the best prior point.
    Ok,
    /// Slower than the best prior point by more than the tolerance.
    Regression,
    /// No earlier point records this bench.
    NoBaseline,
}

/// The prior point a bench was compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Baseline {
    /// PR that set the best prior minimum.
    pub pr: u64,
    /// That PR's `min_ns` for the bench.
    pub min_ns: u64,
}

/// One bench's gate verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchVerdict {
    /// Bench id.
    pub id: String,
    /// The candidate's `min_ns`.
    pub current_min: u64,
    /// Best prior point, when one exists.
    pub baseline: Option<Baseline>,
    /// The verdict.
    pub status: Status,
}

impl BenchVerdict {
    /// Slowdown versus baseline as a percentage (positive = slower),
    /// when a baseline exists.
    pub fn delta_pct(&self) -> Option<f64> {
        self.baseline
            .filter(|b| b.min_ns > 0)
            .map(|b| (self.current_min as f64 / b.min_ns as f64 - 1.0) * 100.0)
    }
}

/// The gate's complete output for one candidate report.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// PR number of the candidate.
    pub candidate_pr: u64,
    /// Tolerance the verdicts were computed with.
    pub tolerance: f64,
    /// Per-bench verdicts, in the candidate's bench order.
    pub verdicts: Vec<BenchVerdict>,
    /// Bench ids present in the most recent prior point but absent from
    /// the candidate (warned, never failed).
    pub removed: Vec<String>,
}

impl GateReport {
    /// The verdicts that regressed.
    pub fn regressions(&self) -> Vec<&BenchVerdict> {
        self.verdicts
            .iter()
            .filter(|v| v.status == Status::Regression)
            .collect()
    }

    /// Whether the gate passes (no regressions; removals only warn).
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Human-readable summary lines, one per verdict plus removal
    /// warnings and a final PASS/FAIL line naming every offending bench.
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        lines.push(format!(
            "perf gate: PR {} vs best prior point per bench (tolerance +{:.1}%)",
            self.candidate_pr,
            self.tolerance * 100.0
        ));
        for v in &self.verdicts {
            let line = match (v.status, v.baseline) {
                (Status::NoBaseline, _) | (_, None) => format!(
                    "  NEW        {:<28} min {:>9}  (no prior baseline)",
                    v.id,
                    format_ns(v.current_min)
                ),
                (status, Some(b)) => format!(
                    "  {:<10} {:<28} min {:>9}  vs PR {} {:>9}  ({:+.1}%)",
                    if status == Status::Regression {
                        "REGRESSION"
                    } else {
                        "OK"
                    },
                    v.id,
                    format_ns(v.current_min),
                    b.pr,
                    format_ns(b.min_ns),
                    v.delta_pct().unwrap_or(0.0)
                ),
            };
            lines.push(line);
        }
        for id in &self.removed {
            lines.push(format!(
                "  WARNING    {id:<28} present in the previous point, missing from PR {}",
                self.candidate_pr
            ));
        }
        if self.passed() {
            lines.push(format!("perf gate PASS: {} benches", self.verdicts.len()));
        } else {
            let names: Vec<&str> = self.regressions().iter().map(|v| v.id.as_str()).collect();
            lines.push(format!(
                "perf gate FAIL: regression in {}",
                names.join(", ")
            ));
        }
        lines
    }
}

/// Run the gate: every candidate bench versus its best prior point.
///
/// # Errors
///
/// Rejects a non-finite or negative tolerance.
pub fn check(
    trajectory: &Trajectory,
    current: &BenchReport,
    tolerance: f64,
) -> Result<GateReport, String> {
    if !tolerance.is_finite() || tolerance < 0.0 {
        return Err(format!(
            "tolerance must be a non-negative number, got {tolerance:?}"
        ));
    }
    let mut verdicts = Vec::new();
    for bench in &current.benches {
        let baseline = trajectory
            .best_prior_min(&bench.id, current.pr)
            .map(|(pr, min_ns)| Baseline { pr, min_ns });
        let status = match baseline {
            None => Status::NoBaseline,
            Some(b) => {
                // Multiplicative form: a baseline of 1000 ns with 10%
                // tolerance admits exactly 1100 ns and fails 1101 ns.
                if bench.min_ns as f64 > b.min_ns as f64 * (1.0 + tolerance) {
                    Status::Regression
                } else {
                    Status::Ok
                }
            }
        };
        verdicts.push(BenchVerdict {
            id: bench.id.clone(),
            current_min: bench.min_ns,
            baseline,
            status,
        });
    }
    let removed = trajectory
        .points
        .iter()
        .rev()
        .find(|p| p.pr < current.pr)
        .map(|prev| {
            prev.report
                .benches
                .iter()
                .filter(|b| current.bench(&b.id).is_none())
                .map(|b| b.id.clone())
                .collect()
        })
        .unwrap_or_default();
    Ok(GateReport {
        candidate_pr: current.pr,
        tolerance,
        verdicts,
        removed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchRecord, SCHEMA_VERSION};
    use crate::trajectory::TrajectoryPoint;

    fn record(id: &str, min_ns: u64) -> BenchRecord {
        BenchRecord::from_samples(id, Vec::new(), vec![min_ns, min_ns + 10], 0)
    }

    fn report(pr: u64, benches: Vec<BenchRecord>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            pr,
            git_rev: "test".to_string(),
            benches,
        }
    }

    fn ledger(reports: Vec<BenchReport>) -> Trajectory {
        Trajectory {
            points: reports
                .into_iter()
                .map(|r| TrajectoryPoint {
                    file: format!("BENCH_{}.json", r.pr),
                    pr: r.pr,
                    report: r,
                })
                .collect(),
        }
    }

    #[test]
    fn exactly_ten_percent_passes_and_one_ns_more_fails() {
        let t = ledger(vec![report(6, vec![record("a", 1_000)])]);
        let at = check(&t, &report(7, vec![record("a", 1_100)]), 0.10).unwrap();
        assert_eq!(
            at.verdicts[0].status,
            Status::Ok,
            "exactly +10% is in tolerance"
        );
        assert!(at.passed());
        let over = check(&t, &report(7, vec![record("a", 1_101)]), 0.10).unwrap();
        assert_eq!(over.verdicts[0].status, Status::Regression);
        assert!(!over.passed());
    }

    #[test]
    fn baseline_is_the_best_prior_point_not_the_previous_one() {
        let t = ledger(vec![
            report(5, vec![record("a", 1_000)]),
            report(6, vec![record("a", 1_090)]),
        ]);
        // +10% of the previous point (1090) but +19.9% of the best (1000).
        let g = check(&t, &report(7, vec![record("a", 1_199)]), 0.10).unwrap();
        assert_eq!(g.verdicts[0].status, Status::Regression);
        assert_eq!(
            g.verdicts[0].baseline,
            Some(Baseline {
                pr: 5,
                min_ns: 1_000
            })
        );
    }

    #[test]
    fn missing_baseline_is_not_a_failure() {
        let t = ledger(vec![report(6, vec![record("a", 1_000)])]);
        let g = check(
            &t,
            &report(7, vec![record("a", 1_000), record("brand.new", 50)]),
            0.10,
        )
        .unwrap();
        assert_eq!(g.verdicts[1].status, Status::NoBaseline);
        assert!(g.passed());
    }

    #[test]
    fn removed_bench_warns_but_does_not_fail() {
        let t = ledger(vec![report(6, vec![record("a", 1_000), record("b", 500)])]);
        let g = check(&t, &report(7, vec![record("a", 1_000)]), 0.10).unwrap();
        assert_eq!(g.removed, vec!["b".to_string()]);
        assert!(g.passed());
        let lines = g.render_lines().join("\n");
        assert!(lines.contains("WARNING"), "{lines}");
        assert!(lines.contains('b'), "{lines}");
    }

    #[test]
    fn fail_line_names_every_offending_bench() {
        let t = ledger(vec![report(6, vec![record("a", 1_000), record("b", 500)])]);
        let g = check(
            &t,
            &report(7, vec![record("a", 2_000), record("b", 900)]),
            0.10,
        )
        .unwrap();
        let last = g.render_lines().pop().unwrap();
        assert!(
            last.contains("FAIL") && last.contains('a') && last.contains('b'),
            "{last}"
        );
    }

    #[test]
    fn bad_tolerance_is_rejected() {
        let t = ledger(Vec::new());
        assert!(check(&t, &report(7, Vec::new()), -0.1).is_err());
        assert!(check(&t, &report(7, Vec::new()), f64::NAN).is_err());
    }

    #[test]
    fn faster_is_always_ok() {
        let t = ledger(vec![report(6, vec![record("a", 1_000)])]);
        let g = check(&t, &report(7, vec![record("a", 400)]), 0.0).unwrap();
        assert_eq!(g.verdicts[0].status, Status::Ok);
        assert!(g.verdicts[0].delta_pct().unwrap() < -50.0);
    }
}
