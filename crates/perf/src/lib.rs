//! Performance-trajectory observability for the chopin reproduction:
//! the crate behind `artifact perf`.
//!
//! The source paper's central complaint is that Java performance work
//! routinely draws conclusions from unsound measurement — single
//! numbers, uncontrolled noise, no history. This workspace simulates
//! rather than measures JVMs, but the same discipline applies to the
//! simulator's *own* speed: the ROADMAP's raw-speed campaign needs a
//! measurement substrate before any optimisation can be trusted. This
//! crate is that substrate, in four layers:
//!
//! * [`suite`] — the hot-path bench suite: self-timed benches over
//!   event dispatch, allocation accounting, the collector phase models,
//!   batch fast-forward, and (via the harness) supervisor journal
//!   write/replay. Timing flows through
//!   `chopin_sandbox::clock::WallSpan` and every sample lands in a
//!   `chopin_obs::MetricsRegistry` histogram, so the benches exercise
//!   the production observability plumbing instead of sidestepping it.
//! * [`report`] — the versioned [`report::BenchReport`] schema
//!   (`BENCH_<PR>.json`): raw per-sample arrays plus derived
//!   min/mean/p50/p99, with a fallback parser for the legacy v0 point.
//! * [`trajectory`] — the ledger loader: every `BENCH_*.json` in the
//!   repo root as one ordered [`trajectory::Trajectory`], plus
//!   [`rules`] (R1101–R1103 in the shared `chopin-lint` catalogue)
//!   keeping the ledger schema-current, statistically meaningful and
//!   correctly sequenced.
//! * [`gate`] and [`html`] — the consumers: a regression gate comparing
//!   each bench's `min_ns` against its *best* prior point (CI fails the
//!   PR past 10%), and a self-contained single-file HTML overview of
//!   the whole trajectory.
//!
//! # Examples
//!
//! ```
//! use chopin_perf::report::{BenchRecord, BenchReport, SCHEMA_VERSION};
//!
//! let report = BenchReport {
//!     schema_version: SCHEMA_VERSION,
//!     pr: 7,
//!     git_rev: "abc1234".to_string(),
//!     benches: vec![BenchRecord::from_samples(
//!         "alloc.accounting",
//!         vec![("allocations".to_string(), "50000".to_string())],
//!         vec![900, 1000, 1100, 1050, 950],
//!         50_000,
//!     )],
//! };
//! let parsed = BenchReport::parse(&report.to_json()).unwrap();
//! assert_eq!(parsed, report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod gate;
pub mod html;
pub mod report;
pub mod rules;
pub mod suite;
pub mod trajectory;

pub use gate::{check, GateReport, Status, DEFAULT_TOLERANCE};
pub use html::render_report;
pub use report::{BenchRecord, BenchReport, SCHEMA_VERSION};
pub use rules::lint_ledger;
pub use suite::{default_benches, run_bench, HotPathBench, DEFAULT_SAMPLES};
pub use trajectory::{pr_from_filename, Trajectory, TrajectoryPoint};
