//! The BENCH_6 migration contract: the repo-root `BENCH_6.json` was
//! migrated from the v0 shape PR 6 committed to schema v1, and the
//! migration must have preserved history exactly — same benches, same
//! statistics, same configuration — while the v0 fallback parser keeps
//! understanding the original bytes.

use chopin_perf::report::{BenchReport, SCHEMA_VERSION};
use chopin_perf::trajectory::Trajectory;
use std::path::Path;

/// The original v0 document, byte-for-byte as PR 6 wrote it.
const V0_BYTES: &str = include_str!("fixtures/bench_6_v0.json");

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn committed_bench_6() -> (String, BenchReport) {
    let text = std::fs::read_to_string(repo_root().join("BENCH_6.json"))
        .expect("BENCH_6.json exists at the repo root");
    let report = BenchReport::parse(&text).expect("BENCH_6.json parses");
    (text, report)
}

#[test]
fn bench_6_is_schema_v1_with_canonical_bytes() {
    let (text, report) = committed_bench_6();
    assert_eq!(report.schema_version, SCHEMA_VERSION);
    assert_eq!(report.pr, 6);
    assert_eq!(
        report.git_rev, "06d90b6",
        "the commit that produced the point"
    );
    assert_eq!(
        report.to_json(),
        text,
        "BENCH_6.json must stay in the canonical serializer shape"
    );
}

#[test]
fn migration_preserved_the_v0_history_exactly() {
    let v0 = BenchReport::parse(V0_BYTES).expect("the original bytes still parse");
    assert_eq!(
        v0.schema_version, 0,
        "fixture exercises the fallback parser"
    );
    let (_, v1) = committed_bench_6();
    assert_eq!(v1.benches.len(), v0.benches.len());
    for (migrated, original) in v1.benches.iter().zip(&v0.benches) {
        assert_eq!(migrated.id, original.id);
        assert_eq!(migrated.config, original.config);
        assert_eq!(migrated.sample_count, original.sample_count);
        assert_eq!(migrated.min_ns, original.min_ns);
        assert_eq!(migrated.mean_ns, original.mean_ns);
        assert_eq!(migrated.work, original.work);
        assert!(
            migrated.samples_ns.is_empty() && migrated.p50_ns.is_none(),
            "v0 never recorded per-sample data; migration must not invent it"
        );
    }
}

#[test]
fn repo_ledger_loads_and_lints_clean() {
    let trajectory = Trajectory::load_dir(repo_root()).expect("ledger loads");
    assert!(
        trajectory.points.iter().any(|p| p.pr == 6),
        "the migrated BENCH_6.json is a trajectory point"
    );
    let findings = chopin_perf::lint_ledger(&trajectory);
    assert!(findings.is_empty(), "R1101-R1103 clean: {findings:?}");
}
