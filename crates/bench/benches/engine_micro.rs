//! Microbenchmarks of the simulation engine itself: per-collector run cost
//! on a mid-weight workload, minimum-heap search, and the progress-trace
//! request inversion.

use chopin_core::minheap::MinHeapSearch;
use chopin_core::BenchmarkRunner;
use chopin_runtime::collector::CollectorKind;
use chopin_workloads::suite;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let jython = suite::by_name("jython").expect("in suite");
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    for collector in CollectorKind::ALL {
        group.bench_function(format!("jython_{collector}_2x"), |b| {
            b.iter(|| {
                BenchmarkRunner::for_profile(jython.clone())
                    .collector(collector)
                    .heap_factor(2.0)
                    .iterations(1)
                    .run()
                    .expect("completes")
            })
        });
    }
    let fop = suite::by_name("fop").expect("in suite");
    group.sample_size(10);
    group.bench_function("minheap_search_fop", |b| {
        b.iter(|| MinHeapSearch::default().find(&fop).expect("found"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
