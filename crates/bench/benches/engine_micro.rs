//! Microbenchmarks of the simulation engine itself: per-collector run cost
//! on a mid-weight workload, minimum-heap search, the progress-trace
//! request inversion, and the observer overhead comparison (a no-op
//! observer must cost nothing; a recording observer, one ring push per
//! event).

use chopin_core::minheap::MinHeapSearch;
use chopin_core::BenchmarkRunner;
use chopin_obs::{EventRecorder, NoopObserver};
use chopin_runtime::collector::CollectorKind;
use chopin_runtime::config::RunConfig;
use chopin_runtime::engine::run_with_observer;
use chopin_workloads::{suite, SizeClass};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let jython = suite::by_name("jython").expect("in suite");
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    for collector in CollectorKind::ALL {
        group.bench_function(format!("jython_{collector}_2x"), |b| {
            b.iter(|| {
                BenchmarkRunner::for_profile(jython.clone())
                    .collector(collector)
                    .heap_factor(2.0)
                    .iterations(1)
                    .run()
                    .expect("completes")
            })
        });
    }
    let fop = suite::by_name("fop").expect("in suite");
    group.sample_size(10);
    group.bench_function("minheap_search_fop", |b| {
        b.iter(|| MinHeapSearch::default().find(&fop).expect("found"))
    });

    // Observer overhead: the no-op path must match the plain engine (it
    // monomorphises to the same code), and the recording path shows the
    // true cost of a full flight recording.
    let spec = fop
        .to_spec(SizeClass::Default)
        .expect("default size exists")
        .expect("spec is valid");
    let heap = fop.min_heap_bytes(SizeClass::Default).expect("published") * 2;
    let config = RunConfig::new(heap, CollectorKind::G1).with_noise(0.0);
    group.sample_size(20);
    group.bench_function("fop_g1_2x_noop_observer", |b| {
        b.iter(|| run_with_observer(&spec, &config, &mut NoopObserver).expect("completes"))
    });
    group.bench_function("fop_g1_2x_recording_observer", |b| {
        b.iter(|| {
            let mut recorder = EventRecorder::new();
            run_with_observer(&spec, &config, &mut recorder).expect("completes")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
