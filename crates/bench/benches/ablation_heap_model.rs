//! Ablation benches for the design choices DESIGN.md calls out: what the
//! collector cost models contribute to the reproduced shapes. Each
//! ablation perturbs one parameter of a collector model and reports the
//! effect on a representative run, demonstrating that the headline shapes
//! are driven by the modelled mechanisms rather than incidental constants.

use chopin_core::BenchmarkRunner;
use chopin_runtime::collector::cycle::{plan_cycle, CollectionRequest, CycleInput};
use chopin_runtime::collector::CollectorKind;
use chopin_workloads::suite;
use criterion::{criterion_group, criterion_main, Criterion};

/// Print the ablation table: zeroing a single mechanism and observing the
/// cycle-plan cost delta.
fn print_ablation() {
    let input = CycleInput {
        live_bytes: 128e6,
        allocated_since_gc: 64e6,
        survival_fraction: 0.06,
        mean_object_size: 64.0,
        hardware_threads: 32,
        machine_speed: 1.0,
    };
    println!("\n# Ablation: per-cycle CPU cost (ms) with mechanisms removed");
    println!("collector,baseline,no_work_multiplier,no_object_cost,half_evac");
    for kind in CollectorKind::ALL {
        let base = kind.model();
        let baseline = plan_cycle(&base, &input, CollectionRequest::Normal).total_work_cpu_ns();

        let mut no_mult = base.clone();
        no_mult.work_multiplier = 1.0;
        let no_mult_cost =
            plan_cycle(&no_mult, &input, CollectionRequest::Normal).total_work_cpu_ns();

        let big_obj = CycleInput {
            mean_object_size: 4096.0,
            ..input
        };
        let no_obj_cost =
            plan_cycle(&base, &big_obj, CollectionRequest::Normal).total_work_cpu_ns();

        let mut half_evac = base.clone();
        half_evac.evac_share /= 2.0;
        let half_evac_cost =
            plan_cycle(&half_evac, &input, CollectionRequest::Normal).total_work_cpu_ns();

        println!(
            "{kind},{:.3},{:.3},{:.3},{:.3}",
            baseline / 1e6,
            no_mult_cost / 1e6,
            no_obj_cost / 1e6,
            half_evac_cost / 1e6
        );
    }
}

fn bench(c: &mut Criterion) {
    print_ablation();
    // End-to-end ablation: how much of lusearch/Shenandoah's wall-time
    // collapse is the pacer? Compare against Parallel (no pacer) on the
    // same workload.
    let lusearch = suite::by_name("lusearch").expect("in suite");
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for collector in [CollectorKind::Shenandoah, CollectorKind::Parallel] {
        group.bench_function(format!("lusearch_{collector}_2x"), |b| {
            b.iter(|| {
                BenchmarkRunner::for_profile(lusearch.clone())
                    .collector(collector)
                    .heap_factor(2.0)
                    .iterations(1)
                    .run()
                    .expect("completes")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
