//! Benchmarks the nominal-statistics re-measurement pipeline (§5.1's
//! bundled instrumentation) and prints a sample of the measured-vs-published
//! comparison.

use chopin_core::characterize::{characterize, CharacterizeConfig};
use chopin_core::nominal::row;
use chopin_workloads::suite;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_sample() {
    let config = CharacterizeConfig::default();
    println!("\n# Characterisation sample (measured / published)");
    println!("benchmark,GCC_m,GCC_p,GSS_m,GSS_p,PFS_m,PFS_p");
    for name in ["fop", "lusearch", "h2", "jme"] {
        let stats =
            characterize(&suite::by_name(name).expect("in suite"), &config).expect("measures");
        let p = row(name).expect("in dataset");
        println!(
            "{name},{},{},{:.0},{},{:.1},{}",
            stats.gc_count_2x,
            p.value("GCC").unwrap_or(f64::NAN),
            stats.heap_sensitivity_pct,
            p.value("GSS").unwrap_or(f64::NAN),
            stats.freq_speedup_pct,
            p.value("PFS").unwrap_or(f64::NAN),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_sample();
    let fop = suite::by_name("fop").expect("in suite");
    let config = CharacterizeConfig::default();
    let mut group = c.benchmark_group("characterize");
    group.sample_size(10);
    group.bench_function("characterize_fop", |b| {
        b.iter(|| characterize(&fop, &config).expect("measures"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
