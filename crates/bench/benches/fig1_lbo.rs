//! Regenerates Figure 1: geometric-mean lower-bound overheads (wall and
//! task clock) over all 22 benchmarks, 5 collectors, 1–6 × minheap — and
//! benchmarks the sweep machinery.
//!
//! The printed series are the reproduction's counterpart of the paper's
//! plotted curves; EXPERIMENTS.md records the comparison.

use chopin_core::lbo::Clock;
use chopin_core::sweep::SweepConfig;
use chopin_harness::LboExperiment;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure1() {
    let sweep = SweepConfig {
        invocations: 2,
        iterations: 2,
        ..SweepConfig::default()
    };
    let experiment = LboExperiment::run(&[], &sweep).expect("suite sweep");
    for clock in [Clock::Wall, Clock::Task] {
        println!(
            "\n# Figure 1({}) — geomean LBO {clock} overhead",
            if clock == Clock::Wall { 'a' } else { 'b' }
        );
        println!("collector,heap_factor,overhead");
        for (collector, series) in experiment.geomean(clock).expect("geomean") {
            for (x, y) in series {
                println!("{collector},{x},{y:.4}");
            }
        }
    }
}

fn bench(c: &mut Criterion) {
    print_figure1();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("suite_quick_sweep_geomean", |b| {
        b.iter(|| {
            let experiment = LboExperiment::run(&[], &SweepConfig::quick()).expect("suite sweep");
            experiment.geomean(Clock::Task).expect("geomean")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
