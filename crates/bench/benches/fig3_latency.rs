//! Regenerates Figure 3: cassandra request-latency distributions (simple,
//! metered 100 ms, metered full) at 2× and 6× heap for all five
//! collectors — and benchmarks the metered-latency computation.

use chopin_core::latency::{metered_latencies, SmoothingWindow};
use chopin_harness::LatencyExperiment;
use chopin_runtime::progress::ProgressTrace;
use chopin_runtime::requests::extract_events;
use chopin_runtime::spec::RequestProfile;
use chopin_runtime::time::{SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure3() {
    let experiment = LatencyExperiment::run("cassandra", &[2.0, 6.0]).expect("cassandra runs");
    println!("\n# Figure 3 — cassandra latency percentiles");
    println!("{}", experiment.render_report());
}

fn bench(c: &mut Criterion) {
    print_figure3();

    // A deterministic 100k-event stream for the kernel benchmark.
    let mut trace = ProgressTrace::new();
    trace.push(SimTime::ZERO, SimTime::from_nanos(5_000_000_000), 1.0);
    let events = extract_events(
        &trace,
        &RequestProfile {
            count: 100_000,
            workers: 32,
            dispersion: 0.8,
        },
        42,
    );

    let mut group = c.benchmark_group("fig3");
    group.sample_size(20);
    group.bench_function("metered_latency_100ms_100k_events", |b| {
        b.iter(|| {
            metered_latencies(
                &events,
                SmoothingWindow::Duration(SimDuration::from_millis(100)),
            )
        })
    });
    group.bench_function("metered_latency_full_100k_events", |b| {
        b.iter(|| metered_latencies(&events, SmoothingWindow::Full))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
