//! Regenerates Figure 6: h2 request-latency distributions (simple and
//! metered, 2× = 1.36 GB and 6× = 4 GB heaps) for all five collectors —
//! and benchmarks an h2 run plus event extraction.

use chopin_core::latency::events_of;
use chopin_core::Suite;
use chopin_harness::LatencyExperiment;
use chopin_workloads::SizeClass;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure6() {
    let experiment = LatencyExperiment::run("h2", &[2.0, 6.0]).expect("h2 runs");
    println!("\n# Figure 6 — h2 latency percentiles");
    println!("{}", experiment.render_report());
}

fn bench(c: &mut Criterion) {
    print_figure6();
    let suite = Suite::chopin();
    let bench = suite.benchmark("h2").expect("in suite");
    let spec = bench
        .profile()
        .to_spec(SizeClass::Default)
        .expect("default size")
        .expect("valid");

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("h2_g1_2x_run_and_events", |b| {
        b.iter(|| {
            let runs = bench
                .runner()
                .heap_factor(2.0)
                .iterations(1)
                .run()
                .expect("completes");
            events_of(runs.timed(), spec.requests()).expect("latency-sensitive")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
