//! Regenerates Figure 5: per-benchmark LBO for cassandra and lusearch —
//! the wall/task divergence and the Shenandoah pacing case studies — and
//! benchmarks the underlying runs.

use chopin_core::lbo::Clock;
use chopin_core::sweep::SweepConfig;
use chopin_core::{BenchmarkRunner, Suite};
use chopin_harness::LboExperiment;
use chopin_runtime::collector::CollectorKind;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure5() {
    let sweep = SweepConfig {
        invocations: 2,
        iterations: 2,
        ..SweepConfig::default()
    };
    let experiment =
        LboExperiment::run(&["cassandra".into(), "lusearch".into()], &sweep).expect("runs");
    for i in 0..2 {
        println!("\n# Figure 5 — {}", experiment.sweeps[i].benchmark);
        for (clock, analyses) in [
            (Clock::Wall, &experiment.wall),
            (Clock::Task, &experiment.task),
        ] {
            println!("clock={clock}: collector,heap_factor,overhead");
            for (collector, points) in analyses[i].curves() {
                for p in points {
                    println!("{collector},{},{:.4}", p.heap_factor, p.overhead.mean());
                }
            }
        }
    }
}

fn bench(c: &mut Criterion) {
    print_figure5();
    let suite = Suite::chopin();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for (bench_name, collector) in [
        ("cassandra", CollectorKind::Zgc),
        ("lusearch", CollectorKind::Shenandoah),
    ] {
        let profile = suite
            .benchmark(bench_name)
            .expect("in suite")
            .profile()
            .clone();
        group.bench_function(format!("{bench_name}_{collector}_2x"), |b| {
            b.iter(|| {
                BenchmarkRunner::for_profile(profile.clone())
                    .collector(collector)
                    .heap_factor(2.0)
                    .iterations(1)
                    .run()
                    .expect("completes")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
