//! Regenerates Figure 4: the PCA of the 22 workloads over the complete
//! nominal metrics — and benchmarks the PCA fit itself.

use chopin_analysis::Pca;
use chopin_core::nominal::{complete_matrix, suite_pca};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_figure4() {
    let (benchmarks, metrics, pca) = suite_pca().expect("pca fits");
    let r = pca.explained_variance_ratio();
    println!("\n# Figure 4 — PCA over {} metrics", metrics.len());
    println!(
        "variance explained: PC1 {:.1}% PC2 {:.1}% PC3 {:.1}% PC4 {:.1}% (cumulative {:.1}%)",
        r[0] * 100.0,
        r[1] * 100.0,
        r[2] * 100.0,
        r[3] * 100.0,
        pca.cumulative_explained_variance(4) * 100.0
    );
    println!("benchmark,pc1,pc2,pc3,pc4");
    for (i, b) in benchmarks.iter().enumerate() {
        let s = &pca.scores()[i];
        println!("{b},{:.3},{:.3},{:.3},{:.3}", s[0], s[1], s[2], s[3]);
    }
}

fn bench(c: &mut Criterion) {
    print_figure4();
    let (_, _, matrix) = complete_matrix();
    let mut group = c.benchmark_group("fig4");
    group.bench_function("pca_fit_22x40", |b| {
        b.iter(|| Pca::fit(&matrix).expect("fits"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
