//! Regenerates Table 2 (the twelve most determinant nominal statistics per
//! benchmark) and the appendix per-benchmark tables — and benchmarks the
//! scoring machinery.

use chopin_core::nominal::score_table;
use criterion::{criterion_group, criterion_main, Criterion};

fn print_table2() {
    println!("\n# Table 2");
    println!("{}", chopin_harness::table2());
    println!("\n# Appendix Table 3 (avrora)");
    println!(
        "{}",
        chopin_harness::nominal_table("avrora").expect("avrora")
    );
}

fn bench(c: &mut Criterion) {
    print_table2();
    let mut group = c.benchmark_group("table2");
    group.bench_function("score_table_h2", |b| {
        b.iter(|| score_table("h2").expect("in suite"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
