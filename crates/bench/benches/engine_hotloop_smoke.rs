//! Smoke benchmark over the engine hot loop — event dispatch plus
//! observer fan-out — with a machine-readable trajectory point.
//!
//! Three configurations of the same fop/G1/2.0× run: the monomorphised
//! no-op observer (must cost nothing), a recording observer (one
//! bounded ring push per event), and a `Tee` fanning every event out to
//! a recorder *and* the metrics registry. The vendored criterion stub
//! has no statistics engine, so this bench times its own samples (one
//! warmup + `SAMPLES` measured) and writes `BENCH_6.json` at the
//! workspace root: min/mean nanoseconds per configuration and the
//! observer overhead ratios, so successive PRs can track the hot loop
//! without parsing human output.

use chopin_obs::observer::Tee;
use chopin_obs::Observer;
use chopin_obs::{EventRecorder, MetricsObserver, NoopObserver};
use chopin_runtime::collector::CollectorKind;
use chopin_runtime::config::RunConfig;
use chopin_runtime::engine::run_with_observer;
use chopin_workloads::{suite, SizeClass};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

const SAMPLES: usize = 5;

struct Timing {
    label: &'static str,
    min_ns: u128,
    mean_ns: u128,
    events: usize,
}

fn time_observer<O: Observer>(
    label: &'static str,
    spec: &chopin_runtime::spec::MutatorSpec,
    config: &RunConfig,
    mut make: impl FnMut() -> O,
    events_of: impl Fn(&O) -> usize,
) -> Timing {
    // Warmup once outside the samples: first-touch allocation noise.
    let mut warm = make();
    run_with_observer(spec, config, &mut warm).expect("completes");
    let mut total = 0u128;
    let mut min_ns = u128::MAX;
    let mut events = 0;
    for _ in 0..SAMPLES {
        let mut observer = make();
        let start = Instant::now();
        run_with_observer(spec, config, &mut observer).expect("completes");
        let ns = start.elapsed().as_nanos();
        total += ns;
        min_ns = min_ns.min(ns);
        events = events_of(&observer);
    }
    Timing {
        label,
        min_ns,
        mean_ns: total / SAMPLES as u128,
        events,
    }
}

fn bench(c: &mut Criterion) {
    let fop = suite::by_name("fop").expect("in suite");
    let spec = fop
        .to_spec(SizeClass::Default)
        .expect("default size exists")
        .expect("spec is valid");
    let heap = fop.min_heap_bytes(SizeClass::Default).expect("published") * 2;
    let config = RunConfig::new(heap, CollectorKind::G1).with_noise(0.0);

    let timings = vec![
        time_observer("noop", &spec, &config, || NoopObserver, |_| 0),
        time_observer(
            "recorder",
            &spec,
            &config,
            EventRecorder::new,
            EventRecorder::len,
        ),
        time_observer(
            "tee_recorder_metrics",
            &spec,
            &config,
            || Tee(EventRecorder::new(), MetricsObserver::new()),
            |t| t.0.len(),
        ),
    ];

    // Register with criterion too, so `cargo bench` prints the familiar
    // per-benchmark lines alongside the JSON artifact.
    let mut group = c.benchmark_group("engine_hotloop");
    for t in &timings {
        let mean_ns = t.mean_ns;
        group.bench_function(t.label, |b| b.iter(|| mean_ns));
        println!(
            "engine_hotloop/{}: min {:.3} ms, mean {:.3} ms over {SAMPLES} samples ({} events)",
            t.label,
            t.min_ns as f64 / 1e6,
            t.mean_ns as f64 / 1e6,
            t.events
        );
    }
    group.finish();

    write_trajectory(&timings);
}

/// Hand-rolled JSON (the vendored serde stub has no serializer), floats
/// via `{:?}` per the workspace float-marshalling contract.
fn write_trajectory(timings: &[Timing]) {
    let noop_mean = timings[0].mean_ns.max(1) as f64;
    let mut rows = String::new();
    for (i, t) in timings.iter().enumerate() {
        if i > 0 {
            rows.push_str(", ");
        }
        rows.push_str(&format!(
            "{{\"observer\": \"{}\", \"min_ns\": {}, \"mean_ns\": {}, \"events\": {}, \"vs_noop\": {:?}}}",
            t.label,
            t.min_ns,
            t.mean_ns,
            t.events,
            t.mean_ns as f64 / noop_mean
        ));
    }
    let json = format!(
        "{{\"bench\": \"engine_hotloop_smoke\", \"benchmark\": \"fop\", \
         \"collector\": \"G1\", \"heap_factor\": {:?}, \"samples\": {SAMPLES}, \
         \"results\": [{rows}]}}\n",
        2.0f64
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
