//! Smoke benchmark over the engine hot loop — now a thin wrapper around
//! the `chopin-perf` hot-path suite.
//!
//! The self-timed loop and the `BENCH_6.json` trajectory point this
//! bench used to own moved into `chopin-perf`: the suite runs the same
//! three fop/G1/2.0× observer configurations (no-op, recorder, tee into
//! recorder + metrics) plus the allocation, collector-phase, batching
//! and journal benches, times them through
//! `chopin_sandbox::clock::WallSpan`, and `artifact perf --run` writes
//! the versioned `BENCH_<PR>.json` ledger point. This wrapper keeps the
//! `cargo bench` entry point alive: it runs the hotloop subset through
//! the shared runner and prints the familiar per-configuration lines,
//! but no longer writes any artifact — the ledger is `artifact perf`'s
//! job, so a local `cargo bench` can't silently overwrite a committed
//! trajectory point.

use chopin_obs::{format_ns, MetricsRegistry};
use chopin_perf::suite::{default_benches, run_bench};
use criterion::{criterion_group, criterion_main, Criterion};

const SAMPLES: usize = 5;

fn bench(c: &mut Criterion) {
    let mut metrics = MetricsRegistry::new();
    let mut group = c.benchmark_group("engine_hotloop");
    for hot in &mut default_benches().expect("suite constructs") {
        if !hot.id().starts_with("hotloop.") {
            continue;
        }
        let record = run_bench(hot.as_mut(), SAMPLES, &mut metrics).expect("bench completes");
        let mean_ns = record.mean_ns;
        let label = record.id.trim_start_matches("hotloop.").to_string();
        group.bench_function(&label, |b| b.iter(|| mean_ns));
        println!(
            "engine_hotloop/{label}: min {}, mean {} over {} samples ({} events)",
            format_ns(record.min_ns),
            format_ns(record.mean_ns),
            record.sample_count,
            record.work,
        );
    }
    group.finish();
    println!("trajectory points are written by `artifact perf --run`, not this bench");
}

criterion_group!(benches, bench);
criterion_main!(benches);
