//! placeholder
