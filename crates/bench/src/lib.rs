//! placeholder

#![forbid(unsafe_code)]
#![warn(missing_docs)]
