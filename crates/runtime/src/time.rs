//! Simulated time.
//!
//! The engine advances a virtual clock in nanoseconds. Newtypes keep
//! instants and durations from being confused with each other or with
//! ordinary integers, and make unit conversions explicit at call sites.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in nanoseconds since the start of the
/// simulation.
///
/// # Examples
///
/// ```
/// use chopin_runtime::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use chopin_runtime::time::SimDuration;
///
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// assert_eq!(d * 2, SimDuration::from_millis(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed as seconds (lossy, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed as milliseconds (lossy, for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant, saturating at zero if `earlier` is
    /// actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at zero for negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0 && factor.is_finite(), "invalid scale factor");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis_f64(), 500.0);
    }

    #[test]
    fn from_secs_f64_saturates_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDuration::from_nanos(50);
        assert_eq!(t1 - t0, SimDuration::from_nanos(50));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(SimDuration::from_nanos(10) * 3, SimDuration::from_nanos(30));
        assert_eq!(SimDuration::from_nanos(30) / 3, SimDuration::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&n| SimDuration::from_nanos(n))
            .sum();
        assert_eq!(total, SimDuration::from_nanos(6));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_nanos(10).mul_f64(0.25),
            SimDuration::from_nanos(3)
        );
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_nanos(1);
        let b = SimDuration::from_nanos(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let ta = SimTime::from_nanos(1);
        let tb = SimTime::from_nanos(2);
        assert_eq!(ta.min(tb), ta);
        assert_eq!(ta.max(tb), tb);
    }
}
