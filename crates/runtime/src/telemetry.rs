//! Run telemetry: pause records, post-GC heap trace and clock accounting.
//!
//! This is the simulation's analog of the paper's measurement
//! infrastructure: JVMTI stop-the-world capture (used by the LBO
//! methodology, §6.2), Linux `perf` `TASK_CLOCK` (total CPU time across all
//! threads, Figure 1(b)), and the GC logs behind the appendix's post-GC
//! heap-size graphs.

use crate::collector::CollectionKind;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One stop-the-world pause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PauseRecord {
    /// Wall time at which the pause began.
    pub start: SimTime,
    /// Wall-clock length of the pause.
    pub duration: SimDuration,
    /// CPU nanoseconds consumed by GC threads during the pause.
    pub gc_cpu_ns: f64,
    /// The kind of collection the pause belongs to.
    pub kind: CollectionKind,
}

/// One sample of the post-collection heap size (the appendix's "heap size
/// post each garbage collection" graphs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeapSample {
    /// Wall time of the collection's completion.
    pub time: SimTime,
    /// Occupied heap bytes immediately after the collection.
    pub occupied_bytes: f64,
}

/// Accumulated telemetry for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Every stop-the-world pause, in time order.
    pub pauses: Vec<PauseRecord>,
    /// Post-GC heap samples, in time order.
    pub heap_trace: Vec<HeapSample>,
    /// CPU nanoseconds burned by mutator threads (includes barrier taxes —
    /// deliberately: those are the hard-to-attribute costs LBO exposes).
    pub mutator_cpu_ns: f64,
    /// CPU nanoseconds burned by GC threads during stop-the-world phases.
    pub gc_stw_cpu_ns: f64,
    /// CPU nanoseconds burned by GC threads running concurrently with the
    /// application.
    pub gc_concurrent_cpu_ns: f64,
    /// Wall-clock time during which allocation was throttled or stalled
    /// (Shenandoah pacing, ZGC allocation stalls).
    pub throttled_wall: SimDuration,
    /// Number of collections completed.
    pub gc_count: u64,
    /// Number of degenerate (fallback full STW) collections.
    pub degenerate_count: u64,
    /// Integral of heap occupancy over wall time, in byte-seconds — the
    /// "area under the memory use curve" §4.2 suggests as a better net
    /// footprint metric than the `-Xmx` bound ("the minimum heap size in
    /// which a workload can run reflects the workload's peak memory usage,
    /// not its average usage").
    pub heap_byte_seconds: f64,
    /// Aggregate wall time of pauses folded into batches when the engine
    /// fast-forwards through GC-thrash regimes (individual records are only
    /// kept below a cap; totals stay exact).
    pub batched_pause_wall: SimDuration,
    /// Number of pauses folded into [`Telemetry::batched_pause_wall`].
    pub batched_pause_count: u64,
}

impl Telemetry {
    /// A fresh, empty telemetry sink.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Record a stop-the-world pause.
    pub fn record_pause(&mut self, pause: PauseRecord) {
        self.gc_stw_cpu_ns += pause.gc_cpu_ns;
        if pause.kind == CollectionKind::Degenerate {
            self.degenerate_count += 1;
        }
        self.pauses.push(pause);
    }

    /// Record the heap state after a collection completes.
    pub fn record_heap_sample(&mut self, time: SimTime, occupied_bytes: f64) {
        self.heap_trace.push(HeapSample {
            time,
            occupied_bytes,
        });
        self.gc_count += 1;
    }

    /// Record `count` identical pauses in aggregate form (batched
    /// fast-forward through thrash regimes). CPU and wall totals stay
    /// exact; only the individual records are elided.
    pub fn record_batched_pauses(&mut self, count: u64, each: SimDuration, gc_cpu_each: f64) {
        self.batched_pause_count += count;
        self.batched_pause_wall += each * count;
        self.gc_stw_cpu_ns += gc_cpu_each * count as f64;
    }

    /// Total wall-clock time spent in stop-the-world pauses — the quantity
    /// JVMTI exposes and LBO subtracts from wall time. Includes batched
    /// pauses.
    pub fn total_pause_wall(&self) -> SimDuration {
        self.pauses.iter().map(|p| p.duration).sum::<SimDuration>() + self.batched_pause_wall
    }

    /// Total CPU time across all threads — the simulation's `TASK_CLOCK`.
    pub fn task_clock_ns(&self) -> f64 {
        self.mutator_cpu_ns + self.gc_stw_cpu_ns + self.gc_concurrent_cpu_ns
    }

    /// Total GC CPU (STW + concurrent).
    pub fn gc_cpu_ns(&self) -> f64 {
        self.gc_stw_cpu_ns + self.gc_concurrent_cpu_ns
    }

    /// The longest single pause, if any pause occurred.
    pub fn max_pause(&self) -> Option<SimDuration> {
        self.pauses.iter().map(|p| p.duration).max()
    }

    /// Average heap occupancy over a run of `wall` seconds, in bytes —
    /// [`Telemetry::heap_byte_seconds`] divided by the wall time.
    pub fn average_occupancy_bytes(&self, wall: SimDuration) -> f64 {
        let w = wall.as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.heap_byte_seconds / w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pause(ms: u64, kind: CollectionKind) -> PauseRecord {
        PauseRecord {
            start: SimTime::ZERO,
            duration: SimDuration::from_millis(ms),
            gc_cpu_ns: (ms * 1_000_000) as f64,
            kind,
        }
    }

    #[test]
    fn pause_accounting_sums() {
        let mut t = Telemetry::new();
        t.record_pause(pause(2, CollectionKind::Young));
        t.record_pause(pause(3, CollectionKind::Full));
        assert_eq!(t.total_pause_wall(), SimDuration::from_millis(5));
        assert_eq!(t.gc_stw_cpu_ns, 5e6);
        assert_eq!(t.max_pause(), Some(SimDuration::from_millis(3)));
        assert_eq!(t.degenerate_count, 0);
    }

    #[test]
    fn degenerate_pauses_are_counted() {
        let mut t = Telemetry::new();
        t.record_pause(pause(10, CollectionKind::Degenerate));
        assert_eq!(t.degenerate_count, 1);
    }

    #[test]
    fn task_clock_sums_all_thread_time() {
        let mut t = Telemetry::new();
        t.mutator_cpu_ns = 100.0;
        t.gc_stw_cpu_ns = 20.0;
        t.gc_concurrent_cpu_ns = 30.0;
        assert_eq!(t.task_clock_ns(), 150.0);
        assert_eq!(t.gc_cpu_ns(), 50.0);
    }

    #[test]
    fn heap_samples_increment_gc_count() {
        let mut t = Telemetry::new();
        t.record_heap_sample(SimTime::from_nanos(10), 1000.0);
        t.record_heap_sample(SimTime::from_nanos(20), 800.0);
        assert_eq!(t.gc_count, 2);
        assert_eq!(t.heap_trace.len(), 2);
    }

    #[test]
    fn empty_telemetry_has_no_max_pause() {
        assert_eq!(Telemetry::new().max_pause(), None);
    }

    #[test]
    fn average_occupancy_is_area_over_time() {
        let mut t = Telemetry::new();
        t.heap_byte_seconds = 100.0; // e.g. 50 bytes held for 2 seconds
        assert_eq!(t.average_occupancy_bytes(SimDuration::from_secs(2)), 50.0);
        assert_eq!(t.average_occupancy_bytes(SimDuration::ZERO), 0.0);
    }
}
