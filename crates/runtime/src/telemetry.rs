//! Run telemetry: pause records, post-GC heap trace and clock accounting.
//!
//! This is the simulation's analog of the paper's measurement
//! infrastructure: JVMTI stop-the-world capture (used by the LBO
//! methodology, §6.2), Linux `perf` `TASK_CLOCK` (total CPU time across all
//! threads, Figure 1(b)), and the GC logs behind the appendix's post-GC
//! heap-size graphs.

use crate::collector::CollectionKind;
use crate::time::{SimDuration, SimTime};
use chopin_faults::FaultKind;
use chopin_obs::LogHistogram;
use serde::{Deserialize, Serialize};

/// Individual throttle intervals kept before dropping detail (the
/// aggregate [`Telemetry::throttled_wall`] stays exact regardless).
const THROTTLE_INTERVAL_CAP: usize = 10_000;

/// Individual fault intervals kept; matches the fault plane's window cap,
/// so every planned window can be recorded ([`Telemetry::faults_injected`]
/// stays exact regardless).
const FAULT_INTERVAL_CAP: usize = chopin_faults::MAX_WINDOWS;

/// One stop-the-world pause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PauseRecord {
    /// Wall time at which the pause began.
    pub start: SimTime,
    /// Wall-clock length of the pause.
    pub duration: SimDuration,
    /// CPU nanoseconds consumed by GC threads during the pause.
    pub gc_cpu_ns: f64,
    /// The kind of collection the pause belongs to.
    pub kind: CollectionKind,
}

/// One sample of the post-collection heap size (the appendix's "heap size
/// post each garbage collection" graphs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeapSample {
    /// Wall time of the collection's completion.
    pub time: SimTime,
    /// Occupied heap bytes immediately after the collection.
    pub occupied_bytes: f64,
}

/// One contiguous interval during which a pacing collector (Shenandoah,
/// ZGC) slowed or stalled the mutator to protect an in-flight concurrent
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleInterval {
    /// Wall time at which pacing engaged.
    pub start: SimTime,
    /// Wall-clock length of the interval (pauses inside it included).
    pub duration: SimDuration,
    /// The harshest throttle factor applied during the interval
    /// (1.0 = unthrottled, 0.0 = full allocation stall).
    pub min_throttle: f64,
}

impl ThrottleInterval {
    /// Whether the mutator was fully stalled at some point.
    pub fn stalled(&self) -> bool {
        self.min_throttle <= 0.0
    }
}

/// One contiguous interval during which an injected fault of one kind was
/// active (overlapping windows of the same kind merge into one interval).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInterval {
    /// Wall time at which the fault engaged.
    pub start: SimTime,
    /// Wall-clock length of the interval.
    pub duration: SimDuration,
    /// The kind of fault, carrying the harshest magnitude applied during
    /// the interval.
    pub kind: FaultKind,
}

/// Accumulated telemetry for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Every stop-the-world pause, in time order.
    pub pauses: Vec<PauseRecord>,
    /// Post-GC heap samples, in time order.
    pub heap_trace: Vec<HeapSample>,
    /// CPU nanoseconds burned by mutator threads (includes barrier taxes —
    /// deliberately: those are the hard-to-attribute costs LBO exposes).
    pub mutator_cpu_ns: f64,
    /// CPU nanoseconds burned by GC threads during stop-the-world phases.
    pub gc_stw_cpu_ns: f64,
    /// CPU nanoseconds burned by GC threads running concurrently with the
    /// application.
    pub gc_concurrent_cpu_ns: f64,
    /// Wall-clock time during which allocation was throttled or stalled
    /// (Shenandoah pacing, ZGC allocation stalls).
    pub throttled_wall: SimDuration,
    /// Contiguous pacing intervals, in time order (individual records are
    /// kept up to a cap; [`Telemetry::throttled_wall`] stays exact).
    pub throttle_intervals: Vec<ThrottleInterval>,
    /// Number of collections completed.
    pub gc_count: u64,
    /// Number of degenerate (fallback full STW) collections.
    pub degenerate_count: u64,
    /// Integral of heap occupancy over wall time, in byte-seconds — the
    /// "area under the memory use curve" §4.2 suggests as a better net
    /// footprint metric than the `-Xmx` bound ("the minimum heap size in
    /// which a workload can run reflects the workload's peak memory usage,
    /// not its average usage").
    pub heap_byte_seconds: f64,
    /// Aggregate wall time of pauses folded into batches when the engine
    /// fast-forwards through GC-thrash regimes (individual records are only
    /// kept below a cap; totals stay exact).
    pub batched_pause_wall: SimDuration,
    /// Number of pauses folded into [`Telemetry::batched_pause_wall`].
    pub batched_pause_count: u64,
    /// Injected-fault intervals, in onset order (empty on clean runs; kept
    /// up to the fault plane's window cap).
    pub fault_intervals: Vec<FaultInterval>,
    /// Number of fault intervals that engaged (exact even past the cap).
    pub faults_injected: u64,
}

impl Telemetry {
    /// A fresh, empty telemetry sink.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Record a stop-the-world pause.
    pub fn record_pause(&mut self, pause: PauseRecord) {
        self.gc_stw_cpu_ns += pause.gc_cpu_ns;
        if pause.kind == CollectionKind::Degenerate {
            self.degenerate_count += 1;
        }
        self.pauses.push(pause);
    }

    /// Record the heap state after a collection completes.
    pub fn record_heap_sample(&mut self, time: SimTime, occupied_bytes: f64) {
        self.heap_trace.push(HeapSample {
            time,
            occupied_bytes,
        });
        self.gc_count += 1;
    }

    /// Record `count` identical pauses in aggregate form (batched
    /// fast-forward through thrash regimes). CPU and wall totals stay
    /// exact; only the individual records are elided.
    pub fn record_batched_pauses(&mut self, count: u64, each: SimDuration, gc_cpu_each: f64) {
        self.batched_pause_count += count;
        self.batched_pause_wall += each * count;
        self.gc_stw_cpu_ns += gc_cpu_each * count as f64;
    }

    /// Record one contiguous pacing interval (dropped past the cap; the
    /// aggregate counters are the source of truth for totals).
    pub fn record_throttle_interval(&mut self, interval: ThrottleInterval) {
        if self.throttle_intervals.len() < THROTTLE_INTERVAL_CAP {
            self.throttle_intervals.push(interval);
        }
    }

    /// Record one injected-fault interval (dropped past the cap;
    /// [`Telemetry::faults_injected`] stays exact).
    pub fn record_fault_interval(&mut self, interval: FaultInterval) {
        self.faults_injected += 1;
        if self.fault_intervals.len() < FAULT_INTERVAL_CAP {
            self.fault_intervals.push(interval);
        }
    }

    /// Fold every pause into a log-bucketed [`LogHistogram`] with exact
    /// count and sum side-channels — the quantile source for latency and
    /// LBO analysis, replacing repeated scans over [`Telemetry::pauses`].
    ///
    /// Batched pauses (from the engine's fast-forward through thrash
    /// regimes) enter at their aggregate mean duration, split across two
    /// adjacent values so the histogram's count and sum match
    /// [`Telemetry::batched_pause_count`] and
    /// [`Telemetry::total_pause_wall`] exactly. Within a single batch the
    /// folded cycles are identical, so the mean loses nothing; across
    /// batches only the per-batch spread is elided.
    pub fn pause_histogram(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for p in &self.pauses {
            h.record(p.duration.as_nanos());
        }
        let count = self.batched_pause_count;
        let wall = self.batched_pause_wall.as_nanos();
        if let Some(mean) = wall.checked_div(count) {
            let rem = wall - mean * count; // rem < count
            h.record_n(mean, count - rem);
            h.record_n(mean + 1, rem);
        }
        h
    }

    /// Total wall-clock time spent in stop-the-world pauses — the quantity
    /// JVMTI exposes and LBO subtracts from wall time. Includes batched
    /// pauses.
    pub fn total_pause_wall(&self) -> SimDuration {
        self.pauses.iter().map(|p| p.duration).sum::<SimDuration>() + self.batched_pause_wall
    }

    /// Total CPU time across all threads — the simulation's `TASK_CLOCK`.
    pub fn task_clock_ns(&self) -> f64 {
        self.mutator_cpu_ns + self.gc_stw_cpu_ns + self.gc_concurrent_cpu_ns
    }

    /// Total GC CPU (STW + concurrent).
    pub fn gc_cpu_ns(&self) -> f64 {
        self.gc_stw_cpu_ns + self.gc_concurrent_cpu_ns
    }

    /// The longest single pause, if any pause occurred.
    pub fn max_pause(&self) -> Option<SimDuration> {
        self.pauses.iter().map(|p| p.duration).max()
    }

    /// Average heap occupancy over a run of `wall` seconds, in bytes —
    /// [`Telemetry::heap_byte_seconds`] divided by the wall time.
    pub fn average_occupancy_bytes(&self, wall: SimDuration) -> f64 {
        let w = wall.as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.heap_byte_seconds / w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pause(ms: u64, kind: CollectionKind) -> PauseRecord {
        PauseRecord {
            start: SimTime::ZERO,
            duration: SimDuration::from_millis(ms),
            gc_cpu_ns: (ms * 1_000_000) as f64,
            kind,
        }
    }

    #[test]
    fn pause_accounting_sums() {
        let mut t = Telemetry::new();
        t.record_pause(pause(2, CollectionKind::Young));
        t.record_pause(pause(3, CollectionKind::Full));
        assert_eq!(t.total_pause_wall(), SimDuration::from_millis(5));
        assert_eq!(t.gc_stw_cpu_ns, 5e6);
        assert_eq!(t.max_pause(), Some(SimDuration::from_millis(3)));
        assert_eq!(t.degenerate_count, 0);
    }

    #[test]
    fn degenerate_pauses_are_counted() {
        let mut t = Telemetry::new();
        t.record_pause(pause(10, CollectionKind::Degenerate));
        assert_eq!(t.degenerate_count, 1);
    }

    #[test]
    fn task_clock_sums_all_thread_time() {
        let mut t = Telemetry::new();
        t.mutator_cpu_ns = 100.0;
        t.gc_stw_cpu_ns = 20.0;
        t.gc_concurrent_cpu_ns = 30.0;
        assert_eq!(t.task_clock_ns(), 150.0);
        assert_eq!(t.gc_cpu_ns(), 50.0);
    }

    #[test]
    fn heap_samples_increment_gc_count() {
        let mut t = Telemetry::new();
        t.record_heap_sample(SimTime::from_nanos(10), 1000.0);
        t.record_heap_sample(SimTime::from_nanos(20), 800.0);
        assert_eq!(t.gc_count, 2);
        assert_eq!(t.heap_trace.len(), 2);
    }

    #[test]
    fn empty_telemetry_has_no_max_pause() {
        assert_eq!(Telemetry::new().max_pause(), None);
    }

    #[test]
    fn pause_histogram_matches_exact_aggregates() {
        let mut t = Telemetry::new();
        t.record_pause(pause(2, CollectionKind::Young));
        t.record_pause(pause(7, CollectionKind::Full));
        // Two batches with different per-pause durations: the combined
        // mean does not divide evenly, exercising the remainder split.
        t.record_batched_pauses(2, SimDuration::from_nanos(1_000_001), 0.0);
        t.record_batched_pauses(1, SimDuration::from_nanos(3_000_000), 0.0);
        let h = t.pause_histogram();
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), u128::from(t.total_pause_wall().as_nanos()));
        assert_eq!(h.max(), 7_000_000);
    }

    #[test]
    fn throttle_intervals_are_capped() {
        let mut t = Telemetry::new();
        for i in 0..(super::THROTTLE_INTERVAL_CAP + 10) {
            t.record_throttle_interval(ThrottleInterval {
                start: SimTime::from_nanos(i as u64),
                duration: SimDuration::from_nanos(1),
                min_throttle: 0.5,
            });
        }
        assert_eq!(t.throttle_intervals.len(), super::THROTTLE_INTERVAL_CAP);
        assert!(!t.throttle_intervals[0].stalled());
    }

    #[test]
    fn fault_intervals_count_exactly_and_cap_records() {
        let mut t = Telemetry::new();
        for i in 0..(super::FAULT_INTERVAL_CAP + 5) {
            t.record_fault_interval(FaultInterval {
                start: SimTime::from_nanos(i as u64),
                duration: SimDuration::from_nanos(10),
                kind: FaultKind::AllocSpike { factor: 2.0 },
            });
        }
        assert_eq!(t.faults_injected, (super::FAULT_INTERVAL_CAP + 5) as u64);
        assert_eq!(t.fault_intervals.len(), super::FAULT_INTERVAL_CAP);
    }

    #[test]
    fn clean_telemetry_has_no_faults() {
        let t = Telemetry::new();
        assert_eq!(t.faults_injected, 0);
        assert!(t.fault_intervals.is_empty());
    }

    #[test]
    fn average_occupancy_is_area_over_time() {
        let mut t = Telemetry::new();
        t.heap_byte_seconds = 100.0; // e.g. 50 bytes held for 2 seconds
        assert_eq!(t.average_occupancy_bytes(SimDuration::from_secs(2)), 50.0);
        assert_eq!(t.average_occupancy_bytes(SimDuration::ZERO), 0.0);
    }
}
