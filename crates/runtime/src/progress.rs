//! The mutator progress trace: a piecewise-linear map from wall-clock time
//! to per-worker useful work completed.
//!
//! The engine appends one segment per simulation slice. Stop-the-world
//! pauses appear as zero-rate segments; Shenandoah pacing appears as
//! reduced-rate segments. Request start/end times for the latency-sensitive
//! workloads are recovered by *inverting* this map: a request that needs
//! `d` nanoseconds of service completes at the wall time where the worker's
//! cumulative progress first reaches its cumulative demand. This makes the
//! latency distributions an exact function of the simulated schedule — the
//! piling-up of requests behind a pause (Figure 2's point) falls out for
//! free.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One constant-rate span of mutator execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressSegment {
    /// Wall time at which the segment starts.
    pub start: SimTime,
    /// Wall time at which the segment ends.
    pub end: SimTime,
    /// Useful work per wall nanosecond *per worker thread* during the
    /// segment (zero while the world is stopped).
    pub worker_rate: f64,
}

impl ProgressSegment {
    /// Useful work accumulated by one worker across the whole segment.
    pub fn worker_progress(&self) -> f64 {
        (self.end - self.start).as_nanos() as f64 * self.worker_rate
    }
}

/// The complete trace for one run.
///
/// # Examples
///
/// ```
/// use chopin_runtime::progress::ProgressTrace;
/// use chopin_runtime::time::{SimTime, SimDuration};
///
/// let mut trace = ProgressTrace::new();
/// // 100ns of running at rate 1.0, a 50ns pause, 100ns more running.
/// trace.push(SimTime::from_nanos(0), SimTime::from_nanos(100), 1.0);
/// trace.push(SimTime::from_nanos(100), SimTime::from_nanos(150), 0.0);
/// trace.push(SimTime::from_nanos(150), SimTime::from_nanos(250), 1.0);
///
/// // 120ns of demand completes 50ns late because of the pause.
/// let t = trace.time_at_progress(120.0).unwrap();
/// assert_eq!(t.as_nanos(), 170);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProgressTrace {
    segments: Vec<ProgressSegment>,
    /// Cumulative per-worker progress at the *end* of each segment.
    cumulative: Vec<f64>,
}

impl ProgressTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ProgressTrace::default()
    }

    /// Append a segment. Adjacent segments with identical rates are merged.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the segment is not contiguous with the
    /// previous one, runs backwards, or has a negative/non-finite rate.
    pub fn push(&mut self, start: SimTime, end: SimTime, worker_rate: f64) {
        debug_assert!(end >= start, "segment runs backwards");
        debug_assert!(
            worker_rate >= 0.0 && worker_rate.is_finite(),
            "invalid rate"
        );
        if let Some(last) = self.segments.last() {
            debug_assert_eq!(last.end, start, "segments must be contiguous");
        }
        if start == end {
            return;
        }
        let prev_cum = self.cumulative.last().copied().unwrap_or(0.0);
        if let (Some(last), Some(last_cum)) = (self.segments.last_mut(), self.cumulative.last_mut())
        {
            if (last.worker_rate - worker_rate).abs() < 1e-15 {
                last.end = end;
                *last_cum = prev_cum + (end - start).as_nanos() as f64 * worker_rate;
                return;
            }
        }
        let seg = ProgressSegment {
            start,
            end,
            worker_rate,
        };
        self.cumulative.push(prev_cum + seg.worker_progress());
        self.segments.push(seg);
    }

    /// The recorded segments.
    pub fn segments(&self) -> &[ProgressSegment] {
        &self.segments
    }

    /// Total per-worker progress over the whole trace.
    pub fn total_worker_progress(&self) -> f64 {
        self.cumulative.last().copied().unwrap_or(0.0)
    }

    /// Wall time at which the trace ends, if non-empty.
    pub fn end_time(&self) -> Option<SimTime> {
        self.segments.last().map(|s| s.end)
    }

    /// A worker's cumulative progress at wall time `t` (clamped to the
    /// trace's span).
    pub fn progress_at_time(&self, t: SimTime) -> f64 {
        let Some(first) = self.segments.first() else {
            return 0.0;
        };
        if t <= first.start {
            return 0.0;
        }
        // Find the segment containing t.
        let idx = self
            .segments
            .partition_point(|s| s.end < t)
            .min(self.segments.len() - 1);
        let seg = &self.segments[idx];
        let before = if idx == 0 {
            0.0
        } else {
            self.cumulative[idx - 1]
        };
        if t >= seg.end {
            return self.cumulative[idx];
        }
        before + seg.worker_rate * t.saturating_since(seg.start).as_nanos() as f64
    }

    /// The wall time at which a worker's cumulative progress first reaches
    /// `target`. Returns `None` if the trace never accumulates that much
    /// progress.
    pub fn time_at_progress(&self, target: f64) -> Option<SimTime> {
        if target <= 0.0 {
            return self.segments.first().map(|s| s.start);
        }
        // Binary search over cumulative progress at segment ends.
        let idx = self.cumulative.partition_point(|&c| c < target);
        let seg = self.segments.get(idx)?;
        let before = if idx == 0 {
            0.0
        } else {
            self.cumulative[idx - 1]
        };
        let need = target - before;
        debug_assert!(
            seg.worker_rate > 0.0,
            "progress advanced in a zero-rate segment"
        );
        let dt = need / seg.worker_rate;
        Some(seg.start + SimDuration::from_nanos(dt.round() as u64))
    }

    /// A cursor for walking the trace monotonically — O(1) amortised per
    /// lookup when targets are non-decreasing, which is how request streams
    /// are processed.
    pub fn cursor(&self) -> ProgressCursor<'_> {
        ProgressCursor {
            trace: self,
            idx: 0,
        }
    }
}

/// Monotone lookup cursor produced by [`ProgressTrace::cursor`].
#[derive(Debug, Clone)]
pub struct ProgressCursor<'a> {
    trace: &'a ProgressTrace,
    idx: usize,
}

impl ProgressCursor<'_> {
    /// Like [`ProgressTrace::time_at_progress`], but starts scanning from
    /// the previous lookup's segment.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `target` is less than a previous target
    /// (the cursor only moves forward).
    pub fn time_at_progress(&mut self, target: f64) -> Option<SimTime> {
        if target <= 0.0 {
            return self.trace.segments.first().map(|s| s.start);
        }
        while self.idx < self.trace.cumulative.len() && self.trace.cumulative[self.idx] < target {
            self.idx += 1;
        }
        let seg = self.trace.segments.get(self.idx)?;
        let before = if self.idx == 0 {
            0.0
        } else {
            self.trace.cumulative[self.idx - 1]
        };
        let need = target - before;
        let dt = need / seg.worker_rate;
        Some(seg.start + SimDuration::from_nanos(dt.round() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace_with_pause() -> ProgressTrace {
        let mut t = ProgressTrace::new();
        t.push(SimTime::from_nanos(0), SimTime::from_nanos(100), 2.0);
        t.push(SimTime::from_nanos(100), SimTime::from_nanos(200), 0.0);
        t.push(SimTime::from_nanos(200), SimTime::from_nanos(300), 1.0);
        t
    }

    #[test]
    fn total_progress_sums_segments() {
        let t = trace_with_pause();
        assert_eq!(t.total_worker_progress(), 300.0);
        assert_eq!(t.end_time(), Some(SimTime::from_nanos(300)));
    }

    #[test]
    fn zero_length_segments_are_dropped() {
        let mut t = ProgressTrace::new();
        t.push(SimTime::from_nanos(0), SimTime::from_nanos(0), 1.0);
        assert!(t.segments().is_empty());
    }

    #[test]
    fn equal_rate_segments_merge() {
        let mut t = ProgressTrace::new();
        t.push(SimTime::from_nanos(0), SimTime::from_nanos(10), 1.0);
        t.push(SimTime::from_nanos(10), SimTime::from_nanos(20), 1.0);
        assert_eq!(t.segments().len(), 1);
        assert_eq!(t.total_worker_progress(), 20.0);
    }

    #[test]
    fn lookup_lands_inside_correct_segment() {
        let t = trace_with_pause();
        // 150 units of progress: 100ns gives 200, so 150 is reached at 75ns.
        assert_eq!(t.time_at_progress(150.0), Some(SimTime::from_nanos(75)));
        // 250 units: 200 by t=100, pause, then 50 more at rate 1 → t=250.
        assert_eq!(t.time_at_progress(250.0), Some(SimTime::from_nanos(250)));
        // Exactly the boundary 200 resolves to the end of the first segment.
        assert_eq!(t.time_at_progress(200.0), Some(SimTime::from_nanos(100)));
    }

    #[test]
    fn lookup_beyond_trace_is_none() {
        let t = trace_with_pause();
        assert_eq!(t.time_at_progress(301.0), None);
    }

    #[test]
    fn zero_target_is_trace_start() {
        let t = trace_with_pause();
        assert_eq!(t.time_at_progress(0.0), Some(SimTime::from_nanos(0)));
    }

    #[test]
    fn progress_at_time_is_the_forward_map() {
        let t = trace_with_pause();
        assert_eq!(t.progress_at_time(SimTime::from_nanos(0)), 0.0);
        assert_eq!(t.progress_at_time(SimTime::from_nanos(50)), 100.0);
        assert_eq!(
            t.progress_at_time(SimTime::from_nanos(150)),
            200.0,
            "flat during pause"
        );
        assert_eq!(t.progress_at_time(SimTime::from_nanos(250)), 250.0);
        assert_eq!(
            t.progress_at_time(SimTime::from_nanos(999)),
            300.0,
            "clamped past end"
        );
    }

    #[test]
    fn forward_and_inverse_maps_agree() {
        let t = trace_with_pause();
        for target in [10.0, 150.0, 250.0, 299.0] {
            let time = t.time_at_progress(target).unwrap();
            let back = t.progress_at_time(time);
            assert!((back - target).abs() < 3.0, "{target} -> {time} -> {back}");
        }
    }

    #[test]
    fn cursor_matches_direct_lookup() {
        let t = trace_with_pause();
        let mut c = t.cursor();
        for target in [10.0, 150.0, 200.0, 250.0, 299.0] {
            assert_eq!(c.time_at_progress(target), t.time_at_progress(target));
        }
    }

    proptest! {
        #[test]
        fn prop_lookup_is_monotone(
            rates in proptest::collection::vec(0.0f64..3.0, 1..20),
            targets in proptest::collection::vec(0.0f64..500.0, 1..50),
        ) {
            let mut t = ProgressTrace::new();
            let mut now = SimTime::ZERO;
            for r in rates {
                let next = now + SimDuration::from_nanos(37);
                t.push(now, next, r);
                now = next;
            }
            let mut sorted = targets.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let times: Vec<_> = sorted.iter().map(|&x| t.time_at_progress(x)).collect();
            // Defined lookups must be monotone non-decreasing.
            let defined: Vec<_> = times.iter().flatten().collect();
            for w in defined.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            // Once a lookup fails, all larger targets fail too.
            let first_none = times.iter().position(|x| x.is_none());
            if let Some(i) = first_none {
                prop_assert!(times[i..].iter().all(|x| x.is_none()));
            }
        }
    }
}
