//! Run configuration: the simulation analog of the JVM command line.
//!
//! Heap size (`-Xms`/`-Xmx`, which §6.1.2 uses to control for heap size),
//! collector selection (`-XX:+Use...GC`), compressed-pointer mode
//! (`-XX:-UseCompressedOops`), machine shape, warmup scaling, and the
//! deterministic seed.

use crate::collector::{CollectorKind, CollectorModel};
use crate::machine::MachineConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Compiler configuration, the analog of OpenJDK's tiered / `-Xcomp` /
/// `-Xint` modes (§4.3 and the PCC/PCS/PIN nominal statistics measure a
/// workload's sensitivity to this choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CompilerMode {
    /// The default multi-tier configuration (the baseline of the PCC and
    /// PIN statistics).
    #[default]
    Tiered,
    /// Forced top-tier compilation of everything up front (`-Xcomp`): the
    /// workload pays its PCC slowdown.
    ForcedC2,
    /// Interpreter only (`-Xint`): the workload pays its PIN slowdown.
    InterpreterOnly,
}

impl fmt::Display for CompilerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompilerMode::Tiered => "tiered",
            CompilerMode::ForcedC2 => "forced-c2",
            CompilerMode::InterpreterOnly => "interpreter",
        };
        f.write_str(s)
    }
}

/// Error raised by [`RunConfig`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid run config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Configuration for one run (invocation × iteration) of a workload on the
/// simulated runtime.
///
/// # Examples
///
/// ```
/// use chopin_runtime::config::RunConfig;
/// use chopin_runtime::collector::CollectorKind;
///
/// # fn main() -> Result<(), chopin_runtime::config::ConfigError> {
/// let cfg = RunConfig::new(64 << 20, CollectorKind::G1).validated()?;
/// assert!(cfg.compressed_oops(), "G1 defaults to compressed pointers");
///
/// let zgc = RunConfig::new(64 << 20, CollectorKind::Zgc).validated()?;
/// assert!(!zgc.compressed_oops(), "ZGC cannot use compressed pointers");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    heap_bytes: u64,
    collector: CollectorKind,
    compressed_oops: bool,
    machine: MachineConfig,
    seed: u64,
    work_scale: f64,
    noise: f64,
    compiler_mode: CompilerMode,
    /// Ablation hook: replace the selected collector's behaviour model
    /// wholesale (e.g. Shenandoah with its pacer disabled).
    collector_model_override: Option<CollectorModel>,
}

impl RunConfig {
    /// A configuration with the given heap and collector; everything else
    /// takes its default (the paper's baseline machine, compressed pointers
    /// where supported, no warmup scaling, a small invocation noise).
    pub fn new(heap_bytes: u64, collector: CollectorKind) -> Self {
        RunConfig {
            heap_bytes,
            collector,
            compressed_oops: collector.supports_compressed_oops(),
            machine: MachineConfig::default(),
            seed: 0x5EED,
            work_scale: 1.0,
            noise: 0.004,
            compiler_mode: CompilerMode::Tiered,
            collector_model_override: None,
        }
    }

    /// Set the heap size in bytes (`-Xms`/`-Xmx`).
    pub fn with_heap_bytes(mut self, bytes: u64) -> Self {
        self.heap_bytes = bytes;
        self
    }

    /// Select the collector. Disables compressed pointers automatically if
    /// the collector cannot use them.
    pub fn with_collector(mut self, collector: CollectorKind) -> Self {
        self.collector = collector;
        if !collector.supports_compressed_oops() {
            self.compressed_oops = false;
        }
        self
    }

    /// Explicitly enable or disable compressed pointers. Enabling them on a
    /// collector that does not support them is rejected by
    /// [`RunConfig::validated`].
    pub fn with_compressed_oops(mut self, enabled: bool) -> Self {
        self.compressed_oops = enabled;
        self
    }

    /// Set the simulated machine.
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Set the deterministic seed (vary per invocation for CI whiskers).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scale the workload's CPU demand (used by the iteration layer to
    /// model JIT warmup: early iterations run slower).
    pub fn with_work_scale(mut self, scale: f64) -> Self {
        self.work_scale = scale;
        self
    }

    /// Set the relative invocation-to-invocation noise (PSD analog).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Select the compiler configuration (§4.3's `-server`/`-comp`/`-Xint`
    /// axis).
    pub fn with_compiler_mode(mut self, mode: CompilerMode) -> Self {
        self.compiler_mode = mode;
        self
    }

    /// The selected compiler mode.
    pub fn compiler_mode(&self) -> CompilerMode {
        self.compiler_mode
    }

    /// Ablation hook: run with a hand-modified collector model instead of
    /// the stock model for the selected collector. The model must
    /// validate.
    pub fn with_collector_model(mut self, model: CollectorModel) -> Self {
        self.collector_model_override = Some(model);
        self
    }

    /// The collector-model override, if any.
    pub fn collector_model_override(&self) -> Option<&CollectorModel> {
        self.collector_model_override.as_ref()
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the heap is zero, compressed pointers
    /// are forced on an unsupporting collector, or scale factors are not
    /// positive/finite.
    pub fn validated(self) -> Result<Self, ConfigError> {
        if self.heap_bytes == 0 {
            return Err(ConfigError {
                message: "heap_bytes must be positive".into(),
            });
        }
        if self.compressed_oops && !self.collector.supports_compressed_oops() {
            return Err(ConfigError {
                message: format!(
                    "collector {} does not support compressed pointers",
                    self.collector
                ),
            });
        }
        if !(self.work_scale.is_finite() && self.work_scale > 0.0) {
            return Err(ConfigError {
                message: "work_scale must be positive".into(),
            });
        }
        if !(self.noise.is_finite() && (0.0..0.5).contains(&self.noise)) {
            return Err(ConfigError {
                message: "noise must lie in [0, 0.5)".into(),
            });
        }
        if let Some(model) = &self.collector_model_override {
            model.validate().map_err(|m| ConfigError {
                message: format!("collector model override invalid: {m}"),
            })?;
        }
        Ok(self)
    }

    /// Heap size in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.heap_bytes
    }

    /// Selected collector.
    pub fn collector(&self) -> CollectorKind {
        self.collector
    }

    /// Whether compressed pointers are in use.
    pub fn compressed_oops(&self) -> bool {
        self.compressed_oops
    }

    /// The simulated machine.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Deterministic seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Workload CPU-demand scale factor.
    pub fn work_scale(&self) -> f64 {
        self.work_scale
    }

    /// Invocation noise level.
    pub fn noise(&self) -> f64 {
        self.noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zgc_auto_disables_compressed_oops() {
        let cfg = RunConfig::new(1 << 30, CollectorKind::G1).with_collector(CollectorKind::Zgc);
        assert!(!cfg.compressed_oops());
        assert!(cfg.validated().is_ok());
    }

    #[test]
    fn forcing_compressed_oops_on_zgc_fails_validation() {
        let cfg = RunConfig::new(1 << 30, CollectorKind::Zgc).with_compressed_oops(true);
        assert!(cfg.validated().is_err());
    }

    #[test]
    fn zero_heap_rejected() {
        assert!(RunConfig::new(0, CollectorKind::G1).validated().is_err());
    }

    #[test]
    fn bad_scales_rejected() {
        assert!(RunConfig::new(1, CollectorKind::G1)
            .with_work_scale(0.0)
            .validated()
            .is_err());
        assert!(RunConfig::new(1, CollectorKind::G1)
            .with_noise(0.9)
            .validated()
            .is_err());
    }

    #[test]
    fn compiler_mode_defaults_to_tiered() {
        let cfg = RunConfig::new(1 << 20, CollectorKind::G1);
        assert_eq!(cfg.compiler_mode(), CompilerMode::Tiered);
        let cfg = cfg.with_compiler_mode(CompilerMode::InterpreterOnly);
        assert_eq!(cfg.compiler_mode(), CompilerMode::InterpreterOnly);
        assert_eq!(CompilerMode::ForcedC2.to_string(), "forced-c2");
    }

    #[test]
    fn builder_chain_sets_fields() {
        let cfg = RunConfig::new(123, CollectorKind::Serial)
            .with_seed(42)
            .with_work_scale(1.5)
            .with_noise(0.0)
            .validated()
            .unwrap();
        assert_eq!(cfg.heap_bytes(), 123);
        assert_eq!(cfg.seed(), 42);
        assert_eq!(cfg.work_scale(), 1.5);
        assert_eq!(cfg.noise(), 0.0);
    }
}
