//! The simulation engine: a deterministic, variable-step event loop that
//! runs one iteration of a workload on the simulated runtime.
//!
//! The engine advances a virtual clock in slices bounded by the next
//! "interesting" event — a GC trigger, a concurrent-cycle completion, heap
//! exhaustion, or the end of the workload's useful work. Within a slice all
//! rates are constant, so heap occupancy, mutator progress and CPU
//! accounting integrate exactly. Given identical inputs the engine produces
//! bit-identical results.
//!
//! # The execution model
//!
//! * Mutator threads share the workload's total useful work. Their combined
//!   CPU draw is the workload's effective parallelism, capped by the
//!   hardware threads left over by concurrent GC.
//! * Barriers tax useful progress: a collector with an 8 % barrier tax
//!   forces the mutator to burn ~8 % more CPU for the same work. This cost
//!   is *not* recorded as GC time — it is woven into the mutator, exactly
//!   the attribution problem the LBO methodology exists to expose (§4.5).
//! * Stop-the-world collections advance the clock with all mutators frozen.
//! * Concurrent cycles run on dedicated GC threads; if allocation threatens
//!   to exhaust the heap before the cycle finishes, collectors with a
//!   throttling policy (Shenandoah, ZGC) slow or stall the mutator —
//!   lusearch's pathology in Figure 5(c,d).
//! * When a heap is so small that tens of thousands of identical collections
//!   would occur, the engine fast-forwards through them in closed form
//!   ("batching"), keeping every total exact while bounding simulation cost.

use crate::collector::costs::ExhaustionPolicy;
use crate::collector::cycle::{plan_cycle, CollectionRequest, CycleInput, CycleOutcome};
use crate::collector::{CollectionKind, CollectorModel};
use crate::config::RunConfig;
use crate::heap::HeapState;
use crate::progress::ProgressTrace;
use crate::result::{RunError, RunResult};
use crate::spec::MutatorSpec;
use crate::telemetry::{FaultInterval, PauseRecord, Telemetry, ThrottleInterval};
use crate::time::{SimDuration, SimTime};
use chopin_faults::{FaultClock, FaultPlan, FaultSample, NoFaults, ScheduledFaults};
use chopin_obs::FaultKind as ObsFaultKind;
use chopin_obs::{Event, NoopObserver, Observer, PauseKind, TriggerReason};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Minimum free-space fraction a collection must leave for the run to be
/// considered viable; repeated violations are reported as out-of-memory.
const FUTILE_FREE_FRACTION: f64 = 0.03;

/// Consecutive futile collections before declaring out-of-memory.
const MAX_FUTILE: u32 = 4;

/// Hard cap on engine slices; beyond this the run is declared thrashing.
const MAX_SLICES: u64 = 20_000_000;

/// Individual pause records kept before falling back to aggregate counters.
const PAUSE_RECORD_CAP: usize = 200_000;

/// Heap-trace samples kept (the trace is downsampled beyond this).
const HEAP_TRACE_CAP: usize = 32_768;

/// If more than this many collections would occur in a run, identical
/// cycles are fast-forwarded in batches.
const BATCH_THRESHOLD_CYCLES: f64 = 60_000.0;

/// Maximum cycles folded into one batch step.
const BATCH_MAX: u64 = 10_000;

/// Floor on the mutator throttle factor while a concurrent collector is
/// pacing allocation (a fully stopped mutator cannot restart the clock).
const THROTTLE_FLOOR: f64 = 0.02;

/// Clock gain of Core Performance Boost relative to the fixed base clock
/// (§6.1.3's frequency-scaling experiment). A fully CPU-bound workload
/// (freq sensitivity 1.0) speeds up by this much; memory-bound workloads
/// see proportionally less — reproducing the PFS statistic's spread.
const BOOST_CLOCK_GAIN: f64 = 0.20;

/// Run one iteration of `spec` under `config`.
///
/// # Errors
///
/// * [`RunError::InvalidConfig`] if the configuration fails validation.
/// * [`RunError::OutOfMemory`] if the live set cannot fit or collections
///   become futile.
/// * [`RunError::GcThrash`] if the simulation's safety bounds trip.
///
/// # Examples
///
/// ```
/// use chopin_runtime::engine::run;
/// use chopin_runtime::spec::MutatorSpec;
/// use chopin_runtime::config::RunConfig;
/// use chopin_runtime::collector::CollectorKind;
/// use chopin_runtime::time::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = MutatorSpec::builder("demo")
///     .threads(4)
///     .total_work(SimDuration::from_millis(50))
///     .total_allocation(256 << 20)
///     .live_range(8 << 20, 16 << 20)
///     .build()?;
/// let result = run(&spec, &RunConfig::new(64 << 20, CollectorKind::G1))?;
/// assert!(result.telemetry().gc_count > 0, "a 256MB churn needs GC");
/// # Ok(())
/// # }
/// ```
pub fn run(spec: &MutatorSpec, config: &RunConfig) -> Result<RunResult, RunError> {
    run_with_observer(spec, config, &mut NoopObserver)
}

/// Run one iteration of `spec` under `config`, delivering every engine
/// transition to `observer` as a [`chopin_obs::Event`].
///
/// The engine is monomorphised over the observer type, so [`run`] (which
/// passes [`NoopObserver`]) compiles the hooks away entirely. Observers
/// are passive: the result is bit-identical whatever observer is attached
/// (the `observer_determinism` integration test asserts this).
///
/// # Errors
///
/// Same as [`run`].
///
/// # Examples
///
/// ```
/// use chopin_obs::EventRecorder;
/// use chopin_runtime::engine::run_with_observer;
/// use chopin_runtime::spec::MutatorSpec;
/// use chopin_runtime::config::RunConfig;
/// use chopin_runtime::collector::CollectorKind;
/// use chopin_runtime::time::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = MutatorSpec::builder("demo")
///     .threads(4)
///     .total_work(SimDuration::from_millis(50))
///     .total_allocation(256 << 20)
///     .live_range(8 << 20, 16 << 20)
///     .build()?;
/// let mut rec = EventRecorder::new();
/// let result = run_with_observer(&spec, &RunConfig::new(64 << 20, CollectorKind::G1), &mut rec)?;
/// assert!(result.telemetry().gc_count > 0);
/// assert!(rec.events().any(|e| e.type_label() == "pause_begin"));
/// # Ok(())
/// # }
/// ```
pub fn run_with_observer<O: Observer>(
    spec: &MutatorSpec,
    config: &RunConfig,
    observer: &mut O,
) -> Result<RunResult, RunError> {
    run_with_observer_and_faults(spec, config, observer, NoFaults)
}

/// Run one iteration of `spec` under `config` with the fault windows of
/// `plan` injected at their scheduled simulated times.
///
/// Fault-injected runs are exactly as deterministic as clean ones: the
/// plan is pure data and the engine transitions windows at exact simulated
/// times, so the same plan yields bit-identical results. The plan should
/// already be validated ([`FaultPlan::validate`]); malformed windows are
/// simply never active.
///
/// # Errors
///
/// Same as [`run`] — note that a harsh enough plan can legitimately drive
/// a run into [`RunError::OutOfMemory`] or [`RunError::GcThrash`]; that is
/// the point of injecting faults.
///
/// # Examples
///
/// ```
/// use chopin_faults::{FaultKind, FaultPlan};
/// use chopin_runtime::engine::{run, run_with_faults};
/// use chopin_runtime::spec::MutatorSpec;
/// use chopin_runtime::config::RunConfig;
/// use chopin_runtime::collector::CollectorKind;
/// use chopin_runtime::time::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = MutatorSpec::builder("demo")
///     .threads(4)
///     .total_work(SimDuration::from_millis(50))
///     .total_allocation(256 << 20)
///     .live_range(8 << 20, 16 << 20)
///     .build()?;
/// let config = RunConfig::new(64 << 20, CollectorKind::G1).with_noise(0.0);
/// let clean = run(&spec, &config)?;
/// let plan = FaultPlan::new(7).with_window(
///     1_000_000,
///     20_000_000,
///     FaultKind::AllocSpike { factor: 3.0 },
/// );
/// let faulted = run_with_faults(&spec, &config, &plan)?;
/// assert!(faulted.telemetry().faults_injected > 0);
/// assert!(faulted.telemetry().gc_count > clean.telemetry().gc_count);
/// # Ok(())
/// # }
/// ```
pub fn run_with_faults(
    spec: &MutatorSpec,
    config: &RunConfig,
    plan: &FaultPlan,
) -> Result<RunResult, RunError> {
    run_with_observer_and_faults(spec, config, &mut NoopObserver, ScheduledFaults::new(plan))
}

/// Run one iteration of `spec` under `config` with both an observer and a
/// fault clock attached — the fully general entry point that [`run`],
/// [`run_with_observer`] and [`run_with_faults`] specialise.
///
/// The engine is monomorphised over both hooks: [`NoFaults`] advertises
/// `NOOP = true` and every fault branch is guarded by that constant, so
/// the no-fault instantiations compile to the pre-fault engine and stay
/// bit-identical (asserted by the `fault_determinism` integration tests).
///
/// # Errors
///
/// Same as [`run_with_faults`].
pub fn run_with_observer_and_faults<O: Observer, F: FaultClock>(
    spec: &MutatorSpec,
    config: &RunConfig,
    observer: &mut O,
    faults: F,
) -> Result<RunResult, RunError> {
    let config = config
        .clone()
        .validated()
        .map_err(|e| RunError::InvalidConfig(e.to_string()))?;
    Engine::new(spec, &config, observer, faults).run()
}

/// The observer-side pause kind for a collection.
fn pause_kind(kind: CollectionKind) -> PauseKind {
    match kind {
        CollectionKind::Young => PauseKind::Young,
        CollectionKind::Full => PauseKind::Full,
        CollectionKind::Concurrent => PauseKind::ConcurrentMark,
        CollectionKind::Degenerate => PauseKind::Degenerate,
    }
}

/// The observer-side trigger reason for a collection request.
fn trigger_reason(request: CollectionRequest) -> TriggerReason {
    match request {
        CollectionRequest::Normal => TriggerReason::OccupancyThreshold,
        CollectionRequest::Degenerate => TriggerReason::Exhaustion,
        CollectionRequest::Full => TriggerReason::PeriodicFull,
    }
}

/// A concurrent cycle in flight (Shenandoah/ZGC).
#[derive(Debug, Clone, Copy)]
struct ActiveCycle {
    work_remaining: f64,
    live_after: f64,
    alloc_at_trigger: f64,
}

struct Engine<'a, O: Observer, F: FaultClock> {
    spec: &'a MutatorSpec,
    config: RunConfig,
    model: CollectorModel,
    obs: &'a mut O,
    faults: F,

    now: SimTime,
    progress: f64,
    total_work: f64,
    alloc_intensity: f64,
    heap: HeapState,
    telemetry: Telemetry,
    trace: ProgressTrace,

    /// Effective per-thread speed of mutator execution after the machine's
    /// sensitivity switches (boost/slow-memory/reduced-LLC) are applied
    /// through the workload's sensitivities.
    mutator_speed: f64,
    /// Effective per-thread speed of collector work (collection is
    /// memory-bound, so the DRAM profile affects it; cache restriction and
    /// boost matter less).
    gc_speed: f64,

    cycle: Option<ActiveCycle>,
    /// Concurrent work with no reclamation side effect (G1 marking).
    backlog: f64,
    cycles_since_full: u32,
    futile_streak: u32,
    slices: u64,
    heap_trace_stride: u64,
    batching: bool,
    /// Open pacing interval: (onset time, harshest throttle so far).
    throttle_open: Option<(SimTime, f64)>,
    /// The fault sample taken at the top of the current slice (IDENTITY
    /// when the fault clock is [`NoFaults`]).
    fault_now: FaultSample,
    /// Open fault intervals: (onset time, harshest magnitude so far),
    /// indexed by fault-kind bit position.
    open_faults: [Option<(SimTime, f64)>; 5],
}

impl<'a, O: Observer, F: FaultClock> Engine<'a, O, F> {
    fn new(spec: &'a MutatorSpec, config: &RunConfig, obs: &'a mut O, faults: F) -> Self {
        let model = config
            .collector_model_override()
            .cloned()
            .unwrap_or_else(|| config.collector().model());
        let mut rng = SmallRng::seed_from_u64(config.seed() ^ fxhash(spec.name()));
        // Irwin–Hall approximation of a standard normal for invocation noise.
        let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        let noise_factor = (1.0 + config.noise() * z).max(0.5);

        // The compiler configuration scales the whole run's CPU demand by
        // the workload's published sensitivity (PCC for -Xcomp, PIN for
        // -Xint); the tiered default is the baseline.
        let compiler_factor = match config.compiler_mode() {
            crate::config::CompilerMode::Tiered => 1.0,
            crate::config::CompilerMode::ForcedC2 => 1.0 + spec.forced_c2_cost(),
            crate::config::CompilerMode::InterpreterOnly => 1.0 + spec.interpreter_cost(),
        };
        let total_work = spec.total_work().as_nanos() as f64
            * config.work_scale()
            * noise_factor
            * compiler_factor;
        let alloc_intensity = spec.total_allocation() as f64 / total_work;
        let inflation = if config.compressed_oops() {
            1.0
        } else {
            spec.uncompressed_inflation()
        };
        let heap = HeapState::new(config.heap_bytes() as f64, inflation);

        // Estimate total collections to decide whether to fast-forward
        // through thrash regimes.
        let live_peak_heap = spec.live_peak() as f64 * inflation;
        let alloc_total_heap = spec.total_allocation() as f64 * inflation;
        let est_headroom = (heap.capacity() * model.trigger_occupancy - live_peak_heap).max(1.0);
        let est_cycles = alloc_total_heap / est_headroom;

        let machine = config.machine();
        let mut mutator_speed = machine.speed_factor();
        if machine.frequency_boost() {
            mutator_speed *= 1.0 + BOOST_CLOCK_GAIN * spec.freq_sensitivity();
        }
        if machine.slow_memory() {
            mutator_speed /= 1.0 + spec.memory_sensitivity();
        }
        if machine.reduced_llc() {
            mutator_speed /= (1.0 + spec.llc_sensitivity()).max(0.5);
        }
        let mut gc_speed = machine.speed_factor();
        if machine.frequency_boost() {
            gc_speed *= 1.0 + BOOST_CLOCK_GAIN * 0.5;
        }
        if machine.slow_memory() {
            gc_speed /= 1.3;
        }

        Engine {
            spec,
            config: config.clone(),
            model,
            obs,
            faults,
            now: SimTime::ZERO,
            progress: 0.0,
            total_work,
            alloc_intensity,
            heap,
            telemetry: Telemetry::new(),
            trace: ProgressTrace::new(),
            mutator_speed,
            gc_speed,
            cycle: None,
            backlog: 0.0,
            cycles_since_full: 0,
            futile_streak: 0,
            slices: 0,
            heap_trace_stride: 1,
            // Faults break the identical-cycles premise of the batching
            // fast-forward, so batching only arms on the no-fault path.
            batching: est_cycles > BATCH_THRESHOLD_CYCLES && F::NOOP,
            throttle_open: None,
            fault_now: FaultSample::IDENTITY,
            open_faults: [None; 5],
        }
    }

    /// The per-kind magnitude an event/interval reports for `kind` under
    /// the combined sample `fs`.
    fn fault_magnitude(kind: ObsFaultKind, fs: &FaultSample) -> f64 {
        match kind {
            ObsFaultKind::AllocSpike => fs.alloc_factor,
            ObsFaultKind::HeapSqueeze => fs.capacity_factor,
            ObsFaultKind::GcSlowdown => 1.0 / fs.gc_speed_factor,
            ObsFaultKind::StallStorm => fs.throttle_cap,
            ObsFaultKind::ForceDegenerate => 1.0,
        }
    }

    /// Open, extend or close per-kind fault intervals against the slice's
    /// sample, emitting onset/clear events and recording telemetry. Driven
    /// purely by the sampled fault state, so fault-injected runs stay
    /// deterministic. Only called when the fault clock is live.
    fn note_faults(&mut self, fs: &FaultSample) {
        for kind in ObsFaultKind::ALL {
            let i = kind.index();
            let active = fs.active_mask & (1u8 << i) != 0;
            match (self.open_faults[i], active) {
                (None, true) => {
                    let magnitude = Self::fault_magnitude(kind, fs);
                    self.obs.record(Event::FaultOnset {
                        at: self.now.as_nanos(),
                        kind,
                        magnitude,
                    });
                    self.open_faults[i] = Some((self.now, magnitude));
                }
                (Some((start, harshest)), true) => {
                    let magnitude = Self::fault_magnitude(kind, fs);
                    // Harsher = larger for spikes/slowdowns, smaller for
                    // the capacity and throttle caps.
                    let harsher = match kind {
                        ObsFaultKind::AllocSpike | ObsFaultKind::GcSlowdown => {
                            harshest.max(magnitude)
                        }
                        ObsFaultKind::HeapSqueeze | ObsFaultKind::StallStorm => {
                            harshest.min(magnitude)
                        }
                        ObsFaultKind::ForceDegenerate => 1.0,
                    };
                    self.open_faults[i] = Some((start, harsher));
                }
                (Some(open), false) => self.close_fault_interval(kind, open),
                (None, false) => {}
            }
        }
    }

    /// Close one fault interval: emit the clear event and record the
    /// telemetry interval with the harshest magnitude seen.
    fn close_fault_interval(&mut self, kind: ObsFaultKind, (start, harshest): (SimTime, f64)) {
        self.open_faults[kind.index()] = None;
        self.obs.record(Event::FaultClear {
            at: self.now.as_nanos(),
            kind,
        });
        let fault_kind = match kind {
            ObsFaultKind::AllocSpike => chopin_faults::FaultKind::AllocSpike { factor: harshest },
            ObsFaultKind::HeapSqueeze => chopin_faults::FaultKind::HeapSqueeze {
                fraction: 1.0 - harshest,
            },
            ObsFaultKind::GcSlowdown => chopin_faults::FaultKind::GcSlowdown { factor: harshest },
            ObsFaultKind::StallStorm => chopin_faults::FaultKind::StallStorm { throttle: harshest },
            ObsFaultKind::ForceDegenerate => chopin_faults::FaultKind::ForceDegenerate,
        };
        self.telemetry.record_fault_interval(FaultInterval {
            start,
            duration: self.now.saturating_since(start),
            kind: fault_kind,
        });
    }

    /// Close every fault interval still open (the run ended inside a
    /// window).
    fn close_all_fault_intervals(&mut self) {
        if F::NOOP {
            return;
        }
        for kind in ObsFaultKind::ALL {
            if let Some(open) = self.open_faults[kind.index()] {
                self.close_fault_interval(kind, open);
            }
        }
    }

    /// Record a pacing transition: opens/extends/closes the current
    /// throttle interval and emits the onset/release events. Driven purely
    /// by engine state, so the recorded intervals are observer-independent.
    fn note_throttle(&mut self, throttle: f64) {
        let throttled = throttle < 1.0;
        match &mut self.throttle_open {
            None if throttled => {
                self.obs.record(Event::ThrottleOnset {
                    at: self.now.as_nanos(),
                    throttle,
                });
                self.throttle_open = Some((self.now, throttle));
            }
            Some((_, min)) if throttled => *min = min.min(throttle),
            Some(_) => self.close_throttle_interval(),
            None => {}
        }
    }

    /// Close any open pacing interval at the current time.
    fn close_throttle_interval(&mut self) {
        if let Some((start, min_throttle)) = self.throttle_open.take() {
            self.obs.record(Event::ThrottleRelease {
                at: self.now.as_nanos(),
            });
            self.telemetry.record_throttle_interval(ThrottleInterval {
                start,
                duration: self.now.saturating_since(start),
                min_throttle,
            });
        }
    }

    /// Emit the out-of-memory event and build the error (every OOM exit
    /// goes through here so observers always see the declaration).
    fn declare_oom(&mut self) -> RunError {
        self.obs.record(Event::OomDeclared {
            at: self.now.as_nanos(),
            live_bytes: self.live_heap(self.progress),
            capacity_bytes: self.heap.capacity(),
        });
        self.oom()
    }

    /// The mutator-throughput fraction lost to GC barriers. Barriers are
    /// CPU instructions, so their wall-clock bite scales with how
    /// CPU-bound the workload is: kernel time sees no barriers, and a
    /// workload insensitive to CPU frequency (jme's GPU-bound rendering,
    /// kafka's kernel-dominated I/O) hides most of the remaining tax
    /// behind its non-CPU critical path.
    fn effective_barrier_tax(&self) -> f64 {
        let cpu_boundness = 0.3 + 0.7 * self.spec.freq_sensitivity();
        self.model.barrier_tax * (1.0 - self.spec.kernel_fraction()) * cpu_boundness
    }

    fn live_heap(&self, progress: f64) -> f64 {
        self.spec.live_at(progress) * self.heap.inflation()
    }

    fn oom(&self) -> RunError {
        RunError::OutOfMemory {
            at: self.now,
            live_bytes: self.live_heap(self.progress),
            capacity: self.heap.capacity(),
        }
    }

    fn run(mut self) -> Result<RunResult, RunError> {
        // The live floor occupies the heap before the iteration starts.
        let live0 = self.live_heap(0.0);
        if live0 >= self.heap.capacity() * (1.0 - FUTILE_FREE_FRACTION) {
            return Err(self.declare_oom());
        }
        self.heap.reclaim_to(live0);

        let hw = self.config.machine().hardware_threads() as f64;
        let speed = self.mutator_speed;
        let gc_speed = self.gc_speed;
        let eff_cpus = self
            .spec
            .effective_cpus()
            .min(hw)
            .min(self.spec.threads() as f64);
        let tax = self.effective_barrier_tax();
        let threads = self.spec.threads() as f64;
        let inflation = self.heap.inflation();
        let conc_threads = self.model.concurrent_thread_count(hw as u32) as f64;
        let trigger_point = self.heap.capacity() * self.model.trigger_occupancy;
        let capacity = self.heap.capacity();
        let eps_work = 1.0;

        while self.progress < self.total_work - eps_work {
            self.slices += 1;
            if self.slices > MAX_SLICES {
                return Err(RunError::GcThrash {
                    at: self.now,
                    gc_count: self.telemetry.gc_count,
                });
            }

            // --- Sample the fault plane -----------------------------------
            // Every use below is guarded by `F::NOOP`, so the no-fault
            // instantiation monomorphises to the pre-fault engine and its
            // results stay bit-identical.
            let fs = if F::NOOP {
                FaultSample::IDENTITY
            } else {
                self.faults.sample(self.now.as_nanos())
            };
            if !F::NOOP {
                self.note_faults(&fs);
                self.fault_now = fs;
            }
            let alloc_intensity_eff = if F::NOOP {
                self.alloc_intensity
            } else {
                self.alloc_intensity * fs.alloc_factor
            };
            let gc_speed_eff = if F::NOOP {
                gc_speed
            } else {
                gc_speed * fs.gc_speed_factor
            };
            let capacity_eff = if F::NOOP {
                capacity
            } else {
                capacity * fs.capacity_factor
            };
            let trigger_point_eff = if F::NOOP {
                trigger_point
            } else {
                trigger_point * fs.capacity_factor
            };
            let free_eff = if F::NOOP {
                self.heap.free()
            } else {
                (capacity_eff - self.heap.occupied()).max(0.0)
            };

            // --- Rates for this slice -------------------------------------
            let gc_active = self.cycle.is_some() || self.backlog > 0.0;
            let gc_cpus = if gc_active { conc_threads } else { 0.0 };
            let avail = (hw - gc_cpus).max(1.0);
            let m_cpus = eff_cpus.min(avail);
            let unthrottled_progress_rate = m_cpus * speed * (1.0 - tax);
            let unthrottled_alloc_heap_rate =
                unthrottled_progress_rate * alloc_intensity_eff * inflation;
            let gc_rate = gc_cpus * gc_speed_eff * self.model.gc_parallel_efficiency;

            // Shenandoah/ZGC pacing: slow the mutator so allocation fits in
            // the remaining headroom until the cycle completes.
            let mut throttle = 1.0;
            if let Some(cycle) = &self.cycle {
                if self.model.exhaustion == ExhaustionPolicy::ThrottleAllocation && gc_rate > 0.0 {
                    let remaining_wall = cycle.work_remaining / gc_rate;
                    let projected = unthrottled_alloc_heap_rate * remaining_wall;
                    let free = free_eff;
                    if projected > free * 0.9 {
                        throttle = ((free * 0.9) / projected).clamp(THROTTLE_FLOOR, 1.0);
                        if free < capacity_eff * 0.002 {
                            // Hard allocation stall.
                            throttle = 0.0;
                        }
                    }
                }
            }
            if !F::NOOP {
                // A stall storm caps the throttle for the window's span.
                // With a boundary ahead the slice is bounded there, so even
                // a full stall rides through and the clock keeps advancing;
                // with none (defensive — an active window always schedules
                // its close) the floor prevents an infinite stall.
                let cap = if fs.next_change_ns == u64::MAX {
                    fs.throttle_cap.max(THROTTLE_FLOOR)
                } else {
                    fs.throttle_cap
                };
                throttle = throttle.min(cap);
            }

            let progress_rate = unthrottled_progress_rate * throttle;
            let alloc_heap_rate = unthrottled_alloc_heap_rate * throttle;
            let cpu_burn_rate = m_cpus * throttle;
            self.note_throttle(throttle);

            // --- Time to each candidate event -----------------------------
            let mut dt = if progress_rate > 0.0 {
                (self.total_work - self.progress) / progress_rate
            } else {
                f64::INFINITY
            };
            let mut fire_trigger = false;
            let mut fire_completion = false;

            // GC trigger (only when no cycle is already running).
            if self.cycle.is_none() && alloc_heap_rate > 0.0 {
                let to_trigger =
                    (trigger_point_eff - self.heap.occupied()).max(0.0) / alloc_heap_rate;
                if to_trigger <= dt {
                    dt = to_trigger;
                    fire_trigger = true;
                }
            }

            // Concurrent cycle completion / backlog drain.
            if gc_rate > 0.0 {
                let outstanding =
                    self.cycle.as_ref().map(|c| c.work_remaining).unwrap_or(0.0) + self.backlog;
                let to_done = outstanding / gc_rate;
                if to_done < dt {
                    dt = to_done;
                    fire_trigger = false;
                    fire_completion = true;
                }
            }

            // Re-evaluate throttling at the capacity boundary, and bound the
            // slice while a cycle is in flight so pacing stays responsive.
            if self.cycle.is_some() {
                if alloc_heap_rate > 0.0 {
                    let to_full = free_eff / alloc_heap_rate;
                    if to_full < dt {
                        dt = to_full;
                        fire_trigger = false;
                        fire_completion = false;
                    }
                }
                let cap = 2e6; // 2ms responsiveness bound
                if dt > cap {
                    dt = cap;
                    fire_trigger = false;
                    fire_completion = false;
                }
            }

            // Bound the slice at the next fault boundary so windows open
            // and close at exact simulated times (this is what keeps
            // fault-injected runs deterministic, and what lets a hard
            // stall storm ride through to its scheduled end).
            if !F::NOOP && fs.next_change_ns != u64::MAX {
                let to_boundary = (fs.next_change_ns - self.now.as_nanos()) as f64;
                if to_boundary < dt {
                    dt = to_boundary;
                    fire_trigger = false;
                    fire_completion = false;
                }
            }

            if !dt.is_finite() {
                // No progress and no pending GC work: the mutator is stalled
                // forever (should be unreachable — a stall implies an active
                // cycle, which bounds dt above).
                return Err(RunError::GcThrash {
                    at: self.now,
                    gc_count: self.telemetry.gc_count,
                });
            }

            // --- Integrate the slice --------------------------------------
            let dt_ns = dt.max(0.0);
            let end = self.now + SimDuration::from_nanos(dt_ns.ceil() as u64);
            let span = (end - self.now).as_nanos() as f64;
            if span > 0.0 {
                self.obs.record(Event::SliceBegin {
                    at: self.now.as_nanos(),
                });
                self.progress += progress_rate * span;
                // Trapezoidal area under the occupancy curve (occupancy
                // grows linearly within a slice).
                let occ0 = self.heap.occupied();
                self.heap
                    .allocate(progress_rate * span * alloc_intensity_eff);
                let occ1 = self.heap.occupied();
                self.telemetry.heap_byte_seconds += (occ0 + occ1) / 2.0 * span / 1e9;
                self.telemetry.mutator_cpu_ns += cpu_burn_rate * span;
                if throttle < 1.0 {
                    self.telemetry.throttled_wall +=
                        SimDuration::from_nanos((span * (1.0 - throttle)).round() as u64);
                }
                // Drain concurrent GC work.
                let gc_done = gc_rate * span;
                self.telemetry.gc_concurrent_cpu_ns += gc_cpus * span;
                let mut remaining = gc_done;
                if let Some(cycle) = &mut self.cycle {
                    let used = remaining.min(cycle.work_remaining);
                    cycle.work_remaining -= used;
                    remaining -= used;
                }
                self.backlog = (self.backlog - remaining).max(0.0);
                self.trace.push(self.now, end, progress_rate / threads);
                self.now = end;
                self.obs.record(Event::SliceEnd {
                    at: end.as_nanos(),
                    progress_rate,
                    throttle,
                });
            }

            // --- Handle events --------------------------------------------
            if fire_completion {
                if let Some(cycle) = self.cycle.take() {
                    if cycle.work_remaining <= 1.0 {
                        self.complete_concurrent_cycle(cycle)?;
                    } else {
                        // Completion actually belonged to backlog; keep cycle.
                        self.cycle = Some(cycle);
                    }
                }
            }

            if fire_trigger && self.cycle.is_none() {
                self.handle_trigger(
                    hw,
                    gc_speed_eff,
                    threads,
                    inflation,
                    trigger_point_eff,
                    capacity_eff,
                )?;
            }
        }

        // The run ends mid-interval if pacing was still engaged, and
        // inside fault windows if the plan outlives the work.
        self.close_throttle_interval();
        self.close_all_fault_intervals();

        if self.telemetry.heap_trace.len() > HEAP_TRACE_CAP {
            let stride = self.telemetry.heap_trace.len() / HEAP_TRACE_CAP + 1;
            let kept: Vec<_> = self
                .telemetry
                .heap_trace
                .iter()
                .step_by(stride)
                .copied()
                .collect();
            self.telemetry.heap_trace = kept;
        }

        Ok(RunResult::new(
            self.spec.name().to_string(),
            self.config.clone(),
            self.now - SimTime::ZERO,
            self.telemetry,
            self.trace,
        ))
    }

    /// Plan and execute the collection that fires when occupancy reaches
    /// the trigger point.
    // The trigger handler threads the full collection context (heap
    // watermarks, cycle state, pacing) — splitting it would duplicate
    // the engine's field list as a one-off struct.
    #[allow(clippy::too_many_arguments)]
    fn handle_trigger(
        &mut self,
        hw: f64,
        speed: f64,
        threads: f64,
        inflation: f64,
        trigger_point: f64,
        capacity: f64,
    ) -> Result<(), RunError> {
        if self.model.exhaustion == ExhaustionPolicy::Fail {
            // The Epsilon collector never reclaims: exhaustion is fatal.
            return Err(self.declare_oom());
        }
        // `capacity` is the fault-effective capacity (identical to the real
        // capacity when no squeeze is active).
        let free = if F::NOOP {
            self.heap.free()
        } else {
            (capacity - self.heap.occupied()).max(0.0)
        };
        let mut request = match self.model.full_gc_period {
            Some(period) => {
                // Degenerate if concurrent marking has fallen far behind.
                let degenerate = self.model.exhaustion == ExhaustionPolicy::DegenerateFull
                    && self.backlog > 0.0
                    && free < capacity * 0.02;
                if degenerate {
                    CollectionRequest::Degenerate
                } else if self.cycles_since_full + 1 >= period {
                    CollectionRequest::Full
                } else {
                    CollectionRequest::Normal
                }
            }
            None => CollectionRequest::Normal,
        };
        // An active forced-degenerate fault turns ordinary collections into
        // degenerate STW fallbacks for every collector.
        if !F::NOOP && self.fault_now.force_degenerate && request == CollectionRequest::Normal {
            request = CollectionRequest::Degenerate;
        }
        self.obs.record(Event::GcTrigger {
            at: self.now.as_nanos(),
            reason: trigger_reason(request),
            occupied_bytes: self.heap.occupied(),
            capacity_bytes: capacity,
        });

        let input = CycleInput {
            live_bytes: self.live_heap(self.progress),
            allocated_since_gc: self.heap.allocated_since_gc(),
            survival_fraction: self.spec.survival_fraction(),
            mean_object_size: self.spec.mean_object_size() as f64,
            hardware_threads: hw as u32,
            machine_speed: speed,
        };
        let outcome = plan_cycle(&self.model, &input, request);

        if request == CollectionRequest::Normal {
            self.cycles_since_full += 1;
        } else {
            self.cycles_since_full = 0;
        }

        match outcome.kind {
            CollectionKind::Concurrent => {
                // Small STW pause (init/final mark), then the cycle runs.
                self.apply_pause(&outcome, threads);
                self.obs.record(Event::ConcurrentBegin {
                    at: self.now.as_nanos(),
                    work_cpu_ns: outcome.concurrent_work_cpu_ns,
                });
                self.cycle = Some(ActiveCycle {
                    work_remaining: outcome.concurrent_work_cpu_ns,
                    live_after: outcome.live_after,
                    alloc_at_trigger: self.heap.total_allocated(),
                });
                Ok(())
            }
            _ => {
                // Stop-the-world collection: pause, reclaim, maybe batch.
                self.apply_pause(&outcome, threads);
                self.backlog += outcome.concurrent_work_cpu_ns;
                self.finish_reclaim(outcome.live_after)?;
                if self.batching {
                    self.batch_identical_cycles(
                        &outcome,
                        &input,
                        threads,
                        inflation,
                        trigger_point,
                    )?;
                }
                Ok(())
            }
        }
    }

    /// Advance the clock through a stop-the-world pause.
    fn apply_pause(&mut self, outcome: &CycleOutcome, threads: f64) {
        let start = self.now;
        let end = self.now + outcome.stw_wall;
        let kind = pause_kind(outcome.kind);
        self.obs.record(Event::PauseBegin {
            at: start.as_nanos(),
            kind,
        });
        self.trace.push(start, end, 0.0);
        self.telemetry.heap_byte_seconds +=
            self.heap.occupied() * outcome.stw_wall.as_nanos() as f64 / 1e9;
        self.now = end;
        self.obs.record(Event::PauseEnd {
            at: end.as_nanos(),
            kind,
            gc_cpu_ns: outcome.stw_work_cpu_ns,
        });
        if self.telemetry.pauses.len() < PAUSE_RECORD_CAP {
            self.telemetry.record_pause(PauseRecord {
                start,
                duration: outcome.stw_wall,
                gc_cpu_ns: outcome.stw_work_cpu_ns,
                kind: outcome.kind,
            });
        } else {
            self.telemetry
                .record_batched_pauses(1, outcome.stw_wall, outcome.stw_work_cpu_ns);
        }
        let _ = threads;
    }

    /// Reclaim and run the futility / OOM bookkeeping.
    ///
    /// A collection is futile when it leaves no usable allocation room —
    /// measured against the collector's *trigger point*, not raw capacity:
    /// if occupancy after collection already sits at the trigger, the next
    /// collection fires immediately and the mutator can never run (a GC
    /// storm, which on a real JVM surfaces as an OutOfMemoryError with
    /// "GC overhead limit exceeded").
    fn finish_reclaim(&mut self, live_after: f64) -> Result<(), RunError> {
        self.heap.reclaim_to(live_after);
        self.record_heap_sample();
        // Futility is judged against the fault-effective capacity: a heap
        // squeeze shrinks the room a collection must clear, which is how
        // the squeeze reaches the futile-streak and OOM paths.
        let capacity = if F::NOOP {
            self.heap.capacity()
        } else {
            self.heap.capacity() * self.fault_now.capacity_factor
        };
        let trigger_point = capacity * self.model.trigger_occupancy;
        let room_to_trigger = trigger_point - self.heap.occupied();
        let free = if F::NOOP {
            self.heap.free()
        } else {
            (capacity - self.heap.occupied()).max(0.0)
        };
        let futile = free < capacity * FUTILE_FREE_FRACTION
            || room_to_trigger < capacity * (FUTILE_FREE_FRACTION / 2.0);
        if futile {
            self.futile_streak += 1;
            self.obs.record(Event::FutileCollection {
                at: self.now.as_nanos(),
                streak: self.futile_streak,
            });
            if self.futile_streak >= MAX_FUTILE {
                return Err(self.declare_oom());
            }
        } else {
            self.futile_streak = 0;
        }
        Ok(())
    }

    fn record_heap_sample(&mut self) {
        self.telemetry.gc_count += 1;
        let n = self.telemetry.gc_count;
        if n.is_multiple_of(self.heap_trace_stride) {
            self.telemetry
                .heap_trace
                .push(crate::telemetry::HeapSample {
                    time: self.now,
                    occupied_bytes: self.heap.occupied(),
                });
            if self.telemetry.heap_trace.len() >= HEAP_TRACE_CAP {
                self.heap_trace_stride *= 2;
                let kept: Vec<_> = self
                    .telemetry
                    .heap_trace
                    .iter()
                    .step_by(2)
                    .copied()
                    .collect();
                self.telemetry.heap_trace = kept;
            }
        }
    }

    /// Finish a Shenandoah/ZGC concurrent cycle: reclaim, leaving the
    /// allocation that happened during the cycle as floating garbage.
    fn complete_concurrent_cycle(&mut self, cycle: ActiveCycle) -> Result<(), RunError> {
        let floated = (self.heap.total_allocated() - cycle.alloc_at_trigger).max(0.0);
        self.obs.record(Event::ConcurrentEnd {
            at: self.now.as_nanos(),
            floated_bytes: floated,
        });
        self.finish_reclaim(cycle.live_after + floated)
    }

    /// Fast-forward through a long run of identical stop-the-world cycles.
    ///
    /// Preconditions: the collector is STW at this point (we just completed
    /// a reclaim), the live set is flat (past the build ramp) and there is
    /// positive headroom. All totals (progress, allocation, CPU, pauses,
    /// GC count) are updated exactly; individual pause records and heap
    /// samples are aggregated.
    fn batch_identical_cycles(
        &mut self,
        _last: &CycleOutcome,
        input: &CycleInput,
        threads: f64,
        inflation: f64,
        trigger_point: f64,
    ) -> Result<(), RunError> {
        let ramp_end = self.spec.build_fraction() * self.total_work;
        if self.progress < ramp_end {
            return Ok(());
        }
        let headroom = (trigger_point - self.heap.occupied()).max(0.0);
        if headroom <= 0.0 {
            return Ok(());
        }

        let hw = self.config.machine().hardware_threads() as f64;
        let speed = self.mutator_speed;
        let eff_cpus = self
            .spec
            .effective_cpus()
            .min(hw)
            .min(self.spec.threads() as f64);
        let tax = self.effective_barrier_tax();
        // During the batch the backlog (G1 concurrent work) drains on GC
        // threads; approximate by charging its CPU and reducing mutator
        // availability proportionally to its duty cycle.
        let progress_rate = eff_cpus * speed * (1.0 - tax);
        let alloc_heap_rate = progress_rate * self.alloc_intensity * inflation;

        let period_work = headroom / (self.alloc_intensity * inflation);
        let mutate_wall = headroom / alloc_heap_rate;

        // Re-plan a representative steady-state cycle with the batch's
        // allocation volume. Periodic full collections are amortised into
        // the per-cycle averages (one full every `full_gc_period` young
        // cycles), so batches can span full-GC boundaries with exact
        // totals.
        let steady_input = CycleInput {
            live_bytes: self.live_heap(self.progress),
            allocated_since_gc: headroom,
            ..*input
        };
        let young = plan_cycle(&self.model, &steady_input, CollectionRequest::Normal);
        let full = plan_cycle(&self.model, &steady_input, CollectionRequest::Full);
        let period = self
            .model
            .full_gc_period
            .map(|p| p as f64)
            .unwrap_or(f64::INFINITY);
        let blend = |y: f64, f: f64| y + (f - y).max(0.0) / period;

        let work_left = (self.total_work - self.progress).max(0.0);
        let k = ((work_left / period_work).floor() as u64).min(BATCH_MAX);
        if k < 2 {
            return Ok(());
        }

        let pause_wall = SimDuration::from_nanos(
            blend(
                young.stw_wall.as_nanos() as f64,
                full.stw_wall.as_nanos() as f64,
            )
            .round() as u64,
        );
        let pause_cpu = blend(young.stw_work_cpu_ns, full.stw_work_cpu_ns);
        let concurrent_cpu = blend(young.concurrent_work_cpu_ns, full.concurrent_work_cpu_ns);
        let span_mutate = SimDuration::from_nanos((mutate_wall * k as f64).round() as u64);
        let span_pause = pause_wall * k;
        let start = self.now;
        let end = self.now + span_mutate + span_pause;

        // Average worker rate over the merged segment.
        let total_progress = period_work * k as f64;
        let span_ns = (end - start).as_nanos() as f64;
        let avg_worker_rate = if span_ns > 0.0 {
            total_progress / span_ns / threads
        } else {
            0.0
        };
        self.trace.push(start, end, avg_worker_rate);
        self.now = end;
        self.obs.record(Event::BatchFastForward {
            at: start.as_nanos(),
            end: end.as_nanos(),
            cycles: k,
            pause_wall_each_ns: pause_wall.as_nanos(),
        });

        self.progress += total_progress;
        self.telemetry.mutator_cpu_ns += eff_cpus * mutate_wall * k as f64;
        // Occupancy saw-tooths between live_after and the trigger point
        // during the batch; its time-average is the midpoint.
        let mid = (young.live_after + trigger_point) / 2.0;
        self.telemetry.heap_byte_seconds += mid * span_ns / 1e9;
        self.telemetry
            .record_batched_pauses(k, pause_wall, pause_cpu);
        self.telemetry.gc_concurrent_cpu_ns += concurrent_cpu * k as f64;
        // record_heap_sample below adds the final count of the batch.
        self.telemetry.gc_count += k - 1;
        if period.is_finite() {
            self.cycles_since_full = ((self.cycles_since_full as u64 + k) % period as u64) as u32;
        }

        // Heap: k allocate/reclaim rounds net out to the same occupancy.
        let total_alloc_app = total_progress * self.alloc_intensity;
        self.heap.allocate(total_alloc_app);
        self.heap.reclaim_to(young.live_after);
        self.record_heap_sample();
        Ok(())
    }
}

/// Tiny deterministic string hash (FxHash-style) for seeding.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorKind;

    fn spec(alloc_mb: u64, live_mb: u64) -> MutatorSpec {
        MutatorSpec::builder("engine-test")
            .threads(8)
            .parallel_efficiency(0.5)
            .total_work(SimDuration::from_millis(200))
            .total_allocation(alloc_mb << 20)
            .live_range((live_mb / 2) << 20, live_mb << 20)
            .build_fraction(0.1)
            .survival_fraction(0.05)
            .build()
            .unwrap()
    }

    fn cfg(heap_mb: u64, collector: CollectorKind) -> RunConfig {
        RunConfig::new(heap_mb << 20, collector).with_noise(0.0)
    }

    #[test]
    fn run_is_deterministic() {
        let s = spec(512, 16);
        let a = run(&s, &cfg(64, CollectorKind::G1)).unwrap();
        let b = run(&s, &cfg(64, CollectorKind::G1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ_slightly() {
        let s = spec(512, 16);
        let base = cfg(64, CollectorKind::G1).with_noise(0.01);
        let a = run(&s, &base.clone().with_seed(1)).unwrap();
        let b = run(&s, &base.with_seed(2)).unwrap();
        assert_ne!(a.wall_time(), b.wall_time());
        let ratio = a.wall_time().as_secs_f64() / b.wall_time().as_secs_f64();
        assert!((0.8..1.25).contains(&ratio), "noise is small: {ratio}");
    }

    #[test]
    fn no_allocation_means_no_gc() {
        let s = MutatorSpec::builder("idle")
            .total_work(SimDuration::from_millis(10))
            .total_allocation(1024)
            .live_range(1 << 20, 1 << 20)
            .build()
            .unwrap();
        let r = run(&s, &cfg(64, CollectorKind::G1)).unwrap();
        assert_eq!(r.telemetry().gc_count, 0);
        assert!(r.telemetry().pauses.is_empty());
    }

    #[test]
    fn smaller_heap_means_more_gc_and_more_time() {
        let s = spec(1024, 16);
        let small = run(&s, &cfg(24, CollectorKind::Parallel)).unwrap();
        let large = run(&s, &cfg(128, CollectorKind::Parallel)).unwrap();
        assert!(small.telemetry().gc_count > large.telemetry().gc_count);
        assert!(small.wall_time() > large.wall_time());
        assert!(small.task_clock() > large.task_clock());
    }

    #[test]
    fn live_set_larger_than_heap_is_oom() {
        let s = spec(128, 100);
        let err = run(&s, &cfg(64, CollectorKind::G1)).unwrap_err();
        assert!(matches!(err, RunError::OutOfMemory { .. }), "{err:?}");
    }

    #[test]
    fn zgc_needs_more_heap_than_compressed_collectors() {
        // live peak 40MB compressed; ZGC inflates by 1.35 → ~54MB; a 52MB
        // heap fits G1 but not ZGC.
        let s = spec(256, 40);
        assert!(run(&s, &cfg(52, CollectorKind::G1)).is_ok());
        assert!(run(&s, &cfg(52, CollectorKind::Zgc)).is_err());
        assert!(run(&s, &cfg(96, CollectorKind::Zgc)).is_ok());
    }

    #[test]
    fn serial_has_longest_pauses_parallel_shorter() {
        let s = spec(1024, 32);
        let serial = run(&s, &cfg(96, CollectorKind::Serial)).unwrap();
        let parallel = run(&s, &cfg(96, CollectorKind::Parallel)).unwrap();
        assert!(
            serial.telemetry().max_pause().unwrap() > parallel.telemetry().max_pause().unwrap()
        );
    }

    #[test]
    fn concurrent_collectors_have_tiny_pauses_but_more_cpu() {
        let s = spec(1024, 32);
        let parallel = run(&s, &cfg(128, CollectorKind::Parallel)).unwrap();
        let zgc = run(&s, &cfg(128, CollectorKind::Zgc)).unwrap();
        assert!(
            zgc.telemetry().max_pause().unwrap() < parallel.telemetry().max_pause().unwrap(),
            "concurrent collector pauses are short"
        );
        assert!(
            zgc.task_clock() > parallel.task_clock(),
            "but total CPU is higher: {} vs {}",
            zgc.task_clock(),
            parallel.task_clock()
        );
        assert!(zgc.telemetry().gc_concurrent_cpu_ns > 0.0);
    }

    #[test]
    fn wall_time_at_least_sum_of_parts() {
        let s = spec(512, 16);
        let r = run(&s, &cfg(48, CollectorKind::G1)).unwrap();
        let pause = r.telemetry().total_pause_wall();
        assert!(r.wall_time() > pause, "wall includes mutator time");
        // Task clock ≥ wall × 1 cpu is not guaranteed, but mutator cpu must
        // be close to useful work (within barrier tax).
        assert!(r.telemetry().mutator_cpu_ns > 0.0);
    }

    #[test]
    fn progress_trace_covers_wall_time() {
        let s = spec(512, 16);
        let r = run(&s, &cfg(64, CollectorKind::Serial)).unwrap();
        assert_eq!(
            r.progress().end_time().unwrap().as_nanos(),
            r.wall_time().as_nanos()
        );
    }

    #[test]
    fn heap_trace_is_time_ordered_and_bounded() {
        let s = spec(2048, 16);
        let r = run(&s, &cfg(40, CollectorKind::G1)).unwrap();
        let trace = &r.telemetry().heap_trace;
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(trace.len() <= HEAP_TRACE_CAP);
        assert!(trace
            .iter()
            .all(|s| s.occupied_bytes <= (40u64 << 20) as f64));
    }

    #[test]
    fn batching_preserves_totals_approximately() {
        // A heap small enough to force batching; compare against the same
        // run with batching disabled via a larger threshold — instead we
        // check internal consistency: GC count is large and wall time is
        // dominated by GC.
        let s = spec(512 << 10, 8); // 512 GB of churn through a 12 MB heap
        let r = run(&s, &cfg(12, CollectorKind::Parallel)).unwrap();
        assert!(
            r.telemetry().gc_count > 50_000,
            "tiny heap thrash: {}",
            r.telemetry().gc_count
        );
        let pause_wall = r.telemetry().total_pause_wall();
        assert!(pause_wall > SimDuration::ZERO);
        assert!(r.wall_time() > pause_wall);
    }

    #[test]
    fn shenandoah_throttles_high_allocation_workloads() {
        // High allocation rate, many threads: Shenandoah must pace.
        let s = MutatorSpec::builder("hot-alloc")
            .threads(32)
            .parallel_efficiency(0.4)
            .total_work(SimDuration::from_millis(400))
            .total_allocation(16 << 30)
            .live_range(8 << 20, 12 << 20)
            .survival_fraction(0.02)
            .build()
            .unwrap();
        let shen = run(&s, &cfg(48, CollectorKind::Shenandoah)).unwrap();
        assert!(
            shen.telemetry().throttled_wall > SimDuration::ZERO,
            "pacing must engage"
        );
        let parallel = run(&s, &cfg(48, CollectorKind::Parallel)).unwrap();
        assert!(
            shen.wall_time() > parallel.wall_time(),
            "throttling costs wall time: shen {} vs parallel {}",
            shen.wall_time(),
            parallel.wall_time()
        );
    }

    #[test]
    fn idle_cores_absorb_concurrent_gc() {
        // Few mutator threads on a 32-thread machine: concurrent GC uses
        // idle cores, so ZGC's wall time stays close to Parallel's while its
        // task clock is much higher (the cassandra effect, Figure 5).
        let s = MutatorSpec::builder("low-parallel")
            .threads(4)
            .parallel_efficiency(0.8)
            .total_work(SimDuration::from_millis(200))
            .total_allocation(256 << 20)
            .live_range(32 << 20, 48 << 20)
            .survival_fraction(0.05)
            .build()
            .unwrap();
        let par = run(&s, &cfg(256, CollectorKind::Parallel)).unwrap();
        let zgc = run(&s, &cfg(256, CollectorKind::Zgc)).unwrap();
        let wall_ratio = zgc.wall_time().as_secs_f64() / par.wall_time().as_secs_f64();
        let cpu_ratio = zgc.task_clock().as_secs_f64() / par.task_clock().as_secs_f64();
        assert!(
            cpu_ratio > wall_ratio,
            "cpu {cpu_ratio} vs wall {wall_ratio}"
        );
        assert!(wall_ratio < 1.6, "wall stays comparable: {wall_ratio}");
    }
}

#[cfg(test)]
mod sensitivity_tests {
    use super::*;
    use crate::collector::CollectorKind;
    use crate::config::CompilerMode;
    use crate::machine::MachineConfig;

    fn spec() -> MutatorSpec {
        MutatorSpec::builder("sens")
            .threads(4)
            .parallel_efficiency(0.5)
            .total_work(SimDuration::from_millis(100))
            .total_allocation(128 << 20)
            .live_range(8 << 20, 16 << 20)
            .freq_sensitivity(1.0)
            .memory_sensitivity(0.25)
            .llc_sensitivity(0.10)
            .forced_c2_cost(0.5)
            .interpreter_cost(2.0)
            .build()
            .unwrap()
    }

    fn wall(machine: MachineConfig, mode: CompilerMode) -> f64 {
        let cfg = RunConfig::new(96 << 20, CollectorKind::G1)
            .with_machine(machine)
            .with_compiler_mode(mode)
            .with_noise(0.0);
        run(&spec(), &cfg).unwrap().wall_time().as_secs_f64()
    }

    #[test]
    fn frequency_boost_speeds_up_a_cpu_bound_workload() {
        let base = wall(MachineConfig::default(), CompilerMode::Tiered);
        let boosted = wall(
            MachineConfig::default().with_frequency_boost(true),
            CompilerMode::Tiered,
        );
        let speedup = base / boosted - 1.0;
        assert!(
            (speedup - 0.20).abs() < 0.03,
            "full sensitivity realises the full boost: {speedup:.3}"
        );
    }

    #[test]
    fn slow_memory_slows_by_the_workload_sensitivity() {
        let base = wall(MachineConfig::default(), CompilerMode::Tiered);
        let slow = wall(
            MachineConfig::default().with_slow_memory(true),
            CompilerMode::Tiered,
        );
        let slowdown = slow / base - 1.0;
        assert!((slowdown - 0.25).abs() < 0.05, "{slowdown:.3}");
    }

    #[test]
    fn reduced_llc_slows_by_the_workload_sensitivity() {
        let base = wall(MachineConfig::default(), CompilerMode::Tiered);
        let small = wall(
            MachineConfig::default().with_reduced_llc(true),
            CompilerMode::Tiered,
        );
        let slowdown = small / base - 1.0;
        assert!((slowdown - 0.10).abs() < 0.04, "{slowdown:.3}");
    }

    #[test]
    fn compiler_modes_scale_work_by_published_costs() {
        let tiered = wall(MachineConfig::default(), CompilerMode::Tiered);
        let c2 = wall(MachineConfig::default(), CompilerMode::ForcedC2);
        let interp = wall(MachineConfig::default(), CompilerMode::InterpreterOnly);
        assert!((c2 / tiered - 1.5).abs() < 0.1, "{}", c2 / tiered);
        assert!((interp / tiered - 3.0).abs() < 0.2, "{}", interp / tiered);
    }

    #[test]
    fn interpreter_mode_multiplies_gc_pressure_duration_not_allocation() {
        // Slower code allocates the same bytes, so GC count is unchanged
        // while wall time stretches.
        let cfg = RunConfig::new(48 << 20, CollectorKind::Parallel).with_noise(0.0);
        let tiered = run(&spec(), &cfg).unwrap();
        let interp = run(
            &spec(),
            &cfg.clone()
                .with_compiler_mode(CompilerMode::InterpreterOnly),
        )
        .unwrap();
        assert_eq!(
            tiered.telemetry().gc_count,
            interp.telemetry().gc_count,
            "allocation volume is mode-independent"
        );
        assert!(interp.wall_time() > tiered.wall_time() * 2);
    }
}
