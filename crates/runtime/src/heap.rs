//! Heap state and accounting.
//!
//! The simulation does not trace an object graph — the paper's metrics
//! depend only on aggregate quantities (live bytes, occupancy, headroom,
//! allocation volume), so the heap tracks exactly those, in *heap* bytes:
//! application bytes multiplied by the pointer-width inflation factor when
//! compressed pointers are disabled (ZGC "does not support compressed
//! pointers", §2, and the GMU nominal statistic records each workload's
//! uncompressed footprint).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised by heap accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The live set alone cannot fit in the configured capacity; no
    /// collector can make progress.
    LiveExceedsCapacity,
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::LiveExceedsCapacity => {
                write!(f, "live data exceeds heap capacity")
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// Aggregate heap state in heap bytes.
///
/// # Examples
///
/// ```
/// use chopin_runtime::heap::HeapState;
///
/// let mut heap = HeapState::new(1_000_000.0, 1.0);
/// heap.allocate(250_000.0);
/// assert_eq!(heap.occupied(), 250_000.0);
/// assert_eq!(heap.free(), 750_000.0);
/// heap.reclaim_to(100_000.0);
/// assert_eq!(heap.occupied(), 100_000.0);
/// assert_eq!(heap.allocated_since_gc(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeapState {
    capacity: f64,
    occupied: f64,
    allocated_since_gc: f64,
    total_allocated: f64,
    inflation: f64,
}

impl HeapState {
    /// Create a heap of `capacity` heap-bytes. `inflation` converts
    /// application bytes to heap bytes (1.0 with compressed pointers, the
    /// workload's GMU/GMD ratio without).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive/finite or `inflation < 1`.
    pub fn new(capacity: f64, inflation: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "heap capacity must be positive"
        );
        assert!(
            inflation.is_finite() && inflation >= 1.0,
            "inflation must be at least 1"
        );
        HeapState {
            capacity,
            occupied: 0.0,
            allocated_since_gc: 0.0,
            total_allocated: 0.0,
            inflation,
        }
    }

    /// Heap capacity in heap bytes.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Currently occupied heap bytes (live + garbage not yet reclaimed).
    pub fn occupied(&self) -> f64 {
        self.occupied
    }

    /// Free heap bytes.
    pub fn free(&self) -> f64 {
        (self.capacity - self.occupied).max(0.0)
    }

    /// Heap bytes allocated since the last reclamation.
    pub fn allocated_since_gc(&self) -> f64 {
        self.allocated_since_gc
    }

    /// Cumulative heap bytes allocated over the whole run.
    pub fn total_allocated(&self) -> f64 {
        self.total_allocated
    }

    /// The pointer-width inflation factor.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// Convert application bytes to heap bytes.
    pub fn inflate(&self, app_bytes: f64) -> f64 {
        app_bytes * self.inflation
    }

    /// Record an allocation of `app_bytes` application bytes. Occupancy is
    /// clamped at capacity; the engine is responsible for never allocating
    /// past a trigger point (it slices time so triggers are hit exactly).
    pub fn allocate(&mut self, app_bytes: f64) {
        debug_assert!(app_bytes >= 0.0 && app_bytes.is_finite());
        let heap_bytes = self.inflate(app_bytes);
        self.occupied = (self.occupied + heap_bytes).min(self.capacity);
        self.allocated_since_gc += heap_bytes;
        self.total_allocated += heap_bytes;
    }

    /// Complete a collection: occupancy drops to `live_after` heap bytes
    /// and the allocation-since-GC counter resets.
    ///
    /// Returns the number of heap bytes reclaimed (possibly zero — a futile
    /// collection — which the engine uses to detect out-of-memory
    /// livelock).
    pub fn reclaim_to(&mut self, live_after: f64) -> f64 {
        debug_assert!(live_after >= 0.0 && live_after.is_finite());
        let new_occupied = live_after.min(self.capacity);
        let reclaimed = (self.occupied - new_occupied).max(0.0);
        self.occupied = new_occupied;
        self.allocated_since_gc = 0.0;
        reclaimed
    }

    /// Check that a live set of `live_heap_bytes` can fit with at least
    /// `min_headroom_fraction` of capacity spare.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::LiveExceedsCapacity`] when it cannot.
    pub fn check_fits(
        &self,
        live_heap_bytes: f64,
        min_headroom_fraction: f64,
    ) -> Result<(), HeapError> {
        if live_heap_bytes > self.capacity * (1.0 - min_headroom_fraction) {
            Err(HeapError::LiveExceedsCapacity)
        } else {
            Ok(())
        }
    }

    /// Occupancy as a fraction of capacity.
    pub fn occupancy_fraction(&self) -> f64 {
        self.occupied / self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        HeapState::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "inflation must be at least 1")]
    fn deflation_rejected() {
        HeapState::new(1.0, 0.5);
    }

    #[test]
    fn inflation_scales_allocation() {
        let mut h = HeapState::new(1000.0, 1.5);
        h.allocate(100.0);
        assert_eq!(h.occupied(), 150.0);
        assert_eq!(h.total_allocated(), 150.0);
    }

    #[test]
    fn occupancy_clamps_at_capacity() {
        let mut h = HeapState::new(100.0, 1.0);
        h.allocate(500.0);
        assert_eq!(h.occupied(), 100.0);
        assert_eq!(h.free(), 0.0);
        assert_eq!(h.occupancy_fraction(), 1.0);
    }

    #[test]
    fn reclaim_reports_freed_bytes_and_resets_counter() {
        let mut h = HeapState::new(100.0, 1.0);
        h.allocate(80.0);
        let freed = h.reclaim_to(30.0);
        assert_eq!(freed, 50.0);
        assert_eq!(h.occupied(), 30.0);
        assert_eq!(h.allocated_since_gc(), 0.0);
        assert_eq!(h.total_allocated(), 80.0, "total survives reclamation");
    }

    #[test]
    fn futile_reclaim_reports_zero() {
        let mut h = HeapState::new(100.0, 1.0);
        h.allocate(50.0);
        assert_eq!(h.reclaim_to(60.0), 0.0);
    }

    #[test]
    fn check_fits_honours_headroom() {
        let h = HeapState::new(100.0, 1.0);
        assert!(h.check_fits(89.0, 0.1).is_ok());
        assert_eq!(h.check_fits(95.0, 0.1), Err(HeapError::LiveExceedsCapacity));
    }

    proptest! {
        #[test]
        fn prop_accounting_conserves(
            allocs in proptest::collection::vec(0.0f64..1e6, 1..50),
            capacity in 1e6f64..1e9,
        ) {
            let mut h = HeapState::new(capacity, 1.0);
            let mut expected_total = 0.0;
            for a in &allocs {
                h.allocate(*a);
                expected_total += a;
            }
            prop_assert!((h.total_allocated() - expected_total).abs() < 1e-3);
            prop_assert!(h.occupied() <= h.capacity() + 1e-9);
            prop_assert!(h.free() >= 0.0);
        }

        #[test]
        fn prop_reclaim_never_negative(
            alloc in 0.0f64..1e6,
            live_after in 0.0f64..2e6,
        ) {
            let mut h = HeapState::new(1e6, 1.0);
            h.allocate(alloc);
            let freed = h.reclaim_to(live_after);
            prop_assert!(freed >= 0.0);
            prop_assert!(h.occupied() <= h.capacity());
        }
    }
}
