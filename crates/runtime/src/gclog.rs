//! GC-log rendering: a human-readable, OpenJDK-unified-logging-style view
//! of a run's collection telemetry.
//!
//! §6.3 resolves the Shenandoah/h2 puzzle partly "by reviewing
//! Shenandoah's GC log" — the log is a first-class diagnostic artifact of
//! a managed runtime, so the simulation provides one too. Lines follow the
//! shape of OpenJDK's `-Xlog:gc` output:
//!
//! ```text
//! [0.312s][info][gc] GC(3) Pause Young (Normal) 23.1M->8.4M 1.204ms
//! [0.319s][info][gc] GC(4) Concurrent Cycle completed, heap 41.0M
//! ```

use crate::collector::CollectionKind;
use crate::result::RunResult;
use crate::telemetry::{FaultInterval, HeapSample, PauseRecord, ThrottleInterval};
use std::fmt::Write as _;

/// Render the run's GC log.
///
/// Pause records and post-collection heap samples are merged in time
/// order. Runs that fast-forwarded through GC-thrash regimes note the
/// batched pauses at the end (individual records above the cap are
/// aggregated, see the engine docs).
///
/// # Examples
///
/// ```
/// use chopin_runtime::collector::CollectorKind;
/// use chopin_runtime::config::RunConfig;
/// use chopin_runtime::engine::run;
/// use chopin_runtime::gclog::render_gc_log;
/// use chopin_runtime::spec::MutatorSpec;
/// use chopin_runtime::time::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = MutatorSpec::builder("demo")
///     .total_work(SimDuration::from_millis(50))
///     .total_allocation(256 << 20)
///     .live_range(8 << 20, 16 << 20)
///     .build()?;
/// let result = run(&spec, &RunConfig::new(48 << 20, CollectorKind::G1))?;
/// let log = render_gc_log(&result);
/// assert!(log.contains("Pause Young"));
/// assert!(log.lines().count() > 2);
/// # Ok(())
/// # }
/// ```
pub fn render_gc_log(result: &RunResult) -> String {
    let telemetry = result.telemetry();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[0.000s][info][gc] Using {} ({} hardware threads, {} heap)",
        result.config().collector(),
        result.config().machine().hardware_threads(),
        format_bytes(result.config().heap_bytes() as f64),
    );

    // Merge pauses, heap samples, pacing and fault intervals by time.
    enum Event<'a> {
        Pause(&'a PauseRecord),
        Heap(&'a HeapSample),
        Throttle(&'a ThrottleInterval),
        Fault(&'a FaultInterval),
    }
    let mut events: Vec<(u64, Event)> = telemetry
        .pauses
        .iter()
        .map(|p| (p.start.as_nanos(), Event::Pause(p)))
        .chain(
            telemetry
                .heap_trace
                .iter()
                .map(|h| (h.time.as_nanos(), Event::Heap(h))),
        )
        .chain(
            telemetry
                .throttle_intervals
                .iter()
                .map(|t| (t.start.as_nanos(), Event::Throttle(t))),
        )
        .chain(
            telemetry
                .fault_intervals
                .iter()
                .map(|f| (f.start.as_nanos(), Event::Fault(f))),
        )
        .collect();
    events.sort_by_key(|(t, _)| *t);

    let mut gc_id = 0usize;
    for (_, event) in events {
        match event {
            Event::Pause(p) => {
                let _ = writeln!(
                    out,
                    "[{:.3}s][info][gc] GC({gc_id}) {} {:.3}ms (gc cpu {:.3}ms)",
                    p.start.as_secs_f64(),
                    pause_name(p.kind),
                    p.duration.as_millis_f64(),
                    p.gc_cpu_ns / 1e6,
                );
                gc_id += 1;
            }
            Event::Heap(h) => {
                let _ = writeln!(
                    out,
                    "[{:.3}s][info][gc,heap] post-collection occupancy {}",
                    h.time.as_secs_f64(),
                    format_bytes(h.occupied_bytes),
                );
            }
            Event::Throttle(t) => {
                // OpenJDK prints pacing via `-Xlog:gc+ergo` ("Pacer for
                // ..."), and allocation stalls as their own lines.
                if t.stalled() {
                    let _ = writeln!(
                        out,
                        "[{:.3}s][info][gc,ergo] Allocation stall: mutator blocked for {:.3}ms",
                        t.start.as_secs_f64(),
                        t.duration.as_millis_f64(),
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "[{:.3}s][info][gc,ergo] Pacer: mutator throttled to {:.0}% for {:.3}ms",
                        t.start.as_secs_f64(),
                        t.min_throttle * 100.0,
                        t.duration.as_millis_f64(),
                    );
                }
            }
            Event::Fault(f) => {
                let _ = writeln!(
                    out,
                    "[{:.3}s][info][gc,fault] Injected {} (magnitude {:.3}) active for {:.3}ms",
                    f.start.as_secs_f64(),
                    f.kind.label(),
                    f.kind.magnitude(),
                    f.duration.as_millis_f64(),
                );
            }
        }
    }

    if telemetry.batched_pause_count > 0 {
        let _ = writeln!(
            out,
            "[{:.3}s][info][gc] ... plus {} batched pauses totalling {} (thrash fast-forward)",
            result.wall_time().as_secs_f64(),
            telemetry.batched_pause_count,
            telemetry.batched_pause_wall,
        );
    }
    if !telemetry.throttled_wall.is_zero() {
        let _ = writeln!(
            out,
            "[{:.3}s][info][gc] allocation throttled for {} of wall time (pacing/stalls)",
            result.wall_time().as_secs_f64(),
            telemetry.throttled_wall,
        );
    }
    if telemetry.faults_injected > 0 {
        let degenerate_note = if telemetry.degenerate_count > 0 {
            format!(", {} degenerate collections", telemetry.degenerate_count)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "[{:.3}s][info][gc,fault] {} fault intervals injected{degenerate_note} (deterministic fault plan)",
            result.wall_time().as_secs_f64(),
            telemetry.faults_injected,
        );
    }
    let _ = writeln!(
        out,
        "[{:.3}s][info][gc] {} collections, pause total {}, gc cpu {:.3}s, mutator cpu {:.3}s",
        result.wall_time().as_secs_f64(),
        telemetry.gc_count,
        telemetry.total_pause_wall(),
        telemetry.gc_cpu_ns() / 1e9,
        telemetry.mutator_cpu_ns / 1e9,
    );
    out
}

fn pause_name(kind: CollectionKind) -> &'static str {
    match kind {
        CollectionKind::Young => "Pause Young (Normal)",
        CollectionKind::Full => "Pause Full",
        CollectionKind::Concurrent => "Pause Init/Final Mark",
        CollectionKind::Degenerate => "Pause Degenerated GC",
    }
}

fn format_bytes(bytes: f64) -> String {
    if bytes >= (1u64 << 30) as f64 {
        format!("{:.2}G", bytes / (1u64 << 30) as f64)
    } else if bytes >= (1u64 << 20) as f64 {
        format!("{:.1}M", bytes / (1u64 << 20) as f64)
    } else {
        format!("{:.0}K", bytes / (1u64 << 10) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorKind;
    use crate::config::RunConfig;
    use crate::engine::run;
    use crate::spec::MutatorSpec;
    use crate::time::SimDuration;

    fn result_for(collector: CollectorKind) -> RunResult {
        let spec = MutatorSpec::builder("log-test")
            .threads(8)
            .parallel_efficiency(0.5)
            .total_work(SimDuration::from_millis(100))
            .total_allocation(512 << 20)
            .live_range(8 << 20, 16 << 20)
            .build()
            .unwrap();
        run(&spec, &RunConfig::new(48 << 20, collector).with_noise(0.0)).unwrap()
    }

    #[test]
    fn g1_log_contains_young_pauses_and_heap_lines() {
        let log = render_gc_log(&result_for(CollectorKind::G1));
        assert!(log.contains("Using G1"), "{log}");
        assert!(log.contains("Pause Young (Normal)"), "{log}");
        assert!(log.contains("post-collection occupancy"), "{log}");
        assert!(log.contains("collections, pause total"), "{log}");
    }

    #[test]
    fn serial_log_contains_full_pauses() {
        // Enough churn to cross the periodic full-GC schedule.
        let spec = MutatorSpec::builder("log-test-full")
            .threads(8)
            .parallel_efficiency(0.5)
            .total_work(SimDuration::from_millis(400))
            .total_allocation(4 << 30)
            .live_range(8 << 20, 16 << 20)
            .build()
            .unwrap();
        let result = run(
            &spec,
            &RunConfig::new(48 << 20, CollectorKind::Serial).with_noise(0.0),
        )
        .unwrap();
        let log = render_gc_log(&result);
        assert!(log.contains("Pause Full"), "{log}");
    }

    #[test]
    fn concurrent_log_marks_init_final_pauses() {
        let log = render_gc_log(&result_for(CollectorKind::Shenandoah));
        assert!(log.contains("Pause Init/Final Mark"), "{log}");
    }

    #[test]
    fn throttled_run_logs_pacer_intervals() {
        // The hot-allocation regime that engages Shenandoah's pacer (same
        // shape as the engine's throttling test).
        let spec = MutatorSpec::builder("log-test-pacing")
            .threads(32)
            .parallel_efficiency(0.4)
            .total_work(SimDuration::from_millis(400))
            .total_allocation(16 << 30)
            .live_range(8 << 20, 12 << 20)
            .survival_fraction(0.02)
            .build()
            .unwrap();
        let result = run(
            &spec,
            &RunConfig::new(48 << 20, CollectorKind::Shenandoah).with_noise(0.0),
        )
        .unwrap();
        assert!(!result.telemetry().throttle_intervals.is_empty());
        let log = render_gc_log(&result);
        assert!(
            log.contains("[gc,ergo] Pacer: mutator throttled to")
                || log.contains("[gc,ergo] Allocation stall"),
            "per-interval pacing lines must appear: {log}"
        );
        assert!(
            log.contains("allocation throttled for"),
            "the aggregate line stays: {log}"
        );
        // Every recorded interval renders exactly one line.
        let interval_lines = log.lines().filter(|l| l.contains("[gc,ergo]")).count();
        assert_eq!(interval_lines, result.telemetry().throttle_intervals.len());
    }

    #[test]
    fn unthrottled_run_has_no_pacer_lines() {
        let log = render_gc_log(&result_for(CollectorKind::G1));
        assert!(!log.contains("[gc,ergo]"), "{log}");
    }

    #[test]
    fn fault_injected_run_logs_fault_lines() {
        use crate::engine::run_with_faults;
        use chopin_faults::{FaultKind, FaultPlan};
        let spec = MutatorSpec::builder("log-test-faults")
            .threads(8)
            .parallel_efficiency(0.5)
            .total_work(SimDuration::from_millis(100))
            .total_allocation(512 << 20)
            .live_range(8 << 20, 16 << 20)
            .build()
            .unwrap();
        let plan = FaultPlan::new(3).with_window(
            1_000_000,
            30_000_000,
            FaultKind::AllocSpike { factor: 3.0 },
        );
        let result = run_with_faults(
            &spec,
            &RunConfig::new(48 << 20, CollectorKind::G1).with_noise(0.0),
            &plan,
        )
        .unwrap();
        assert_eq!(result.telemetry().faults_injected, 1);
        let log = render_gc_log(&result);
        assert!(log.contains("[gc,fault] Injected alloc_spike"), "{log}");
        assert!(log.contains("fault intervals injected"), "{log}");
    }

    #[test]
    fn stall_storm_logs_pacer_lines_on_a_non_pacing_collector() {
        use crate::engine::run_with_faults;
        use chopin_faults::{FaultKind, FaultPlan};
        let spec = MutatorSpec::builder("log-test-storm")
            .threads(8)
            .parallel_efficiency(0.5)
            .total_work(SimDuration::from_millis(100))
            .total_allocation(512 << 20)
            .live_range(8 << 20, 16 << 20)
            .build()
            .unwrap();
        let plan = FaultPlan::new(9).with_window(
            2_000_000,
            12_000_000,
            FaultKind::StallStorm { throttle: 0.25 },
        );
        let result = run_with_faults(
            &spec,
            &RunConfig::new(48 << 20, CollectorKind::G1).with_noise(0.0),
            &plan,
        )
        .unwrap();
        let log = render_gc_log(&result);
        assert!(
            log.contains("[gc,ergo] Pacer: mutator throttled to 25%"),
            "storm shows as pacing: {log}"
        );
        assert!(log.contains("[gc,fault] Injected stall_storm"), "{log}");
    }

    #[test]
    fn clean_run_has_no_fault_lines() {
        let log = render_gc_log(&result_for(CollectorKind::G1));
        assert!(!log.contains("[gc,fault]"), "{log}");
    }

    #[test]
    fn log_lines_are_time_ordered() {
        let log = render_gc_log(&result_for(CollectorKind::G1));
        let times: Vec<f64> = log
            .lines()
            .filter_map(|l| l.strip_prefix('[')?.split('s').next()?.parse().ok())
            .collect();
        assert!(times.len() > 3);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512.0 * 1024.0), "512K");
        assert_eq!(format_bytes(1.5 * (1u64 << 20) as f64), "1.5M");
        assert_eq!(format_bytes(2.25 * (1u64 << 30) as f64), "2.25G");
    }
}
