//! Mutator specifications: the runtime-facing description of a workload.
//!
//! A [`MutatorSpec`] captures everything the simulated runtime needs to know
//! about an application: how much CPU work one iteration performs, across
//! how many threads with what parallel efficiency, how fast it allocates,
//! what its live set looks like over time, and — for the latency-sensitive
//! workloads — how its work is divided into externally visible requests.
//! The `chopin-workloads` crate constructs one of these for each of the 22
//! DaCapo Chopin benchmarks from the paper's published nominal statistics.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Validation error for a [`MutatorSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    field: &'static str,
    reason: &'static str,
}

impl SpecError {
    /// The spec field that failed validation (dotted path, e.g.
    /// `requests.count`).
    pub fn field(&self) -> &'static str {
        self.field
    }

    /// Why the field is invalid.
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid mutator spec: {} {}", self.field, self.reason)
    }
}

impl std::error::Error for SpecError {}

/// Description of the request structure of a latency-sensitive workload.
///
/// DaCapo's request-based workloads are "driven by a pre-determined set of
/// requests, with each worker consuming consecutive requests until all have
/// been completed. Within each thread, the start time of each request is
/// thus dictated by the completion of the request before." (§4.4) — this is
/// exactly the model the engine implements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestProfile {
    /// Total number of requests in the pre-determined set.
    pub count: u32,
    /// Number of worker threads consuming requests.
    pub workers: u32,
    /// Dispersion of per-request service demand: the standard deviation of
    /// the log of demand (a log-normal service-time distribution). Zero
    /// means perfectly uniform requests.
    pub dispersion: f64,
}

impl RequestProfile {
    /// Check the profile's own invariants. Shared by the spec builder and
    /// the `chopin-lint` static validator.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.count == 0 {
            return Err(SpecError {
                field: "requests.count",
                reason: "must be positive",
            });
        }
        if self.workers == 0 {
            return Err(SpecError {
                field: "requests.workers",
                reason: "must be positive",
            });
        }
        if !(self.dispersion.is_finite() && self.dispersion >= 0.0) {
            return Err(SpecError {
                field: "requests.dispersion",
                reason: "must be finite and non-negative",
            });
        }
        Ok(())
    }
}

/// A complete workload description for the simulated runtime.
///
/// Construct with [`MutatorSpec::builder`]; the builder validates every
/// field so the engine can assume internal consistency.
///
/// # Examples
///
/// ```
/// use chopin_runtime::spec::MutatorSpec;
/// use chopin_runtime::time::SimDuration;
///
/// # fn main() -> Result<(), chopin_runtime::spec::SpecError> {
/// let spec = MutatorSpec::builder("toy")
///     .threads(4)
///     .total_work(SimDuration::from_millis(200))
///     .total_allocation(64 << 20)
///     .live_range(4 << 20, 8 << 20)
///     .build()?;
/// assert_eq!(spec.name(), "toy");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MutatorSpec {
    name: String,
    threads: u32,
    parallel_efficiency: f64,
    kernel_fraction: f64,
    total_work: SimDuration,
    total_allocation: u64,
    mean_object_size: u64,
    live_floor: u64,
    live_peak: u64,
    build_fraction: f64,
    survival_fraction: f64,
    uncompressed_inflation: f64,
    freq_sensitivity: f64,
    memory_sensitivity: f64,
    llc_sensitivity: f64,
    forced_c2_cost: f64,
    interpreter_cost: f64,
    requests: Option<RequestProfile>,
}

impl MutatorSpec {
    /// Start building a spec for a workload called `name`.
    pub fn builder(name: impl Into<String>) -> MutatorSpecBuilder {
        MutatorSpecBuilder {
            spec: MutatorSpec {
                name: name.into(),
                threads: 1,
                parallel_efficiency: 1.0,
                kernel_fraction: 0.0,
                total_work: SimDuration::from_millis(100),
                total_allocation: 16 << 20,
                mean_object_size: 64,
                live_floor: 4 << 20,
                live_peak: 8 << 20,
                build_fraction: 0.1,
                survival_fraction: 0.05,
                uncompressed_inflation: 1.35,
                freq_sensitivity: 0.5,
                memory_sensitivity: 0.05,
                llc_sensitivity: 0.05,
                forced_c2_cost: 1.0,
                interpreter_cost: 0.6,
                requests: None,
            },
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of application threads.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Parallel efficiency in `[0, 1]`: the fraction of ideal speedup the
    /// workload achieves (the PPE nominal statistic, normalised).
    pub fn parallel_efficiency(&self) -> f64 {
        self.parallel_efficiency
    }

    /// Fraction of execution spent in kernel mode (the PKP statistic,
    /// normalised). Kernel time is not subject to GC barrier taxes.
    pub fn kernel_fraction(&self) -> f64 {
        self.kernel_fraction
    }

    /// Total useful CPU work for one iteration, summed over all threads.
    pub fn total_work(&self) -> SimDuration {
        self.total_work
    }

    /// Total bytes allocated per iteration (application view, before any
    /// pointer-width inflation).
    pub fn total_allocation(&self) -> u64 {
        self.total_allocation
    }

    /// Mean object size in bytes (the AOA statistic).
    pub fn mean_object_size(&self) -> u64 {
        self.mean_object_size
    }

    /// Live bytes at iteration start.
    pub fn live_floor(&self) -> u64 {
        self.live_floor
    }

    /// Live bytes at the workload's plateau.
    pub fn live_peak(&self) -> u64 {
        self.live_peak
    }

    /// Fraction of the iteration's work during which the live set ramps
    /// from floor to peak (h2's database-construction phase is a long ramp;
    /// steady-state services have a short one).
    pub fn build_fraction(&self) -> f64 {
        self.build_fraction
    }

    /// Fraction of freshly allocated bytes that survive their first
    /// collection.
    pub fn survival_fraction(&self) -> f64 {
        self.survival_fraction
    }

    /// Heap footprint inflation when compressed pointers are disabled
    /// (GMU / GMD from the nominal statistics).
    pub fn uncompressed_inflation(&self) -> f64 {
        self.uncompressed_inflation
    }

    /// Fraction of a clock-frequency change the workload converts into
    /// speedup (1.0 = fully CPU-bound; 0.0 = fully memory/IO-bound —
    /// derived from the PFS statistic).
    pub fn freq_sensitivity(&self) -> f64 {
        self.freq_sensitivity
    }

    /// Fractional slowdown under the paper's slow-DRAM profile (the PMS
    /// statistic, normalised).
    pub fn memory_sensitivity(&self) -> f64 {
        self.memory_sensitivity
    }

    /// Fractional slowdown under the paper's 1/16-LLC restriction (the PLS
    /// statistic, normalised; slightly negative values are possible —
    /// sunflow speeds up marginally).
    pub fn llc_sensitivity(&self) -> f64 {
        self.llc_sensitivity
    }

    /// Fractional slowdown of a whole run under forced top-tier
    /// compilation (the PCC statistic, normalised).
    pub fn forced_c2_cost(&self) -> f64 {
        self.forced_c2_cost
    }

    /// Fractional slowdown of a whole run under the interpreter (the PIN
    /// statistic, normalised).
    pub fn interpreter_cost(&self) -> f64 {
        self.interpreter_cost
    }

    /// Request structure, if this is a latency-sensitive workload.
    pub fn requests(&self) -> Option<&RequestProfile> {
        self.requests.as_ref()
    }

    /// The number of effective CPUs the workload can use, given its thread
    /// count and parallel efficiency (Amdahl-style: one perfectly used
    /// thread plus a discounted share of the rest).
    pub fn effective_cpus(&self) -> f64 {
        1.0 + (self.threads.saturating_sub(1)) as f64 * self.parallel_efficiency
    }

    /// Allocation intensity: bytes allocated per nanosecond of useful work.
    pub fn alloc_intensity(&self) -> f64 {
        self.total_allocation as f64 / self.total_work.as_nanos().max(1) as f64
    }

    /// Check every field invariant the engine relies on. The builder calls
    /// this before releasing a spec, and the `chopin-lint` static validator
    /// calls it on already-built specs, so both enforce identical rules.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), SpecError> {
        let s = self;
        if s.name.is_empty() {
            return Err(SpecError {
                field: "name",
                reason: "must be non-empty",
            });
        }
        if s.threads == 0 {
            return Err(SpecError {
                field: "threads",
                reason: "must be positive",
            });
        }
        if !(0.0..=1.0).contains(&s.parallel_efficiency) {
            return Err(SpecError {
                field: "parallel_efficiency",
                reason: "must lie in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&s.kernel_fraction) {
            return Err(SpecError {
                field: "kernel_fraction",
                reason: "must lie in [0, 1]",
            });
        }
        if s.total_work.is_zero() {
            return Err(SpecError {
                field: "total_work",
                reason: "must be positive",
            });
        }
        if s.mean_object_size == 0 {
            return Err(SpecError {
                field: "mean_object_size",
                reason: "must be positive",
            });
        }
        if s.live_peak < s.live_floor {
            return Err(SpecError {
                field: "live_peak",
                reason: "must be at least live_floor",
            });
        }
        if s.live_peak == 0 {
            return Err(SpecError {
                field: "live_peak",
                reason: "must be positive",
            });
        }
        if !(0.0..=1.0).contains(&s.build_fraction) {
            return Err(SpecError {
                field: "build_fraction",
                reason: "must lie in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&s.survival_fraction) {
            return Err(SpecError {
                field: "survival_fraction",
                reason: "must lie in [0, 1]",
            });
        }
        if !(s.uncompressed_inflation >= 1.0 && s.uncompressed_inflation.is_finite()) {
            return Err(SpecError {
                field: "uncompressed_inflation",
                reason: "must be at least 1",
            });
        }
        if !(0.0..=1.0).contains(&s.freq_sensitivity) {
            return Err(SpecError {
                field: "freq_sensitivity",
                reason: "must lie in [0, 1]",
            });
        }
        if !(s.memory_sensitivity.is_finite() && s.memory_sensitivity >= 0.0) {
            return Err(SpecError {
                field: "memory_sensitivity",
                reason: "must be finite and non-negative",
            });
        }
        if !(s.llc_sensitivity.is_finite() && s.llc_sensitivity > -0.1) {
            return Err(SpecError {
                field: "llc_sensitivity",
                reason: "must be finite and above -0.1",
            });
        }
        if !(s.forced_c2_cost.is_finite() && s.forced_c2_cost >= 0.0) {
            return Err(SpecError {
                field: "forced_c2_cost",
                reason: "must be finite and non-negative",
            });
        }
        if !(s.interpreter_cost.is_finite() && s.interpreter_cost >= 0.0) {
            return Err(SpecError {
                field: "interpreter_cost",
                reason: "must be finite and non-negative",
            });
        }
        if let Some(r) = &s.requests {
            r.validate()?;
        }
        Ok(())
    }

    /// Live bytes (application view) once `progress` of `total_work` useful
    /// nanoseconds have completed.
    pub fn live_at(&self, progress_ns: f64) -> f64 {
        let floor = self.live_floor as f64;
        let peak = self.live_peak as f64;
        if peak <= floor {
            return floor;
        }
        let ramp = self.build_fraction * self.total_work.as_nanos() as f64;
        if ramp <= 0.0 {
            return peak;
        }
        let frac = (progress_ns / ramp).clamp(0.0, 1.0);
        floor + (peak - floor) * frac
    }
}

/// Builder for [`MutatorSpec`]. See [`MutatorSpec::builder`].
#[derive(Debug, Clone)]
pub struct MutatorSpecBuilder {
    spec: MutatorSpec,
}

impl MutatorSpecBuilder {
    /// Set the number of application threads.
    pub fn threads(mut self, threads: u32) -> Self {
        self.spec.threads = threads;
        self
    }

    /// Set the parallel efficiency in `[0, 1]`.
    pub fn parallel_efficiency(mut self, eff: f64) -> Self {
        self.spec.parallel_efficiency = eff;
        self
    }

    /// Set the kernel-mode fraction in `[0, 1]`.
    pub fn kernel_fraction(mut self, frac: f64) -> Self {
        self.spec.kernel_fraction = frac;
        self
    }

    /// Set the total useful CPU work per iteration (all threads summed).
    pub fn total_work(mut self, work: SimDuration) -> Self {
        self.spec.total_work = work;
        self
    }

    /// Set the total allocation per iteration, in bytes.
    pub fn total_allocation(mut self, bytes: u64) -> Self {
        self.spec.total_allocation = bytes;
        self
    }

    /// Set the mean object size, in bytes.
    pub fn mean_object_size(mut self, bytes: u64) -> Self {
        self.spec.mean_object_size = bytes;
        self
    }

    /// Set the live-set floor and peak, in bytes.
    pub fn live_range(mut self, floor: u64, peak: u64) -> Self {
        self.spec.live_floor = floor;
        self.spec.live_peak = peak;
        self
    }

    /// Set the fraction of the iteration over which the live set ramps up.
    pub fn build_fraction(mut self, frac: f64) -> Self {
        self.spec.build_fraction = frac;
        self
    }

    /// Set the first-collection survival fraction of fresh allocation.
    pub fn survival_fraction(mut self, frac: f64) -> Self {
        self.spec.survival_fraction = frac;
        self
    }

    /// Set the footprint inflation for uncompressed pointers (≥ 1).
    pub fn uncompressed_inflation(mut self, factor: f64) -> Self {
        self.spec.uncompressed_inflation = factor;
        self
    }

    /// Set the frequency sensitivity in `[0, 1]`.
    pub fn freq_sensitivity(mut self, s: f64) -> Self {
        self.spec.freq_sensitivity = s;
        self
    }

    /// Set the slow-memory fractional slowdown (≥ 0).
    pub fn memory_sensitivity(mut self, s: f64) -> Self {
        self.spec.memory_sensitivity = s;
        self
    }

    /// Set the reduced-LLC fractional slowdown (> −0.1).
    pub fn llc_sensitivity(mut self, s: f64) -> Self {
        self.spec.llc_sensitivity = s;
        self
    }

    /// Set the forced-C2 fractional slowdown (≥ 0, the PCC statistic).
    pub fn forced_c2_cost(mut self, s: f64) -> Self {
        self.spec.forced_c2_cost = s;
        self
    }

    /// Set the interpreter-only fractional slowdown (≥ 0, the PIN
    /// statistic).
    pub fn interpreter_cost(mut self, s: f64) -> Self {
        self.spec.interpreter_cost = s;
        self
    }

    /// Mark the workload latency-sensitive with the given request profile.
    pub fn requests(mut self, profile: RequestProfile) -> Self {
        self.spec.requests = Some(profile);
        self
    }

    /// Validate and build the spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] describing the first invalid field.
    pub fn build(self) -> Result<MutatorSpec, SpecError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MutatorSpecBuilder {
        MutatorSpec::builder("t")
            .threads(8)
            .total_work(SimDuration::from_millis(100))
            .total_allocation(100 << 20)
            .live_range(10 << 20, 20 << 20)
    }

    #[test]
    fn builder_produces_valid_spec() {
        let s = base().build().unwrap();
        assert_eq!(s.threads(), 8);
        assert_eq!(s.total_allocation(), 100 << 20);
    }

    #[test]
    fn sensitivity_fields_validate() {
        assert!(base().freq_sensitivity(1.5).build().is_err());
        assert!(base().memory_sensitivity(-0.1).build().is_err());
        assert!(base().llc_sensitivity(-0.5).build().is_err());
        let s = base()
            .freq_sensitivity(0.9)
            .memory_sensitivity(0.4)
            .llc_sensitivity(-0.02)
            .build()
            .unwrap();
        assert_eq!(s.freq_sensitivity(), 0.9);
        assert_eq!(s.memory_sensitivity(), 0.4);
        assert_eq!(s.llc_sensitivity(), -0.02);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert!(MutatorSpec::builder("").build().is_err());
        assert!(base().threads(0).build().is_err());
        assert!(base().parallel_efficiency(1.5).build().is_err());
        assert!(base().live_range(10, 5).build().is_err());
        assert!(base().survival_fraction(-0.1).build().is_err());
        assert!(base().uncompressed_inflation(0.9).build().is_err());
        assert!(base()
            .requests(RequestProfile {
                count: 0,
                workers: 1,
                dispersion: 0.0
            })
            .build()
            .is_err());
    }

    #[test]
    fn effective_cpus_scales_with_efficiency() {
        let perfect = base().parallel_efficiency(1.0).build().unwrap();
        let poor = base().parallel_efficiency(0.1).build().unwrap();
        assert_eq!(perfect.effective_cpus(), 8.0);
        assert!((poor.effective_cpus() - 1.7).abs() < 1e-12);
    }

    #[test]
    fn alloc_intensity_is_bytes_per_ns() {
        let s = base()
            .total_work(SimDuration::from_nanos(1000))
            .total_allocation(500)
            .build()
            .unwrap();
        assert_eq!(s.alloc_intensity(), 0.5);
    }

    #[test]
    fn live_ramps_from_floor_to_peak() {
        let s = base().build_fraction(0.5).build().unwrap();
        let total = s.total_work().as_nanos() as f64;
        assert_eq!(s.live_at(0.0), (10 << 20) as f64);
        assert_eq!(s.live_at(total), (20 << 20) as f64);
        let mid = s.live_at(0.25 * total);
        assert!((mid - (15 << 20) as f64).abs() < 1.0);
        // Beyond the ramp the live set stays at the peak.
        assert_eq!(s.live_at(0.75 * total), (20 << 20) as f64);
    }

    #[test]
    fn zero_build_fraction_means_immediate_peak() {
        let s = base().build_fraction(0.0).build().unwrap();
        assert_eq!(s.live_at(0.0), (20 << 20) as f64);
    }

    #[test]
    fn flat_live_set_when_floor_equals_peak() {
        let s = base().live_range(5 << 20, 5 << 20).build().unwrap();
        assert_eq!(s.live_at(0.0), (5 << 20) as f64);
        assert_eq!(s.live_at(1e12), (5 << 20) as f64);
    }
}
