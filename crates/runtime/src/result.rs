//! Results of a simulated run.

use crate::config::RunConfig;
use crate::progress::ProgressTrace;
use crate::telemetry::Telemetry;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunError {
    /// The workload's live data cannot fit in the configured heap, or
    /// consecutive collections failed to reclaim usable space.
    OutOfMemory {
        /// Simulated time at which the failure was detected.
        at: SimTime,
        /// Live heap bytes at failure.
        live_bytes: f64,
        /// Configured heap capacity in bytes.
        capacity: f64,
    },
    /// The run exceeded the simulation's safety bounds (pathological GC
    /// thrash); treated as "cannot run in this heap", like the paper's
    /// missing data points at small heap multiples.
    GcThrash {
        /// Simulated time at which the bound tripped.
        at: SimTime,
        /// Collections completed before giving up.
        gc_count: u64,
    },
    /// The configuration failed validation.
    InvalidConfig(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::OutOfMemory {
                at,
                live_bytes,
                capacity,
            } => write!(
                f,
                "out of memory at {at}: {live_bytes:.0} live bytes in a {capacity:.0}-byte heap"
            ),
            RunError::GcThrash { at, gc_count } => {
                write!(f, "gc thrash at {at} after {gc_count} collections")
            }
            RunError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// The complete, deterministic result of one simulated iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    workload: String,
    config: RunConfig,
    wall_time: SimDuration,
    telemetry: Telemetry,
    progress: ProgressTrace,
}

impl RunResult {
    /// Assemble a result (engine-internal).
    pub(crate) fn new(
        workload: String,
        config: RunConfig,
        wall_time: SimDuration,
        telemetry: Telemetry,
        progress: ProgressTrace,
    ) -> Self {
        RunResult {
            workload,
            config,
            wall_time,
            telemetry,
            progress,
        }
    }

    /// Name of the workload that ran.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The configuration the run used.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// End-to-end wall-clock time of the iteration.
    pub fn wall_time(&self) -> SimDuration {
        self.wall_time
    }

    /// Total CPU time summed over every thread — the simulation's
    /// `perf TASK_CLOCK` (Figure 1(b) "sums the running time of all threads
    /// in the process, indicating the total computational overhead").
    pub fn task_clock(&self) -> SimDuration {
        SimDuration::from_nanos(self.telemetry.task_clock_ns().round() as u64)
    }

    /// Telemetry: pauses, heap trace, clock accounting.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The mutator progress trace (drives request-latency extraction).
    pub fn progress(&self) -> &ProgressTrace {
        &self.progress
    }

    /// Wall time minus stop-the-world pause time: the LBO methodology's
    /// "easily attributable" subtraction on the wall clock.
    pub fn wall_minus_stw(&self) -> SimDuration {
        self.wall_time
            .saturating_sub(self.telemetry.total_pause_wall())
    }

    /// Task clock minus GC CPU performed during stop-the-world phases: the
    /// LBO subtraction on the task clock.
    pub fn task_clock_minus_stw(&self) -> SimDuration {
        SimDuration::from_nanos(
            (self.telemetry.task_clock_ns() - self.telemetry.gc_stw_cpu_ns)
                .max(0.0)
                .round() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorKind;

    #[test]
    fn error_messages_are_informative() {
        let oom = RunError::OutOfMemory {
            at: SimTime::from_nanos(5),
            live_bytes: 100.0,
            capacity: 50.0,
        };
        assert!(oom.to_string().contains("out of memory"));
        let thrash = RunError::GcThrash {
            at: SimTime::ZERO,
            gc_count: 7,
        };
        assert!(thrash.to_string().contains("7 collections"));
        assert!(RunError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn lbo_subtractions_saturate() {
        let mut telemetry = Telemetry::new();
        telemetry.mutator_cpu_ns = 10.0;
        telemetry.gc_stw_cpu_ns = 50.0;
        let r = RunResult::new(
            "t".into(),
            RunConfig::new(1, CollectorKind::G1),
            SimDuration::from_nanos(100),
            telemetry,
            ProgressTrace::new(),
        );
        assert_eq!(r.task_clock(), SimDuration::from_nanos(60));
        assert_eq!(r.task_clock_minus_stw(), SimDuration::from_nanos(10));
        assert_eq!(r.wall_minus_stw(), SimDuration::from_nanos(100));
    }
}
