//! The simulated machine.
//!
//! §6.1.3 of the paper describes the reference hardware: an AMD Ryzen 9
//! 7950X with 16 cores and 32 hardware threads at 4.5 GHz. The simulation
//! defaults to the same shape. The wall-clock vs. task-clock divergence the
//! paper highlights for concurrent collectors (§6.2) only exists when the
//! machine has idle hardware threads the collector can soak up, so the
//! hardware-thread count is a first-class parameter.

use serde::{Deserialize, Serialize};

/// Description of the simulated hardware.
///
/// # Examples
///
/// ```
/// use chopin_runtime::machine::MachineConfig;
///
/// let m = MachineConfig::default();
/// assert_eq!(m.hardware_threads(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    hardware_threads: u32,
    /// Relative speed of one hardware thread; 1.0 is the reference 4.5 GHz
    /// Zen 4 core. Used by the frequency-scaling sensitivity experiments.
    speed_factor: f64,
    /// Core Performance Boost enabled (§6.1.3: "When testing benchmarks'
    /// sensitivity to frequency scaling, we enable Core Performance
    /// Boost"). The realised speedup is workload-specific (the PFS
    /// statistic).
    frequency_boost: bool,
    /// DRAM slowed to the paper's DDR5-2000 profile (§6.1.3). The realised
    /// slowdown is workload-specific (the PMS statistic).
    slow_memory: bool,
    /// Last-level cache restricted to 1/16 capacity via cache allocation
    /// enforcement (§6.1.3). The realised slowdown is workload-specific
    /// (the PLS statistic).
    reduced_llc: bool,
}

impl MachineConfig {
    /// The paper's reference machine: 32 hardware threads (16 cores, SMT).
    pub fn ryzen_7950x() -> Self {
        MachineConfig {
            hardware_threads: 32,
            speed_factor: 1.0,
            frequency_boost: false,
            slow_memory: false,
            reduced_llc: false,
        }
    }

    /// A machine with a custom hardware-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `hardware_threads` is zero.
    pub fn with_hardware_threads(hardware_threads: u32) -> Self {
        assert!(hardware_threads > 0, "machine needs at least one thread");
        MachineConfig {
            hardware_threads,
            speed_factor: 1.0,
            frequency_boost: false,
            slow_memory: false,
            reduced_llc: false,
        }
    }

    /// Set the relative per-thread speed (for frequency-scaling
    /// experiments). Values above 1.0 model Core Performance Boost.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn with_speed_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "speed factor must be positive"
        );
        self.speed_factor = factor;
        self
    }

    /// Number of hardware threads available to the runtime.
    pub fn hardware_threads(&self) -> u32 {
        self.hardware_threads
    }

    /// Relative per-thread speed.
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// Enable Core Performance Boost for the frequency-sensitivity
    /// experiment (PFS).
    pub fn with_frequency_boost(mut self, enabled: bool) -> Self {
        self.frequency_boost = enabled;
        self
    }

    /// Whether Core Performance Boost is enabled.
    pub fn frequency_boost(&self) -> bool {
        self.frequency_boost
    }

    /// Slow the DRAM to the paper's reduced timing profile (PMS).
    pub fn with_slow_memory(mut self, enabled: bool) -> Self {
        self.slow_memory = enabled;
        self
    }

    /// Whether the slow-memory profile is active.
    pub fn slow_memory(&self) -> bool {
        self.slow_memory
    }

    /// Restrict the last-level cache to 1/16 capacity (PLS).
    pub fn with_reduced_llc(mut self, enabled: bool) -> Self {
        self.reduced_llc = enabled;
        self
    }

    /// Whether the LLC restriction is active.
    pub fn reduced_llc(&self) -> bool {
        self.reduced_llc
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::ryzen_7950x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_machine() {
        let m = MachineConfig::default();
        assert_eq!(m.hardware_threads(), 32);
        assert_eq!(m.speed_factor(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        MachineConfig::with_hardware_threads(0);
    }

    #[test]
    fn speed_factor_builder() {
        let m = MachineConfig::default().with_speed_factor(1.2);
        assert_eq!(m.speed_factor(), 1.2);
    }

    #[test]
    fn sensitivity_switches_default_off_and_toggle() {
        let m = MachineConfig::default();
        assert!(!m.frequency_boost() && !m.slow_memory() && !m.reduced_llc());
        let m = m
            .with_frequency_boost(true)
            .with_slow_memory(true)
            .with_reduced_llc(true);
        assert!(m.frequency_boost() && m.slow_memory() && m.reduced_llc());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_speed_factor_rejected() {
        MachineConfig::default().with_speed_factor(0.0);
    }
}
