//! Collection-cycle planning: pure math mapping heap state to GC work.
//!
//! The engine asks this module, at the moment a collection is triggered,
//! how much CPU work the cycle will take (split into stop-the-world and
//! concurrent portions), how long the pause(s) will be, and what the heap
//! will look like afterwards. Keeping this as side-effect-free arithmetic
//! makes the collector models easy to test and to ablate.

use super::costs::CollectorModel;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The kind of collection a cycle performs, recorded in pause telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectionKind {
    /// A nursery collection tracing only recent survivors (generational
    /// collectors).
    Young,
    /// A whole-heap collection.
    Full,
    /// A concurrent cycle (Shenandoah/ZGC, or G1's concurrent marking).
    Concurrent,
    /// A fallback stop-the-world full collection forced by heap exhaustion
    /// during a concurrent cycle (G1's "to-space exhausted" degeneration).
    Degenerate,
}

impl CollectionKind {
    /// Whether this collection stops the world for its whole duration.
    pub fn is_stop_the_world(self) -> bool {
        !matches!(self, CollectionKind::Concurrent)
    }
}

/// Inputs to cycle planning: a snapshot of heap and workload state at
/// trigger time. All byte quantities are *heap* bytes (already inflated if
/// compressed pointers are disabled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleInput {
    /// Bytes of live data at trigger time.
    pub live_bytes: f64,
    /// Bytes allocated since the previous collection completed.
    pub allocated_since_gc: f64,
    /// Fraction of recently allocated bytes that survive collection.
    pub survival_fraction: f64,
    /// Workload mean object size in bytes (drives per-object mark cost).
    pub mean_object_size: f64,
    /// Hardware threads on the machine.
    pub hardware_threads: u32,
    /// Per-thread machine speed factor.
    pub machine_speed: f64,
}

/// The plan for one collection cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleOutcome {
    /// What kind of collection this is.
    pub kind: CollectionKind,
    /// CPU nanoseconds of collection work performed stop-the-world.
    pub stw_work_cpu_ns: f64,
    /// Wall-clock duration of the stop-the-world portion (work divided
    /// across GC threads, plus the pause floor).
    pub stw_wall: SimDuration,
    /// CPU nanoseconds of collection work performed concurrently with the
    /// application (zero for STW collectors).
    pub concurrent_work_cpu_ns: f64,
    /// Live bytes remaining after the cycle completes (the post-GC heap
    /// size recorded by the appendix heap graphs).
    pub live_after: f64,
}

impl CycleOutcome {
    /// Total CPU work of the cycle, both portions.
    pub fn total_work_cpu_ns(&self) -> f64 {
        self.stw_work_cpu_ns + self.concurrent_work_cpu_ns
    }
}

/// What the engine asks the planner for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionRequest {
    /// The collector's normal cycle (young for generational collectors, a
    /// full concurrent cycle for single-generation concurrent collectors).
    Normal,
    /// A scheduled whole-heap collection (a generational collector's
    /// periodic full GC).
    Full,
    /// A fallback whole-heap STW collection forced by heap exhaustion while
    /// concurrent work was in flight (G1's to-space exhaustion).
    Degenerate,
}

/// Plan a collection for `model` given heap state `input`.
///
/// # Panics
///
/// Panics in debug builds if byte quantities are negative or non-finite.
pub fn plan_cycle(
    model: &CollectorModel,
    input: &CycleInput,
    request: CollectionRequest,
) -> CycleOutcome {
    debug_assert!(input.live_bytes >= 0.0 && input.live_bytes.is_finite());
    debug_assert!(input.allocated_since_gc >= 0.0 && input.allocated_since_gc.is_finite());

    // Fresh allocation survives its first collection at the workload's
    // survival rate, but survivors cannot outgrow a share of the live set:
    // over a long inter-GC period the early survivors die again before the
    // collection happens.
    let survivors =
        (input.survival_fraction * input.allocated_since_gc).min(0.5 * input.live_bytes);
    let is_young = model.kind.is_generational() && request == CollectionRequest::Normal;

    // Bytes traced and bytes copied this cycle.
    let (marked, evacuated, kind) = if is_young {
        // Young collection: trace survivors plus a share of the old
        // generation (card/remembered-set scanning).
        (
            survivors + model.old_scan_share * input.live_bytes,
            survivors,
            CollectionKind::Young,
        )
    } else if model.kind.is_generational() {
        // Scheduled or degenerate full collection of a generational
        // collector: trace and compact everything.
        (
            input.live_bytes + survivors,
            (input.live_bytes + survivors) * model.evac_share.max(0.5),
            if request == CollectionRequest::Degenerate {
                CollectionKind::Degenerate
            } else {
                CollectionKind::Full
            },
        )
    } else {
        // Single-generation concurrent collector: every cycle traces the
        // entire live set (this is the architectural root of the high
        // overheads Figure 1 shows for the newest collectors). A degenerate
        // request abandons concurrency and does the whole cycle
        // stop-the-world (Shenandoah's "Degenerated GC").
        (
            input.live_bytes + survivors,
            (input.live_bytes + survivors) * model.evac_share,
            if request == CollectionRequest::Degenerate {
                CollectionKind::Degenerate
            } else {
                CollectionKind::Concurrent
            },
        )
    };

    let total_work =
        model.mark_cost_ns(marked, input.mean_object_size) + model.evac_cost_ns(evacuated);

    // Degenerate collections abandon concurrent progress and redo the work
    // stop-the-world, with a penalty for the wasted concurrent effort.
    let (concurrent_share, work) = match kind {
        CollectionKind::Degenerate => (0.0, total_work * 1.3),
        _ => (model.concurrent_fraction, total_work),
    };

    let concurrent_work = work * concurrent_share;
    let stw_work = work - concurrent_work;

    let stw_threads = model.stw_thread_count(input.hardware_threads) as f64;
    let eff = if stw_threads > 1.0 {
        model.gc_parallel_efficiency
    } else {
        1.0
    };
    let stw_wall_ns =
        stw_work / (stw_threads * eff * input.machine_speed) + model.pause_floor.as_nanos() as f64;
    // Imperfect parallelism burns extra CPU: the threads are all running for
    // the whole pause even though the useful work is `stw_work`.
    let stw_cpu = stw_work / eff;

    let live_after = live_after(input, kind);

    CycleOutcome {
        kind,
        stw_work_cpu_ns: stw_cpu,
        stw_wall: SimDuration::from_nanos(stw_wall_ns.max(0.0).round() as u64),
        concurrent_work_cpu_ns: concurrent_work,
        live_after,
    }
}

/// Live bytes after a collection: the modelled live set plus the survivors
/// of recent allocation (which a young collection promotes rather than
/// frees).
fn live_after(input: &CycleInput, _kind: CollectionKind) -> f64 {
    input.live_bytes
        + (input.survival_fraction * input.allocated_since_gc).min(0.5 * input.live_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorKind;

    fn input() -> CycleInput {
        CycleInput {
            live_bytes: 100e6,
            allocated_since_gc: 50e6,
            survival_fraction: 0.05,
            mean_object_size: 64.0,
            hardware_threads: 32,
            machine_speed: 1.0,
        }
    }

    #[test]
    fn young_collections_are_much_cheaper_than_full() {
        let m = CollectorKind::Parallel.model();
        let young = plan_cycle(&m, &input(), CollectionRequest::Normal);
        let full = plan_cycle(&m, &input(), CollectionRequest::Full);
        assert_eq!(young.kind, CollectionKind::Young);
        assert_eq!(full.kind, CollectionKind::Full);
        assert!(full.total_work_cpu_ns() > 3.0 * young.total_work_cpu_ns());
    }

    #[test]
    fn serial_pause_is_longer_than_parallel_but_cpu_is_lower() {
        let s = plan_cycle(
            &CollectorKind::Serial.model(),
            &input(),
            CollectionRequest::Full,
        );
        let p = plan_cycle(
            &CollectorKind::Parallel.model(),
            &input(),
            CollectionRequest::Full,
        );
        assert!(
            s.stw_wall > p.stw_wall,
            "Serial collects on one thread, so pauses longer: {} vs {}",
            s.stw_wall,
            p.stw_wall
        );
        assert!(
            s.total_work_cpu_ns() < p.total_work_cpu_ns(),
            "Parallel's imperfect parallelism burns more total CPU"
        );
    }

    #[test]
    fn concurrent_collectors_do_most_work_concurrently() {
        for kind in [CollectorKind::Shenandoah, CollectorKind::Zgc] {
            let o = plan_cycle(&kind.model(), &input(), CollectionRequest::Normal);
            assert_eq!(o.kind, CollectionKind::Concurrent);
            let share = o.concurrent_work_cpu_ns / o.total_work_cpu_ns();
            assert!(share > 0.9, "{kind}: concurrent share {share}");
            assert!(
                o.stw_wall < SimDuration::from_millis(5),
                "{kind}: tiny pauses"
            );
        }
    }

    #[test]
    fn concurrent_cycle_traces_whole_live_set() {
        // ZGC cycle cost should scale with live bytes, not allocation.
        let m = CollectorKind::Zgc.model();
        let small_live = plan_cycle(
            &m,
            &CycleInput {
                live_bytes: 10e6,
                ..input()
            },
            CollectionRequest::Normal,
        );
        let big_live = plan_cycle(
            &m,
            &CycleInput {
                live_bytes: 200e6,
                ..input()
            },
            CollectionRequest::Normal,
        );
        assert!(big_live.total_work_cpu_ns() > 10.0 * small_live.total_work_cpu_ns());
    }

    #[test]
    fn young_cycle_cost_scales_with_allocation_not_live() {
        let m = CollectorKind::Parallel.model();
        let base = plan_cycle(&m, &input(), CollectionRequest::Normal);
        let more_alloc = plan_cycle(
            &m,
            &CycleInput {
                allocated_since_gc: 200e6,
                ..input()
            },
            CollectionRequest::Normal,
        );
        assert!(more_alloc.total_work_cpu_ns() > 2.0 * base.total_work_cpu_ns());
    }

    #[test]
    fn degenerate_costs_more_than_planned_full() {
        let m = CollectorKind::G1.model();
        let degen = plan_cycle(&m, &input(), CollectionRequest::Degenerate);
        assert_eq!(degen.kind, CollectionKind::Degenerate);
        let full_parallel = plan_cycle(
            &CollectorKind::Parallel.model(),
            &input(),
            CollectionRequest::Full,
        );
        assert!(degen.total_work_cpu_ns() > full_parallel.total_work_cpu_ns());
        assert_eq!(degen.concurrent_work_cpu_ns, 0.0);
    }

    #[test]
    fn live_after_includes_promoted_survivors() {
        let o = plan_cycle(
            &CollectorKind::G1.model(),
            &input(),
            CollectionRequest::Normal,
        );
        assert!((o.live_after - (100e6 + 0.05 * 50e6)).abs() < 1.0);
    }

    #[test]
    fn faster_machine_shortens_pauses() {
        let m = CollectorKind::Serial.model();
        let slow = plan_cycle(&m, &input(), CollectionRequest::Full);
        let fast = plan_cycle(
            &m,
            &CycleInput {
                machine_speed: 2.0,
                ..input()
            },
            CollectionRequest::Full,
        );
        assert!(fast.stw_wall < slow.stw_wall);
    }
}
