//! The five production collector models.
//!
//! The paper evaluates the five garbage collectors that ship with
//! OpenJDK 21, identified by the year their design entered the JVM
//! (Figure 1): Serial (1998), Parallel (2005), G1 (2009), Shenandoah (2014)
//! and ZGC (2018). The collectors differ in *when* collection work happens
//! (stop-the-world vs. concurrent with the application), *on how many
//! threads*, *how much* work a cycle does (generational collectors trace
//! survivors, single-generation concurrent collectors trace the whole live
//! set every cycle), and *what taxes* they embed in the mutator (read/write
//! barriers). Those four architectural axes are exactly what this module
//! parameterises; they are sufficient to reproduce every qualitative claim
//! in the paper's motivation and analysis sections.

pub mod costs;
pub mod cycle;

pub use costs::CollectorModel;
pub use cycle::{CollectionKind, CollectionRequest, CycleOutcome};

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The five OpenJDK 21 production collectors modelled by the simulation.
///
/// # Examples
///
/// ```
/// use chopin_runtime::collector::CollectorKind;
///
/// assert_eq!(CollectorKind::Zgc.introduced(), 2018);
/// assert!(!CollectorKind::Zgc.supports_compressed_oops());
/// assert!(CollectorKind::Serial.supports_compressed_oops());
/// assert_eq!("g1".parse::<CollectorKind>().unwrap(), CollectorKind::G1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CollectorKind {
    /// Single-threaded stop-the-world generational collector (1998).
    Serial,
    /// Stop-the-world generational collector using all hardware parallelism
    /// (2005).
    Parallel,
    /// Region-based, mostly-STW generational collector with concurrent
    /// marking (2009); the OpenJDK default and the paper's baseline.
    G1,
    /// Concurrent compacting collector with mutator pacing (2014).
    Shenandoah,
    /// Concurrent, region-based, single-generation (as evaluated — the paper
    /// marks it "ZGC*") collector without compressed-pointer support (2018).
    Zgc,
    /// The no-op collector (OpenJDK's Epsilon, JEP 318): allocates until
    /// the heap is exhausted and never collects. Not part of the paper's
    /// evaluated set — the reproduction uses it as a true zero-cost
    /// baseline to *validate* that the LBO methodology's distilled
    /// baseline really is conservative (§2's "it may be best not to
    /// garbage collect at all").
    Epsilon,
}

impl CollectorKind {
    /// The five production collectors the paper evaluates, in order of
    /// introduction — the order Figure 1 keys its legend by. Excludes
    /// [`CollectorKind::Epsilon`], which is a validation tool rather than
    /// a production collector.
    pub const ALL: [CollectorKind; 5] = [
        CollectorKind::Serial,
        CollectorKind::Parallel,
        CollectorKind::G1,
        CollectorKind::Shenandoah,
        CollectorKind::Zgc,
    ];

    /// The year the design was introduced into the JVM (Figure 1 legend).
    pub fn introduced(self) -> u16 {
        match self {
            CollectorKind::Serial => 1998,
            CollectorKind::Parallel => 2005,
            CollectorKind::G1 => 2009,
            CollectorKind::Shenandoah => 2014,
            CollectorKind::Zgc => 2018,
            CollectorKind::Epsilon => 2018,
        }
    }

    /// Whether the collector supports compressed pointers.
    ///
    /// "All of the collectors except ZGC use compressed pointers by
    /// default. Because ZGC does not support compressed pointers, care
    /// should be taken when comparing it with the other collectors." (§2)
    pub fn supports_compressed_oops(self) -> bool {
        !matches!(self, CollectorKind::Zgc)
    }

    /// Whether the collector ever collects at all (false only for
    /// [`CollectorKind::Epsilon`]).
    pub fn collects(self) -> bool {
        !matches!(self, CollectorKind::Epsilon)
    }

    /// Whether collection work happens (almost entirely) concurrently with
    /// the application.
    pub fn is_concurrent(self) -> bool {
        matches!(self, CollectorKind::Shenandoah | CollectorKind::Zgc)
    }

    /// Whether the collector is generational: young collections trace only
    /// survivors of recent allocation rather than the whole live set.
    pub fn is_generational(self) -> bool {
        matches!(
            self,
            CollectorKind::Serial | CollectorKind::Parallel | CollectorKind::G1
        )
    }

    /// Short display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            CollectorKind::Serial => "Serial",
            CollectorKind::Parallel => "Parallel",
            CollectorKind::G1 => "G1",
            CollectorKind::Shenandoah => "Shen.",
            CollectorKind::Zgc => "ZGC*",
            CollectorKind::Epsilon => "Epsilon",
        }
    }

    /// The collector's cost/behaviour model.
    pub fn model(self) -> CollectorModel {
        CollectorModel::for_kind(self)
    }
}

impl fmt::Display for CollectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown collector name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCollectorError {
    input: String,
}

impl fmt::Display for ParseCollectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown collector `{}` (expected one of serial, parallel, g1, shenandoah, zgc)",
            self.input
        )
    }
}

impl std::error::Error for ParseCollectorError {}

impl FromStr for CollectorKind {
    type Err = ParseCollectorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "serial" => Ok(CollectorKind::Serial),
            "parallel" => Ok(CollectorKind::Parallel),
            "g1" => Ok(CollectorKind::G1),
            "shenandoah" | "shen" | "shen." => Ok(CollectorKind::Shenandoah),
            "zgc" | "zgc*" => Ok(CollectorKind::Zgc),
            "epsilon" => Ok(CollectorKind::Epsilon),
            _ => Err(ParseCollectorError {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn introduction_years_match_figure_1() {
        let years: Vec<u16> = CollectorKind::ALL.iter().map(|c| c.introduced()).collect();
        assert_eq!(years, vec![1998, 2005, 2009, 2014, 2018]);
        assert!(years.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn only_zgc_lacks_compressed_oops() {
        for c in CollectorKind::ALL {
            assert_eq!(c.supports_compressed_oops(), c != CollectorKind::Zgc, "{c}");
        }
    }

    #[test]
    fn concurrency_and_generations() {
        assert!(CollectorKind::Shenandoah.is_concurrent());
        assert!(CollectorKind::Zgc.is_concurrent());
        assert!(!CollectorKind::G1.is_concurrent());
        assert!(CollectorKind::G1.is_generational());
        assert!(!CollectorKind::Zgc.is_generational());
    }

    #[test]
    fn epsilon_is_not_in_the_evaluated_set() {
        assert!(!CollectorKind::ALL.contains(&CollectorKind::Epsilon));
        assert!(!CollectorKind::Epsilon.collects());
        assert!(CollectorKind::G1.collects());
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(CollectorKind::Shenandoah.label(), "Shen.");
        assert_eq!(CollectorKind::Zgc.label(), "ZGC*");
        assert_eq!(CollectorKind::G1.to_string(), "G1");
    }

    #[test]
    fn parsing_round_trips_and_rejects_unknown() {
        for c in CollectorKind::ALL {
            let parsed: CollectorKind = c.label().parse().unwrap();
            assert_eq!(parsed, c);
        }
        assert_eq!(
            "epsilon".parse::<CollectorKind>().unwrap(),
            CollectorKind::Epsilon
        );
        assert!("cms".parse::<CollectorKind>().is_err());
        let err = "cms".parse::<CollectorKind>().unwrap_err();
        assert!(err.to_string().contains("cms"));
    }
}
