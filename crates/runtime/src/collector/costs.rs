//! Per-collector cost and behaviour parameters.
//!
//! Each collector couples a *cost model* (how many CPU nanoseconds a cycle
//! burns per byte marked or evacuated, what barrier tax it embeds in the
//! mutator) with a *behaviour model* (which phases stop the world, how many
//! threads collect, when a cycle triggers, what happens when allocation
//! outruns reclamation). The constants below are calibrated so the
//! simulation reproduces the paper's observed *shapes*: the time–space
//! hyperbola, the 1998→2018 task-clock regression, concurrent collectors
//! soaking idle cores, and Shenandoah's pacing collapse on high-allocation
//! workloads (§2, §6.2).

use super::CollectorKind;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Reference mark rate: bytes of live data traced per CPU nanosecond by one
/// reference hardware thread (≈ 2.5 GB/s).
const BASE_MARK_BYTES_PER_NS: f64 = 2.5;

/// Reference evacuation (copy) rate: bytes copied per CPU nanosecond
/// (≈ 1.5 GB/s).
const BASE_EVAC_BYTES_PER_NS: f64 = 1.5;

/// The complete parameter set describing one collector's behaviour.
///
/// Obtain one via [`CollectorKind::model`]; the fields are public and the
/// struct is plain data so that ablation benchmarks can perturb individual
/// parameters.
///
/// # Examples
///
/// ```
/// use chopin_runtime::collector::CollectorKind;
///
/// let serial = CollectorKind::Serial.model();
/// let zgc = CollectorKind::Zgc.model();
/// // The paper's regression: newer collectors burn more CPU per cycle and
/// // embed heavier mutator taxes.
/// assert!(zgc.work_multiplier > serial.work_multiplier);
/// assert!(zgc.barrier_tax > serial.barrier_tax);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectorModel {
    /// Which collector this parameterises.
    pub kind: CollectorKind,
    /// Multiplier on the base mark/evacuate cost capturing algorithmic
    /// overheads (remembered sets, forwarding pointers, multiple concurrent
    /// passes, coloured-pointer bookkeeping).
    pub work_multiplier: f64,
    /// Fraction of mutator throughput lost to read/write barriers while the
    /// application runs. This cost is invisible to pause-based accounting —
    /// precisely the hard-to-attribute overhead LBO exists to expose.
    pub barrier_tax: f64,
    /// Fraction of a cycle's work performed concurrently with the
    /// application (0.0 for fully stop-the-world collectors).
    pub concurrent_fraction: f64,
    /// Number of GC threads used during stop-the-world phases. `None` means
    /// "all hardware threads" (capped by the machine).
    pub stw_threads: Option<u32>,
    /// Number of GC threads used for concurrent work, as a fraction of the
    /// machine's hardware threads (OpenJDK's `ConcGCThreads` heuristic is
    /// ~1/4 of `ParallelGCThreads`).
    pub concurrent_thread_share: f64,
    /// Parallel efficiency of multi-threaded GC phases: "parallelism is
    /// never perfectly efficient, so Parallel tends to have larger total
    /// overhead ... than Serial" (§2).
    pub gc_parallel_efficiency: f64,
    /// Fixed wall-clock floor added to every stop-the-world pause
    /// (safepointing, root scanning start-up).
    pub pause_floor: SimDuration,
    /// Fraction of young-collection cost charged for scanning old-to-young
    /// remembered sets / card tables, proportional to the live set.
    pub old_scan_share: f64,
    /// A full (whole-heap) collection is forced every `full_gc_period` young
    /// cycles for generational STW collectors; `None` disables periodic
    /// fulls (concurrent collectors always trace the full live set).
    pub full_gc_period: Option<u32>,
    /// Heap occupancy fraction at which a concurrent cycle is triggered
    /// (ignored by STW collectors, which collect on allocation failure).
    pub trigger_occupancy: f64,
    /// What the collector does when allocation exhausts the heap mid-cycle.
    pub exhaustion: ExhaustionPolicy,
    /// Fraction of the live set evacuated (copied) by a whole-heap
    /// collection; region-based collectors only evacuate the sparsest
    /// regions.
    pub evac_share: f64,
}

/// Behaviour when the application exhausts free memory while a concurrent
/// cycle is still running (or, for STW collectors, immediately on
/// allocation failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExhaustionPolicy {
    /// Stop the world and collect (the normal mode for STW collectors).
    StopTheWorld,
    /// Fail with out-of-memory: the Epsilon collector never reclaims.
    Fail,
    /// Degenerate to a stop-the-world full collection (G1's fallback).
    DegenerateFull,
    /// Throttle/stall allocating mutator threads until the concurrent cycle
    /// frees memory (Shenandoah's pacer, ZGC's allocation stalls).
    ThrottleAllocation,
}

impl CollectorModel {
    /// The calibrated model for `kind`.
    pub fn for_kind(kind: CollectorKind) -> CollectorModel {
        match kind {
            CollectorKind::Serial => CollectorModel {
                kind,
                work_multiplier: 1.0,
                barrier_tax: 0.002,
                concurrent_fraction: 0.0,
                stw_threads: Some(1),
                concurrent_thread_share: 0.0,
                gc_parallel_efficiency: 1.0,
                pause_floor: SimDuration::from_micros(150),
                old_scan_share: 0.08,
                full_gc_period: Some(24),
                trigger_occupancy: 1.0,
                exhaustion: ExhaustionPolicy::StopTheWorld,
                evac_share: 1.0,
            },
            CollectorKind::Parallel => CollectorModel {
                kind,
                work_multiplier: 1.18,
                barrier_tax: 0.004,
                concurrent_fraction: 0.0,
                stw_threads: None,
                concurrent_thread_share: 0.0,
                gc_parallel_efficiency: 0.80,
                pause_floor: SimDuration::from_micros(250),
                old_scan_share: 0.08,
                full_gc_period: Some(24),
                trigger_occupancy: 1.0,
                exhaustion: ExhaustionPolicy::StopTheWorld,
                evac_share: 1.0,
            },
            CollectorKind::G1 => CollectorModel {
                kind,
                work_multiplier: 1.45,
                barrier_tax: 0.025,
                concurrent_fraction: 0.35,
                stw_threads: None,
                concurrent_thread_share: 0.25,
                gc_parallel_efficiency: 0.78,
                pause_floor: SimDuration::from_micros(400),
                old_scan_share: 0.13,
                full_gc_period: Some(32),
                trigger_occupancy: 0.92,
                exhaustion: ExhaustionPolicy::DegenerateFull,
                evac_share: 0.45,
            },
            CollectorKind::Shenandoah => CollectorModel {
                kind,
                work_multiplier: 1.60,
                barrier_tax: 0.085,
                concurrent_fraction: 0.93,
                stw_threads: None,
                concurrent_thread_share: 0.25,
                gc_parallel_efficiency: 0.75,
                pause_floor: SimDuration::from_micros(250),
                old_scan_share: 0.0,
                full_gc_period: None,
                trigger_occupancy: 0.85,
                exhaustion: ExhaustionPolicy::ThrottleAllocation,
                evac_share: 0.50,
            },
            CollectorKind::Epsilon => CollectorModel {
                kind,
                work_multiplier: 1.0,
                barrier_tax: 0.0,
                concurrent_fraction: 0.0,
                stw_threads: Some(1),
                concurrent_thread_share: 0.0,
                gc_parallel_efficiency: 1.0,
                pause_floor: SimDuration::ZERO,
                old_scan_share: 0.0,
                full_gc_period: None,
                trigger_occupancy: 1.0,
                exhaustion: ExhaustionPolicy::Fail,
                evac_share: 0.0,
            },
            CollectorKind::Zgc => CollectorModel {
                kind,
                work_multiplier: 1.72,
                barrier_tax: 0.06,
                concurrent_fraction: 0.995,
                stw_threads: None,
                concurrent_thread_share: 0.25,
                gc_parallel_efficiency: 0.75,
                pause_floor: SimDuration::from_micros(60),
                old_scan_share: 0.0,
                full_gc_period: None,
                trigger_occupancy: 0.85,
                exhaustion: ExhaustionPolicy::ThrottleAllocation,
                evac_share: 0.40,
            },
        }
    }

    /// CPU nanoseconds to mark `bytes` of live data, including the
    /// per-object cost component: workloads with small mean object sizes
    /// trace more pointers per byte. `mean_object_size` is in bytes.
    pub fn mark_cost_ns(&self, bytes: f64, mean_object_size: f64) -> f64 {
        let object_factor = 1.0 + 48.0 / mean_object_size.max(16.0);
        self.work_multiplier * object_factor * bytes / BASE_MARK_BYTES_PER_NS
    }

    /// CPU nanoseconds to evacuate (copy) `bytes` of survivors.
    pub fn evac_cost_ns(&self, bytes: f64) -> f64 {
        self.work_multiplier * bytes / BASE_EVAC_BYTES_PER_NS
    }

    /// Number of threads used for stop-the-world phases on a machine with
    /// `hardware_threads` hardware threads. OpenJDK caps `ParallelGCThreads`
    /// at 5/8 of the processors for large machines.
    pub fn stw_thread_count(&self, hardware_threads: u32) -> u32 {
        match self.stw_threads {
            Some(n) => n.min(hardware_threads),
            None => {
                ((hardware_threads as f64 * 5.0 / 8.0).ceil() as u32).clamp(1, hardware_threads)
            }
        }
    }

    /// Number of threads used for concurrent work.
    pub fn concurrent_thread_count(&self, hardware_threads: u32) -> u32 {
        ((hardware_threads as f64 * self.concurrent_thread_share).round() as u32).clamp(
            if self.concurrent_fraction > 0.0 { 1 } else { 0 },
            hardware_threads,
        )
    }

    /// Validate internal consistency; used by tests and the ablation bench
    /// after perturbing fields.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.work_multiplier >= 1.0 && self.work_multiplier.is_finite()) {
            return Err(format!("work_multiplier {} < 1", self.work_multiplier));
        }
        if !(0.0..1.0).contains(&self.barrier_tax) {
            return Err(format!("barrier_tax {} outside [0,1)", self.barrier_tax));
        }
        if !(0.0..=1.0).contains(&self.concurrent_fraction) {
            return Err("concurrent_fraction outside [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.concurrent_thread_share) {
            return Err("concurrent_thread_share outside [0,1]".into());
        }
        if !(0.0 < self.gc_parallel_efficiency && self.gc_parallel_efficiency <= 1.0) {
            return Err("gc_parallel_efficiency outside (0,1]".into());
        }
        if !(0.0 < self.trigger_occupancy && self.trigger_occupancy <= 1.0) {
            return Err("trigger_occupancy outside (0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.evac_share) {
            return Err("evac_share outside [0,1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_validate() {
        for kind in CollectorKind::ALL {
            kind.model().validate().unwrap();
        }
    }

    #[test]
    fn newer_collectors_burn_more_cpu_per_cycle() {
        // The architectural regression that motivates the paper: ordering by
        // introduction year orders total computational overhead.
        let mults: Vec<f64> = CollectorKind::ALL
            .iter()
            .map(|c| c.model().work_multiplier)
            .collect();
        assert!(
            mults.windows(2).all(|w| w[0] < w[1]),
            "work multipliers must increase with introduction year: {mults:?}"
        );
    }

    #[test]
    fn concurrent_collectors_have_heavier_barriers_than_stw() {
        let serial = CollectorKind::Serial.model().barrier_tax;
        let parallel = CollectorKind::Parallel.model().barrier_tax;
        let shen = CollectorKind::Shenandoah.model().barrier_tax;
        let zgc = CollectorKind::Zgc.model().barrier_tax;
        assert!(shen > parallel && zgc > parallel && shen > serial);
    }

    #[test]
    fn serial_is_single_threaded() {
        assert_eq!(CollectorKind::Serial.model().stw_thread_count(32), 1);
        assert_eq!(CollectorKind::Parallel.model().stw_thread_count(32), 20);
        assert_eq!(CollectorKind::Parallel.model().stw_thread_count(2), 2);
    }

    #[test]
    fn concurrent_thread_counts() {
        assert_eq!(CollectorKind::Zgc.model().concurrent_thread_count(32), 8);
        assert_eq!(CollectorKind::Serial.model().concurrent_thread_count(32), 0);
        // At least one thread for collectors that do concurrent work.
        assert_eq!(
            CollectorKind::Shenandoah.model().concurrent_thread_count(1),
            1
        );
    }

    #[test]
    fn small_objects_cost_more_to_mark_per_byte() {
        let m = CollectorKind::Serial.model();
        let small = m.mark_cost_ns(1e6, 24.0);
        let large = m.mark_cost_ns(1e6, 200.0);
        assert!(small > large);
    }

    #[test]
    fn mark_cost_scales_linearly_with_bytes() {
        let m = CollectorKind::G1.model();
        let one = m.mark_cost_ns(1e6, 64.0);
        let two = m.mark_cost_ns(2e6, 64.0);
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zgc_pauses_are_tiny() {
        assert!(
            CollectorKind::Zgc.model().pause_floor < CollectorKind::G1.model().pause_floor,
            "ZGC's defining feature is sub-millisecond pauses"
        );
    }

    #[test]
    fn validate_catches_bad_fields() {
        let mut m = CollectorKind::G1.model();
        m.barrier_tax = 1.5;
        assert!(m.validate().is_err());
        let mut m = CollectorKind::G1.model();
        m.work_multiplier = 0.5;
        assert!(m.validate().is_err());
    }
}
