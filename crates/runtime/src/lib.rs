//! A deterministic discrete-event simulation of a managed runtime, built to
//! reproduce *Rethinking Java Performance Analysis* (ASPLOS '25) without a
//! JVM.
//!
//! The paper's analysis needs a runtime with: a bounded heap, a fast
//! allocator, application threads whose useful work is taxed by GC barriers,
//! and five production collector designs spanning twenty years of
//! architectural evolution — Serial (1998), Parallel (2005), G1 (2009),
//! Shenandoah (2014) and ZGC (2018). This crate provides exactly that as a
//! simulation: every quantity the paper measures (wall clock, `TASK_CLOCK`,
//! stop-the-world pauses, post-GC heap sizes, per-request event times) is a
//! first-class output.
//!
//! # Architecture
//!
//! * [`spec`] — what a workload *is*: threads, useful work, allocation
//!   volume, live-set shape, request structure.
//! * [`config`] — what a run *uses*: heap size, collector, compressed
//!   pointers, machine, seed (the JVM-command-line analog).
//! * [`collector`] — the five collector models: cost constants and cycle
//!   planning.
//! * [`heap`] — aggregate heap accounting.
//! * [`engine`] — the event loop tying it together.
//! * [`progress`], [`requests`] — the piecewise-linear mutator progress
//!   trace, and request-latency extraction from it.
//! * [`telemetry`], [`result`] — pauses, heap traces, clocks.
//! * [`gclog`] — an OpenJDK-style GC log rendered from the telemetry.
//!
//! # Examples
//!
//! ```
//! use chopin_runtime::collector::CollectorKind;
//! use chopin_runtime::config::RunConfig;
//! use chopin_runtime::engine::run;
//! use chopin_runtime::spec::MutatorSpec;
//! use chopin_runtime::time::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = MutatorSpec::builder("example")
//!     .threads(8)
//!     .total_work(SimDuration::from_millis(100))
//!     .total_allocation(512 << 20)
//!     .live_range(16 << 20, 32 << 20)
//!     .build()?;
//!
//! // Compare a stop-the-world collector with a concurrent one at the same
//! // heap size: the concurrent collector trades pauses for CPU.
//! let parallel = run(&spec, &RunConfig::new(128 << 20, CollectorKind::Parallel))?;
//! let zgc = run(&spec, &RunConfig::new(128 << 20, CollectorKind::Zgc))?;
//! assert!(zgc.telemetry().max_pause() < parallel.telemetry().max_pause());
//! assert!(zgc.task_clock() > parallel.task_clock());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod collector;
pub mod config;
pub mod engine;
pub mod gclog;
pub mod heap;
pub mod machine;
pub mod progress;
pub mod requests;
pub mod result;
pub mod spec;
pub mod telemetry;
pub mod time;

pub use collector::CollectorKind;
pub use config::RunConfig;
pub use engine::{run, run_with_faults, run_with_observer, run_with_observer_and_faults};
pub use machine::MachineConfig;
pub use result::{RunError, RunResult};
pub use spec::{MutatorSpec, RequestProfile};
pub use telemetry::FaultInterval;
pub use time::{SimDuration, SimTime};
