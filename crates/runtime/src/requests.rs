//! Request-event extraction for the latency-sensitive workloads.
//!
//! "DaCapo times every event: frame renders for jme and client requests for
//! the other eight latency-sensitive workloads. As the workload progresses,
//! DaCapo stores event start and end times in an array." (§4.4)
//!
//! The simulation reproduces that measurement exactly: each worker thread
//! consumes a pre-determined sequence of requests back to back; a request's
//! end time is the wall time at which the worker's cumulative progress
//! reaches the request's cumulative service demand, read off the run's
//! [`ProgressTrace`]. Stop-the-world pauses, barrier slowdowns and pacing
//! stalls therefore stretch exactly the requests they overlap — several
//! short pauses and one long pause produce the different latency signatures
//! Cheng and Blelloch's figure illustrates (Figure 2).

use crate::progress::ProgressTrace;
use crate::spec::RequestProfile;
use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One timed event: a request (or frame) with its observed start and end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestEvent {
    /// When the worker began serving the request.
    pub start: SimTime,
    /// When the request completed.
    pub end: SimTime,
}

impl RequestEvent {
    /// The event's simple latency (end − start).
    pub fn latency(&self) -> crate::time::SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Extract the per-request events of a run.
///
/// `trace` is the run's progress trace; `profile` the workload's request
/// structure; `seed` makes the pre-determined request demands deterministic;
/// `total_worker_progress` bounds each worker's demand so the request set
/// exactly covers the run's useful work.
///
/// Returns events sorted by start time. Returns an empty vector if the
/// trace is empty.
///
/// # Examples
///
/// ```
/// use chopin_runtime::progress::ProgressTrace;
/// use chopin_runtime::requests::extract_events;
/// use chopin_runtime::spec::RequestProfile;
/// use chopin_runtime::time::SimTime;
///
/// let mut trace = ProgressTrace::new();
/// trace.push(SimTime::from_nanos(0), SimTime::from_nanos(1000), 1.0);
/// let profile = RequestProfile { count: 10, workers: 2, dispersion: 0.0 };
/// let events = extract_events(&trace, &profile, 42);
/// assert_eq!(events.len(), 10);
/// // Uniform demands on an even-rate trace: each request takes 1/5 of the
/// // worker's 1000ns span.
/// assert_eq!(events[0].latency().as_nanos(), 200);
/// ```
pub fn extract_events(
    trace: &ProgressTrace,
    profile: &RequestProfile,
    seed: u64,
) -> Vec<RequestEvent> {
    let total = trace.total_worker_progress();
    if total <= 0.0 || trace.segments().is_empty() {
        return Vec::new();
    }
    let workers = profile.workers.max(1);
    let base = profile.count / workers;
    let extra = profile.count % workers;

    let mut events = Vec::with_capacity(profile.count as usize);
    for w in 0..workers {
        let count = base + u32::from(w < extra);
        if count == 0 {
            continue;
        }
        // Pre-determined demands: log-normal weights normalised so the
        // worker's requests exactly exhaust its progress budget.
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(w as u64 + 1)));
        let mut weights = Vec::with_capacity(count as usize);
        let mut sum = 0.0;
        for _ in 0..count {
            let w = if profile.dispersion > 0.0 {
                // Box–Muller from two uniforms.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (profile.dispersion * z).exp()
            } else {
                1.0
            };
            weights.push(w);
            sum += w;
        }

        let mut cursor = trace.cursor();
        let mut cumulative = 0.0;
        let mut start = trace.segments()[0].start;
        for weight in weights {
            cumulative += weight / sum * total;
            // Clamp the final boundary to the trace's total progress to
            // absorb floating-point drift.
            let target = cumulative.min(total);
            // The trace is non-empty here (segments()[0] above); if the
            // cursor still cannot place the boundary, degrade to a
            // zero-length request rather than panicking.
            let end = cursor
                .time_at_progress(target)
                .or_else(|| trace.end_time())
                .unwrap_or(start);
            events.push(RequestEvent { start, end });
            start = end;
        }
    }
    events.sort();
    events
}

/// Replay the same pre-determined request set **open-loop**: request
/// arrivals are fixed at uniform intervals across the run (the externally
/// defined start times of a real service, §4.4), and each worker serves
/// its queue FIFO at the rate the progress trace dictates.
///
/// The returned latency of each event is `completion − scheduled arrival`,
/// which includes genuine queueing delay — the quantity Metered Latency
/// approximates after the fact. Comparing the two validates the metered
/// model (see `tests/open_loop_validation.rs`).
///
/// Returns events sorted by (scheduled) start time; empty for an empty
/// trace.
pub fn replay_open_loop(
    trace: &ProgressTrace,
    profile: &RequestProfile,
    seed: u64,
) -> Vec<RequestEvent> {
    replay_open_loop_at(trace, profile, seed, 1.0)
}

/// Like [`replay_open_loop`], with the offered load scaled by `load`
/// (1.0 = the closed-loop system's exact throughput, i.e. a server at
/// 100 % utilisation; values below 1 shrink every service demand, modelling
/// a service with headroom).
///
/// # Panics
///
/// Panics if `load` is not in `(0, 1]`.
pub fn replay_open_loop_at(
    trace: &ProgressTrace,
    profile: &RequestProfile,
    seed: u64,
    load: f64,
) -> Vec<RequestEvent> {
    assert!(load > 0.0 && load <= 1.0, "load must lie in (0, 1]");
    let total = trace.total_worker_progress();
    let Some(end_time) = trace.end_time() else {
        return Vec::new();
    };
    if total <= 0.0 {
        return Vec::new();
    }
    let t0 = trace.segments()[0].start;
    let span = end_time.saturating_since(t0).as_nanos() as f64;
    let workers = profile.workers.max(1);
    let base = profile.count / workers;
    let extra = profile.count % workers;

    let mut events = Vec::with_capacity(profile.count as usize);
    for w in 0..workers {
        let count = base + u32::from(w < extra);
        if count == 0 {
            continue;
        }
        // Identical demands to the closed-loop extraction (same seeding).
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(w as u64 + 1)));
        let mut weights = Vec::with_capacity(count as usize);
        let mut sum = 0.0;
        for _ in 0..count {
            let weight = if profile.dispersion > 0.0 {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (profile.dispersion * z).exp()
            } else {
                1.0
            };
            weights.push(weight);
            sum += weight;
        }

        // Uniform arrivals across the run; FIFO service on this worker.
        let mut server_free_progress = 0.0;
        for (k, weight) in weights.iter().enumerate() {
            let arrival = t0
                + crate::time::SimDuration::from_nanos(
                    (span * k as f64 / count as f64).round() as u64
                );
            let demand = weight / sum * total * load;
            // Service starts when both the request has arrived and the
            // worker has finished everything before it.
            let start_progress = trace.progress_at_time(arrival).max(server_free_progress);
            let finish_progress = (start_progress + demand).min(total);
            let end = trace.time_at_progress(finish_progress).unwrap_or(end_time);
            server_free_progress = finish_progress;
            events.push(RequestEvent {
                start: arrival,
                end: end.max(arrival),
            });
        }
    }
    events.sort();
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn flat_trace(len_ns: u64, rate: f64) -> ProgressTrace {
        let mut t = ProgressTrace::new();
        t.push(SimTime::ZERO, SimTime::from_nanos(len_ns), rate);
        t
    }

    #[test]
    fn empty_trace_yields_no_events() {
        let t = ProgressTrace::new();
        let p = RequestProfile {
            count: 5,
            workers: 1,
            dispersion: 0.0,
        };
        assert!(extract_events(&t, &p, 1).is_empty());
    }

    #[test]
    fn request_count_is_exact_even_when_unevenly_divisible() {
        let t = flat_trace(1_000_000, 1.0);
        let p = RequestProfile {
            count: 103,
            workers: 8,
            dispersion: 0.3,
        };
        assert_eq!(extract_events(&t, &p, 7).len(), 103);
    }

    #[test]
    fn uniform_requests_on_flat_trace_have_equal_latency() {
        let t = flat_trace(1000, 1.0);
        let p = RequestProfile {
            count: 4,
            workers: 1,
            dispersion: 0.0,
        };
        let events = extract_events(&t, &p, 1);
        for e in &events {
            assert_eq!(e.latency().as_nanos(), 250);
        }
        // Back-to-back: each start is the previous end.
        for w in events.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn pause_stretches_the_overlapping_request() {
        let mut t = ProgressTrace::new();
        t.push(SimTime::from_nanos(0), SimTime::from_nanos(400), 1.0);
        t.push(SimTime::from_nanos(400), SimTime::from_nanos(900), 0.0); // 500ns pause
        t.push(SimTime::from_nanos(900), SimTime::from_nanos(1500), 1.0);
        let p = RequestProfile {
            count: 4,
            workers: 1,
            dispersion: 0.0,
        };
        // Total progress 1000; each request needs 250.
        let events = extract_events(&t, &p, 1);
        let latencies: Vec<u64> = events.iter().map(|e| e.latency().as_nanos()).collect();
        assert_eq!(
            latencies,
            vec![250, 750, 250, 250],
            "second request eats the pause"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let t = flat_trace(1_000_000, 2.0);
        let p = RequestProfile {
            count: 50,
            workers: 4,
            dispersion: 0.5,
        };
        assert_eq!(extract_events(&t, &p, 9), extract_events(&t, &p, 9));
        assert_ne!(extract_events(&t, &p, 9), extract_events(&t, &p, 10));
    }

    #[test]
    fn events_are_sorted_by_start() {
        let t = flat_trace(1_000_000, 1.0);
        let p = RequestProfile {
            count: 64,
            workers: 7,
            dispersion: 0.8,
        };
        let events = extract_events(&t, &p, 3);
        assert!(events.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn open_loop_replay_matches_closed_loop_on_an_idle_system() {
        // With uniform demands and a constant-rate trace sized so the
        // system is underloaded, queueing never happens: every request's
        // latency is just its service time.
        let mut t = ProgressTrace::new();
        t.push(SimTime::ZERO, SimTime::from_nanos(1_000_000), 1.0);
        let p = RequestProfile {
            count: 100,
            workers: 1,
            dispersion: 0.0,
        };
        let events = replay_open_loop(&t, &p, 3);
        assert_eq!(events.len(), 100);
        // Demand per request = total/100 = 10_000ns at rate 1.0; arrivals
        // are 10_000ns apart, so the server is exactly saturated and each
        // event takes ~its service time.
        for e in &events {
            let lat = e.latency().as_nanos();
            assert!((9_000..=12_000).contains(&lat), "{lat}");
        }
    }

    #[test]
    fn open_loop_queueing_amplifies_a_pause() {
        // A pause mid-run delays every queued arrival behind it.
        let mut t = ProgressTrace::new();
        t.push(SimTime::ZERO, SimTime::from_nanos(500_000), 1.0);
        t.push(
            SimTime::from_nanos(500_000),
            SimTime::from_nanos(700_000),
            0.0,
        );
        t.push(
            SimTime::from_nanos(700_000),
            SimTime::from_nanos(1_200_000),
            1.0,
        );
        let p = RequestProfile {
            count: 100,
            workers: 1,
            dispersion: 0.0,
        };
        let events = replay_open_loop(&t, &p, 3);
        let worst = events.iter().map(|e| e.latency().as_nanos()).max().unwrap();
        assert!(
            worst >= 190_000,
            "an arrival at the pause start waits out the whole pause: {worst}"
        );
        // Events long before the pause are unaffected.
        let first = events.first().unwrap().latency().as_nanos();
        assert!(first < 20_000, "{first}");
    }

    #[test]
    fn open_loop_is_deterministic_and_sorted() {
        let mut t = ProgressTrace::new();
        t.push(SimTime::ZERO, SimTime::from_nanos(1_000_000), 2.0);
        let p = RequestProfile {
            count: 64,
            workers: 4,
            dispersion: 0.7,
        };
        let a = replay_open_loop(&t, &p, 11);
        let b = replay_open_loop(&t, &p, 11);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(a.iter().all(|e| e.start <= e.end));
    }

    proptest! {
        #[test]
        fn prop_events_cover_trace_and_never_overlap_per_worker(
            count in 1u32..80,
            workers in 1u32..6,
            dispersion in 0.0f64..1.0,
            seed in 0u64..100,
        ) {
            let t = flat_trace(10_000_000, 1.5);
            let p = RequestProfile { count, workers, dispersion };
            let events = extract_events(&t, &p, seed);
            prop_assert_eq!(events.len(), count as usize);
            let end = t.end_time().unwrap();
            for e in &events {
                prop_assert!(e.start <= e.end);
                prop_assert!(e.end <= end + SimDuration::from_nanos(2));
            }
        }
    }
}
