//! Property tests for [`Telemetry::pause_histogram`]: the log-bucketed
//! histogram's exact side-channels (count, sum, max) must agree with the
//! telemetry's own aggregates over arbitrary pause sequences, including
//! the batched pauses produced by the engine's fast-forward path.

use chopin_runtime::collector::CollectionKind;
use chopin_runtime::telemetry::{PauseRecord, Telemetry};
use chopin_runtime::time::{SimDuration, SimTime};
use proptest::collection::vec;
use proptest::prelude::*;

fn kind_for(tag: u64) -> CollectionKind {
    match tag % 4 {
        0 => CollectionKind::Young,
        1 => CollectionKind::Full,
        2 => CollectionKind::Concurrent,
        _ => CollectionKind::Degenerate,
    }
}

/// Build a telemetry from (individual pause ns) and (batch count, each ns)
/// sequences, mimicking the engine's recording order.
fn telemetry_of(pauses: &[u64], batches: &[(u64, u64)]) -> Telemetry {
    let mut t = Telemetry::new();
    let mut now = 0u64;
    for (i, &ns) in pauses.iter().enumerate() {
        t.record_pause(PauseRecord {
            start: SimTime::from_nanos(now),
            duration: SimDuration::from_nanos(ns),
            gc_cpu_ns: ns as f64,
            kind: kind_for(i as u64),
        });
        now += ns + 1;
    }
    for &(count, each) in batches {
        t.record_batched_pauses(count, SimDuration::from_nanos(each), each as f64);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_histogram_count_and_sum_are_exact(
        pauses in vec(1u64..100_000_000, 0..64),
        batches in vec((1u64..10_000, 1u64..100_000_000), 0..8),
    ) {
        let t = telemetry_of(&pauses, &batches);
        let h = t.pause_histogram();
        let batch_count: u64 = batches.iter().map(|&(c, _)| c).sum();
        prop_assert_eq!(h.count(), pauses.len() as u64 + batch_count);
        prop_assert_eq!(h.count(), t.pauses.len() as u64 + t.batched_pause_count);
        prop_assert_eq!(h.sum(), u128::from(t.total_pause_wall().as_nanos()));
    }

    #[test]
    fn prop_histogram_max_brackets_the_true_max(
        pauses in vec(1u64..100_000_000, 1..64),
        batches in vec((1u64..10_000, 1u64..100_000_000), 0..8),
    ) {
        let t = telemetry_of(&pauses, &batches);
        let h = t.pause_histogram();
        let true_max = pauses
            .iter()
            .copied()
            .chain(batches.iter().map(|&(_, each)| each))
            .max()
            .unwrap_or(0);
        // Batched pauses enter at their aggregate mean, which never
        // exceeds the largest batch duration; individual maxima are exact.
        prop_assert!(h.max() <= true_max);
        let individual_max = t.max_pause().map(SimDuration::as_nanos).unwrap_or(0);
        prop_assert!(h.max() >= individual_max);
        if batches.is_empty() {
            prop_assert_eq!(h.max(), true_max);
        }
    }

    #[test]
    fn prop_quantiles_are_monotone_and_within_range(
        pauses in vec(1u64..100_000_000, 1..64),
        batches in vec((1u64..10_000, 1u64..100_000_000), 0..4),
    ) {
        let t = telemetry_of(&pauses, &batches);
        let h = t.pause_histogram();
        let (p50, p90, p99, p999) = (h.p50(), h.p90(), h.p99(), h.p999());
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        prop_assert!(p999 <= h.max());
        prop_assert!(p50 >= 1, "positive inputs yield positive quantiles");
    }
}
