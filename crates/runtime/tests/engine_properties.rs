//! Property-based tests of the simulation engine's global invariants over
//! randomly generated workloads, collectors and heap sizes.

use chopin_runtime::collector::CollectorKind;
use chopin_runtime::config::RunConfig;
use chopin_runtime::engine::run;
use chopin_runtime::result::RunResult;
use chopin_runtime::spec::MutatorSpec;
use chopin_runtime::time::SimDuration;
use proptest::prelude::*;

fn arb_collector() -> impl Strategy<Value = CollectorKind> {
    prop_oneof![
        Just(CollectorKind::Serial),
        Just(CollectorKind::Parallel),
        Just(CollectorKind::G1),
        Just(CollectorKind::Shenandoah),
        Just(CollectorKind::Zgc),
    ]
}

#[derive(Debug, Clone)]
struct Scenario {
    spec: MutatorSpec,
    config: RunConfig,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        1u32..24,    // threads
        0.0f64..1.0, // parallel efficiency
        10u64..200,  // work (ms)
        4u64..256,   // allocation (MB)
        2u64..24,    // live peak (MB)
        0.0f64..0.3, // survival
        arb_collector(),
        2u64..8,  // heap as multiple of live peak
        0u64..64, // seed
    )
        .prop_map(
            |(threads, pe, work_ms, alloc_mb, live_mb, survival, collector, heap_mult, seed)| {
                let spec = MutatorSpec::builder("prop")
                    .threads(threads)
                    .parallel_efficiency(pe)
                    .total_work(SimDuration::from_millis(work_ms))
                    .total_allocation(alloc_mb << 20)
                    .live_range((live_mb / 2).max(1) << 20, live_mb << 20)
                    .survival_fraction(survival)
                    .build()
                    .expect("generated spec is valid");
                // Generous enough that most scenarios complete even without
                // compressed pointers.
                let heap = (live_mb << 20) * heap_mult * 2;
                let config = RunConfig::new(heap, collector)
                    .with_seed(seed)
                    .with_noise(0.0);
                Scenario { spec, config }
            },
        )
}

fn successful(s: &Scenario) -> Option<RunResult> {
    run(&s.spec, &s.config).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_wall_time_dominates_pause_time(s in arb_scenario()) {
        let Some(r) = successful(&s) else { return Ok(()); };
        prop_assert!(r.wall_time() >= r.telemetry().total_pause_wall());
        prop_assert!(r.wall_time().as_nanos() > 0);
    }

    #[test]
    fn prop_task_clock_decomposes(s in arb_scenario()) {
        let Some(r) = successful(&s) else { return Ok(()); };
        let t = r.telemetry();
        let total = t.mutator_cpu_ns + t.gc_stw_cpu_ns + t.gc_concurrent_cpu_ns;
        prop_assert!((t.task_clock_ns() - total).abs() < 1.0);
        prop_assert!(t.mutator_cpu_ns > 0.0);
        prop_assert!(t.gc_stw_cpu_ns >= 0.0 && t.gc_concurrent_cpu_ns >= 0.0);
    }

    #[test]
    fn prop_mutator_cpu_covers_useful_work(s in arb_scenario()) {
        // The mutator must burn at least the spec's useful work (barrier
        // taxes only ever add CPU).
        let Some(r) = successful(&s) else { return Ok(()); };
        let useful = s.spec.total_work().as_nanos() as f64;
        prop_assert!(
            r.telemetry().mutator_cpu_ns >= useful * 0.999,
            "mutator cpu {} < useful work {}",
            r.telemetry().mutator_cpu_ns,
            useful
        );
    }

    #[test]
    fn prop_progress_trace_spans_the_run(s in arb_scenario()) {
        let Some(r) = successful(&s) else { return Ok(()); };
        prop_assert_eq!(
            r.progress().end_time().expect("non-empty").as_nanos(),
            r.wall_time().as_nanos()
        );
        // Total per-worker progress equals the per-thread share of work.
        let expect = s.spec.total_work().as_nanos() as f64 / s.spec.threads() as f64;
        let got = r.progress().total_worker_progress();
        prop_assert!(
            (got - expect).abs() <= expect * 0.01 + 100.0,
            "progress {got} vs expected {expect}"
        );
    }

    #[test]
    fn prop_heap_samples_respect_capacity(s in arb_scenario()) {
        let Some(r) = successful(&s) else { return Ok(()); };
        let cap = s.config.heap_bytes() as f64;
        for sample in &r.telemetry().heap_trace {
            prop_assert!(sample.occupied_bytes <= cap + 1.0);
            prop_assert!(sample.occupied_bytes >= 0.0);
        }
    }

    #[test]
    fn prop_runs_are_deterministic(s in arb_scenario()) {
        let a = run(&s.spec, &s.config);
        let b = run(&s.spec, &s.config);
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn prop_halving_the_heap_never_reduces_gc_count(s in arb_scenario()) {
        let Some(big) = successful(&s) else { return Ok(()); };
        let mut small_cfg = s.config.clone().with_heap_bytes(s.config.heap_bytes() / 2);
        small_cfg = small_cfg.with_noise(0.0);
        let Ok(small) = run(&s.spec, &small_cfg) else { return Ok(()); };
        prop_assert!(
            small.telemetry().gc_count >= big.telemetry().gc_count,
            "smaller heap collected less: {} vs {}",
            small.telemetry().gc_count,
            big.telemetry().gc_count
        );
    }

    #[test]
    fn prop_pause_records_are_ordered_and_positive(s in arb_scenario()) {
        let Some(r) = successful(&s) else { return Ok(()); };
        let pauses = &r.telemetry().pauses;
        for w in pauses.windows(2) {
            prop_assert!(w[0].start <= w[1].start);
        }
        for p in pauses {
            prop_assert!(p.gc_cpu_ns >= 0.0);
        }
    }
}
