//! Fault-plane guarantees: injected runs are exactly as deterministic as
//! clean ones, observers never perturb faulted runs, each fault kind has
//! its advertised effect, and the engine's failure paths (`declare_oom`,
//! futile-collection streaks, degenerate fallback) are reachable directly
//! rather than only by workload accident.

use chopin_faults::{FaultKind, FaultPlan, ScheduledFaults};
use chopin_obs::{Event, EventRecorder, MetricsObserver, Tee};
use chopin_runtime::collector::CollectorKind;
use chopin_runtime::config::RunConfig;
use chopin_runtime::engine::{run, run_with_faults, run_with_observer_and_faults};
use chopin_runtime::result::RunError;
use chopin_runtime::spec::MutatorSpec;
use chopin_runtime::time::SimDuration;

fn spec(alloc_mb: u64, live_mb: u64, threads: u32) -> MutatorSpec {
    MutatorSpec::builder("fault-determinism")
        .threads(threads)
        .parallel_efficiency(0.5)
        .total_work(SimDuration::from_millis(200))
        .total_allocation(alloc_mb << 20)
        .live_range((live_mb / 2).max(1) << 20, live_mb << 20)
        .survival_fraction(0.05)
        .build()
        .expect("spec is valid")
}

/// A window wide enough to stay open for the entire simulated run.
const WHOLE_RUN_NS: u64 = 60_000_000_000;

#[test]
fn faulted_runs_are_bit_identical_and_observer_neutral() {
    let s = spec(512, 16, 8);
    let config = RunConfig::new(64 << 20, CollectorKind::G1).with_noise(0.0);
    let plan = FaultPlan::new(42)
        .with_window(1_000_000, 40_000_000, FaultKind::AllocSpike { factor: 3.0 })
        .with_storm(
            FaultKind::StallStorm { throttle: 0.2 },
            150_000_000,
            4,
            0.15,
        );
    plan.validate(None).expect("plan is valid");

    let first = run_with_faults(&s, &config, &plan).map_err(|e| e.to_string());
    let second = run_with_faults(&s, &config, &plan).map_err(|e| e.to_string());
    assert_eq!(first, second, "same plan must yield bit-identical runs");

    let mut tee = Tee(EventRecorder::new(), MetricsObserver::new());
    let observed = run_with_observer_and_faults(&s, &config, &mut tee, ScheduledFaults::new(&plan))
        .map_err(|e| e.to_string());
    assert_eq!(
        first, observed,
        "an observer must not perturb a faulted run"
    );
    assert!(
        tee.0.events().any(|e| e.type_label() == "fault_onset"),
        "fault windows must surface in the event stream"
    );
    assert!(
        tee.0.events().any(|e| e.type_label() == "fault_clear"),
        "fault windows must close in the event stream"
    );

    let r = first.expect("64MB fits this workload even under faults");
    assert!(r.telemetry().faults_injected > 0);
    assert_eq!(
        r.telemetry().faults_injected as usize,
        r.telemetry().fault_intervals.len(),
        "every window below the cap is recorded"
    );
}

#[test]
fn alloc_spike_increases_collection_pressure() {
    let s = spec(512, 16, 8);
    let config = RunConfig::new(64 << 20, CollectorKind::G1).with_noise(0.0);
    let clean = run(&s, &config).expect("clean run completes");
    let plan = FaultPlan::new(7).with_window(
        1_000_000,
        WHOLE_RUN_NS,
        FaultKind::AllocSpike { factor: 4.0 },
    );
    let faulted = run_with_faults(&s, &config, &plan).expect("spiked run completes");
    assert!(
        faulted.telemetry().gc_count > clean.telemetry().gc_count,
        "4x allocation must trigger more collections: {} vs {}",
        faulted.telemetry().gc_count,
        clean.telemetry().gc_count
    );
    assert!(faulted
        .telemetry()
        .fault_intervals
        .iter()
        .all(|i| matches!(i.kind, FaultKind::AllocSpike { .. })));
}

#[test]
fn gc_slowdown_stretches_pauses() {
    let s = spec(512, 16, 8);
    let config = RunConfig::new(64 << 20, CollectorKind::Parallel).with_noise(0.0);
    let clean = run(&s, &config).expect("clean run completes");
    let plan =
        FaultPlan::new(7).with_window(0, WHOLE_RUN_NS, FaultKind::GcSlowdown { factor: 8.0 });
    let faulted = run_with_faults(&s, &config, &plan).expect("slowed run completes");
    let slow = faulted.telemetry().max_pause();
    let fast = clean.telemetry().max_pause();
    assert!(
        slow > fast,
        "8x slower GC threads must stretch stop-the-world pauses: {slow:?} vs {fast:?}"
    );
}

#[test]
fn stall_storm_throttles_a_non_pacing_collector() {
    // G1 never engages its own pacer; throttled wall time under a storm can
    // only come from the injected throttle cap.
    let s = spec(512, 16, 8);
    let config = RunConfig::new(64 << 20, CollectorKind::G1).with_noise(0.0);
    let clean = run(&s, &config).expect("clean run completes");
    assert_eq!(clean.telemetry().throttled_wall, SimDuration::ZERO);
    let plan = FaultPlan::new(7).with_window(
        2_000_000,
        30_000_000,
        FaultKind::StallStorm { throttle: 0.25 },
    );
    let faulted = run_with_faults(&s, &config, &plan).expect("stormed run completes");
    assert!(
        faulted.telemetry().throttled_wall > SimDuration::ZERO,
        "the storm must register as throttled wall time"
    );
    assert!(!faulted.telemetry().throttle_intervals.is_empty());
}

#[test]
fn force_degenerate_converts_collections_for_every_collector() {
    // Including the single-generation concurrent collectors, whose planner
    // maps a degenerate request to an all-STW cycle (Shenandoah's
    // "Degenerated GC") rather than silently planning a concurrent one.
    let s = spec(512, 16, 8);
    let plan = FaultPlan::new(7).with_window(0, WHOLE_RUN_NS, FaultKind::ForceDegenerate);
    for collector in CollectorKind::ALL {
        let config = RunConfig::new(96 << 20, collector).with_noise(0.0);
        let clean = run(&s, &config).expect("clean run completes");
        assert_eq!(
            clean.telemetry().degenerate_count,
            0,
            "{collector:?}: a roomy heap should not degenerate on its own"
        );
        let faulted = run_with_faults(&s, &config, &plan)
            .unwrap_or_else(|e| panic!("{collector:?}: forced-degenerate run failed: {e}"));
        if faulted.telemetry().gc_count > 0 {
            assert!(
                faulted.telemetry().degenerate_count > 0,
                "{collector:?}: every triggered collection should degenerate"
            );
        }
    }
}

#[test]
fn heap_squeeze_drives_futile_streak_then_oom() {
    // Squeeze 90% of a 64MB heap away: effective capacity drops below the
    // 16MB live peak, so no collection can reclaim usable room. The engine
    // must count a growing futile streak and declare OOM at the bound —
    // the direct test of the futile-collection failure path.
    let s = spec(512, 16, 8);
    let config = RunConfig::new(64 << 20, CollectorKind::G1).with_noise(0.0);
    let plan = FaultPlan::new(7).with_window(
        1_000_000,
        WHOLE_RUN_NS,
        FaultKind::HeapSqueeze { fraction: 0.9 },
    );
    let mut recorder = EventRecorder::new();
    let result =
        run_with_observer_and_faults(&s, &config, &mut recorder, ScheduledFaults::new(&plan));
    assert!(
        matches!(result, Err(RunError::OutOfMemory { .. })),
        "a squeeze below the live set must end in OOM: {result:?}"
    );

    let streaks: Vec<u32> = recorder
        .events()
        .filter_map(|e| match e {
            Event::FutileCollection { streak, .. } => Some(*streak),
            _ => None,
        })
        .collect();
    assert!(
        streaks.iter().copied().max().unwrap_or(0) >= 4,
        "the futile streak must reach the OOM bound: {streaks:?}"
    );
    assert!(
        streaks.windows(2).all(|w| w[1] == w[0] + 1 || w[1] == 1),
        "streaks count consecutively and reset only on useful collections: {streaks:?}"
    );
    assert!(
        recorder.events().any(|e| e.type_label() == "oom_declared"),
        "the OOM declaration must surface as an event"
    );
}

#[test]
fn epsilon_declares_oom_directly_when_the_heap_fills() {
    // The Epsilon collector never reclaims: exhaustion takes the
    // `declare_oom` path with no collection at all — the direct unit test
    // for the declaration itself.
    let s = spec(256, 8, 8);
    let config = RunConfig::new(64 << 20, CollectorKind::Epsilon).with_noise(0.0);
    let mut recorder = EventRecorder::new();
    let result = run_with_observer_and_faults(&s, &config, &mut recorder, chopin_faults::NoFaults);
    assert!(
        matches!(result, Err(RunError::OutOfMemory { .. })),
        "256MB allocated into a 64MB no-reclaim heap must OOM: {result:?}"
    );
    assert!(
        recorder.events().any(|e| e.type_label() == "oom_declared"),
        "the declaration must surface as an event"
    );
    assert!(
        !recorder.events().any(|e| e.type_label() == "pause_begin"),
        "Epsilon performs no collections on the way down"
    );
}

#[test]
fn degenerate_pause_fallback_is_reachable_directly() {
    // G1's exhaustion policy degenerates when the heap fills mid-cycle; a
    // forced-degenerate window reaches the same pause kind without needing
    // a workload that happens to exhaust to-space.
    let s = spec(512, 16, 8);
    let config = RunConfig::new(64 << 20, CollectorKind::G1).with_noise(0.0);
    let plan = FaultPlan::new(7).with_window(0, WHOLE_RUN_NS, FaultKind::ForceDegenerate);
    let mut tee = Tee(EventRecorder::new(), MetricsObserver::new());
    let result = run_with_observer_and_faults(&s, &config, &mut tee, ScheduledFaults::new(&plan))
        .expect("forced-degenerate run completes");
    assert!(result.telemetry().degenerate_count > 0);
    assert!(
        result.telemetry().max_pause() > Some(SimDuration::ZERO),
        "degenerate collections stop the world"
    );
}
