//! The observer determinism guard: attaching any observer to the engine
//! must not perturb the simulation.
//!
//! Observers are passive by contract — they receive copies of engine
//! state and feed nothing back — so `run()` (no-op observer) and
//! `run_with_observer` (recording observer) must produce bit-identical
//! [`RunResult`]s, success or failure alike. A regression here means an
//! engine transition started consulting its observer, which would make
//! every traced run unrepresentative of the untraced runs the experiments
//! measure.

use chopin_obs::{EventRecorder, MetricsObserver, Tee};
use chopin_runtime::collector::CollectorKind;
use chopin_runtime::config::RunConfig;
use chopin_runtime::engine::{run, run_with_observer};
use chopin_runtime::result::RunResult;
use chopin_runtime::spec::MutatorSpec;
use chopin_runtime::time::SimDuration;

fn spec(alloc_mb: u64, live_mb: u64, threads: u32) -> MutatorSpec {
    MutatorSpec::builder("obs-determinism")
        .threads(threads)
        .parallel_efficiency(0.5)
        .total_work(SimDuration::from_millis(200))
        .total_allocation(alloc_mb << 20)
        .live_range((live_mb / 2).max(1) << 20, live_mb << 20)
        .survival_fraction(0.05)
        .build()
        .expect("spec is valid")
}

fn assert_observed_matches(
    spec: &MutatorSpec,
    config: &RunConfig,
) -> (Result<RunResult, String>, EventRecorder) {
    let plain = run(spec, config).map_err(|e| e.to_string());
    let mut tee = Tee(EventRecorder::new(), MetricsObserver::new());
    let observed = run_with_observer(spec, config, &mut tee).map_err(|e| e.to_string());
    assert_eq!(
        plain, observed,
        "recording observer must not perturb the run"
    );
    (plain, tee.0)
}

#[test]
fn observed_run_is_bit_identical_across_collectors() {
    for collector in CollectorKind::ALL {
        let s = spec(512, 16, 8);
        let config = RunConfig::new(64 << 20, collector).with_noise(0.0);
        let (result, recorder) = assert_observed_matches(&s, &config);
        let r = result.expect("a 64MB heap fits this workload");
        if r.telemetry().gc_count > 0 {
            assert!(
                recorder.events().any(|e| e.type_label() == "gc_trigger"),
                "{collector:?}: a collecting run must surface trigger events"
            );
        }
    }
}

#[test]
fn observed_run_is_identical_under_throttling() {
    // The hot-allocation regime that engages Shenandoah's pacer: observer
    // hooks in the throttle path are the likeliest place for a
    // perturbation bug.
    let s = MutatorSpec::builder("obs-hot-alloc")
        .threads(32)
        .parallel_efficiency(0.4)
        .total_work(SimDuration::from_millis(400))
        .total_allocation(16 << 30)
        .live_range(8 << 20, 12 << 20)
        .survival_fraction(0.02)
        .build()
        .expect("spec is valid");
    let config = RunConfig::new(48 << 20, CollectorKind::Shenandoah).with_noise(0.0);
    let (result, recorder) = assert_observed_matches(&s, &config);
    let r = result.expect("the run completes");
    assert!(r.telemetry().throttled_wall > SimDuration::ZERO);
    assert!(
        recorder
            .events()
            .any(|e| e.type_label() == "throttle_onset"),
        "pacing must be visible in the event stream"
    );
    assert!(
        !r.telemetry().throttle_intervals.is_empty(),
        "pacing intervals land in telemetry for the GC log"
    );
}

#[test]
fn observed_run_is_identical_in_batching_regime() {
    // Tiny heap, huge churn: the engine fast-forwards through identical
    // cycles; the batch events must not change the arithmetic.
    let s = spec(512 << 10, 8, 8);
    let config = RunConfig::new(12 << 20, CollectorKind::Parallel).with_noise(0.0);
    let (result, recorder) = assert_observed_matches(&s, &config);
    let r = result.expect("the run completes");
    assert!(r.telemetry().gc_count > 50_000);
    assert!(
        recorder
            .events()
            .any(|e| e.type_label() == "batch_fast_forward"),
        "fast-forwards must be visible in the event stream"
    );
}

#[test]
fn observed_failure_is_identical_too() {
    // OOM path: the failing run must fail identically when observed, and
    // the observer must see the declaration.
    let s = spec(128, 100, 8);
    let config = RunConfig::new(64 << 20, CollectorKind::G1).with_noise(0.0);
    let (result, recorder) = assert_observed_matches(&s, &config);
    assert!(result.is_err());
    assert!(recorder.events().any(|e| e.type_label() == "oom_declared"));
}
