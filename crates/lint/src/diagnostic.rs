//! Diagnostics and reports: the typed output of every lint rule.
//!
//! This is the one severity model and the one report formatter in the
//! workspace: the `chopin-lint` rule families (R1xx–R7xx), the
//! `chopin-analyzer` plan/provenance analyses (R8xx) and the harness's
//! `artifact lint`/`artifact analyze` subcommands all emit
//! [`Diagnostic`]s and render them through [`LintReport`].

use chopin_obs::json::json_string;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The configuration is wrong and experiments built on it are invalid;
    /// `artifact lint` exits non-zero.
    Error,
    /// Suspicious but not fatal; reported without failing the gate.
    Warn,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding from one rule at one location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `R203`.
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Where the problem is, e.g. `profile:lusearch` or `sweep:preset:lbo`.
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when a concrete fix is known.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Construct an [`Severity::Error`] diagnostic.
    pub fn error(
        rule: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
            hint: None,
        }
    }

    /// Construct a [`Severity::Warn`] diagnostic.
    pub fn warn(
        rule: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warn,
            location: location.into(),
            message: message.into(),
            hint: None,
        }
    }

    /// Attach a fix hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.rule, self.location, self.message
        )?;
        if let Some(hint) = &self.hint {
            write!(f, " (hint: {hint})")?;
        }
        Ok(())
    }
}

/// The aggregate result of a lint run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// Every finding, in rule order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Wrap a list of diagnostics.
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        LintReport { diagnostics }
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// The process exit code the gate commands (`artifact lint`,
    /// `artifact analyze --check`) share: 1 when any finding is an
    /// error, 0 otherwise. Warnings never fail the gate.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.has_errors())
    }

    /// Merge another report's findings into this one.
    pub fn extend(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Render as a human-readable table, one row per finding, plus a
    /// summary line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.diagnostics.is_empty() {
            out.push_str("lint: no findings\n");
            return out;
        }
        let loc_width = self
            .diagnostics
            .iter()
            .map(|d| d.location.len())
            .max()
            .unwrap_or(0)
            .max("location".len());
        out.push_str(&format!(
            "{:<5} {:<5} {:<loc_width$} message\n",
            "sev", "rule", "location"
        ));
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{:<5} {:<5} {:<loc_width$} {}",
                d.severity.label(),
                d.rule,
                d.location,
                d.message
            ));
            if let Some(hint) = &d.hint {
                out.push_str(&format!(" (hint: {hint})"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} error(s), {} warning(s)\n",
            self.error_count(),
            self.warn_count()
        ));
        out
    }

    /// Render as machine-readable JSON.
    ///
    /// Emitted by hand (the workspace's `serde` is an offline stub without
    /// a serializer); the shape is
    /// `{"errors": N, "warnings": N, "diagnostics": [{...}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"errors\": {}, \"warnings\": {}, \"diagnostics\": [",
            self.error_count(),
            self.warn_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"rule\": {}, \"severity\": {}, \"location\": {}, \"message\": {}, \"hint\": {}}}",
                json_string(d.rule),
                json_string(d.severity.label()),
                json_string(&d.location),
                json_string(&d.message),
                match &d.hint {
                    Some(h) => json_string(h),
                    None => "null".to_string(),
                }
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_flags() {
        let report = LintReport::new(vec![
            Diagnostic::error("R999", "here", "broken"),
            Diagnostic::warn("R998", "there", "odd"),
        ]);
        assert!(report.has_errors());
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warn_count(), 1);
        let table = report.render_table();
        assert!(table.contains("R999"));
        assert!(table.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn empty_report_is_clean() {
        let report = LintReport::default();
        assert!(!report.has_errors());
        assert_eq!(report.render_table(), "lint: no findings\n");
        assert_eq!(
            report.render_json(),
            "{\"errors\": 0, \"warnings\": 0, \"diagnostics\": []}"
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        let report = LintReport::new(vec![Diagnostic::error(
            "R999",
            "a\"b",
            "line\nbreak\tand \\ slash",
        )]);
        let json = report.render_json();
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("line\\nbreak\\tand \\\\ slash"));
        assert!(json.contains("\"hint\": null"));
    }
}
