//! Static validation for the chopin reproduction: a multi-rule analysis
//! pass over every workload profile, mutator spec, collector model, sweep
//! preset and latency-methodology parameter set reachable from the shipped
//! suite — without executing the simulation engine.
//!
//! The paper's methodology results are only as good as the configuration
//! they run on: a workload whose published minimum heaps are inverted, a
//! sweep whose heap factor dips below 1x the minimum heap, or a percentile
//! axis containing 100 all produce plausible-looking but meaningless
//! figures. This crate turns those constraints into a rule catalogue
//! ([`rules::RULES`]) with stable ids, runs them in a pure pass
//! ([`lint_suite`]), and reports typed [`Diagnostic`]s that render as a
//! human table or machine-readable JSON (`artifact lint [--json]`).
//!
//! Rule families:
//!
//! * **R1xx** — nominal-statistic completeness/ranges across the 22
//!   benchmarks and 48 metrics ([`rules::nominal`]).
//! * **R2xx** — cross-field spec consistency, delegating to the runtime's
//!   own [`chopin_runtime::spec::MutatorSpec::validate`]
//!   ([`rules::spec`]).
//! * **R3xx** — heap/collector feasibility, including cycle state-machine
//!   reachability ([`rules::config`]).
//! * **R4xx** — methodology sanity: smoothing windows, LBO grids,
//!   percentile configurations ([`rules::methodology`]).
//! * **R5xx** — suite-registry invariants ([`rules::registry`]).
//! * **R6xx** — observability configuration: export paths, event-ring
//!   capacity, pause-histogram bounds ([`rules::obs`]).
//! * **R7xx** — fault-injection validity: seeded plans, bounded
//!   magnitudes, in-horizon windows, sane supervisor budgets
//!   ([`rules::faults`]).
//! * **R8xx** — plan pre-flight and artifact provenance, implemented by
//!   the `chopin-analyzer` crate against this catalogue.
//! * **R10xx** — source-level determinism and soundness over the
//!   workspace's own Rust code, implemented by the `chopin-srclint`
//!   crate against this catalogue (`artifact srclint`).
//! * **R11xx** — perf-ledger integrity over the `BENCH_*.json`
//!   trajectory points, implemented by the `chopin-perf` crate against
//!   this catalogue (`artifact perf --check`).
//!
//! # Examples
//!
//! ```
//! let report = chopin_lint::lint_suite();
//! assert!(!report.has_errors(), "{}", report.render_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod diagnostic;
pub mod rules;

pub use diagnostic::{Diagnostic, LintReport, Severity};
pub use rules::config::{lint_collector_model, lint_collector_models, lint_sweep_config};
pub use rules::faults::{lint_fault_plan, lint_supervisor_policy};
pub use rules::methodology::{lint_lbo_grid, lint_percentiles, lint_smoothing};
pub use rules::nominal::lint_score_table;
pub use rules::obs::lint_obs_config;
pub use rules::registry::lint_registry;
pub use rules::spec::{lint_latency_set, lint_profile};
pub use rules::{render_catalogue, rule, RuleDef, RULES};

use chopin_core::sweep::SweepConfig;

/// Lint everything reachable from the shipped suite: the registry, every
/// profile, the nominal dataset and score tables, the collector models,
/// the core sweep configurations and the shipped percentile sets.
///
/// Pure: no simulation runs, no I/O — the pass inspects configuration
/// data only, so it is fast enough to gate CI.
pub fn lint_suite() -> LintReport {
    let profiles = chopin_workloads::suite::all();
    let mut diagnostics = Vec::new();

    // R5: the registry itself.
    diagnostics.extend(rules::registry::lint_registry(&profiles));

    // R2 + R4: every profile.
    diagnostics.extend(rules::spec::lint_latency_set(&profiles));
    for p in &profiles {
        diagnostics.extend(rules::spec::lint_profile(p));
        diagnostics.extend(rules::methodology::lint_smoothing(p));
    }

    // R1: the nominal dataset, score tables and rankings.
    let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
    diagnostics.extend(rules::nominal::lint_dataset(&names));

    // R3: the collector cost models and cycle state machines.
    diagnostics.extend(rules::config::lint_collector_models());

    // R3 + R4: the core sweep configurations.
    for (name, config) in [
        ("default", SweepConfig::default()),
        ("quick", SweepConfig::quick()),
    ] {
        diagnostics.extend(rules::config::lint_sweep_config(name, &config));
        diagnostics.extend(rules::methodology::lint_lbo_grid(
            name,
            &config.heap_factors,
        ));
    }

    // R4: the shipped percentile configurations.
    diagnostics.extend(rules::methodology::lint_shipped_percentiles());

    // R6: the default observability configuration.
    diagnostics.extend(rules::obs::lint_obs_config(
        "default",
        &chopin_obs::ObsConfig::default(),
    ));

    // R7: every shipped fault preset and the default supervisor policy.
    let horizon = chopin_workloads::faults::DEFAULT_HORIZON_NS;
    for name in chopin_workloads::faults::PRESET_NAMES {
        if let Some(plan) = chopin_workloads::faults::preset(name, 1, horizon) {
            diagnostics.extend(rules::faults::lint_fault_plan(name, &plan, Some(horizon)));
        }
    }
    diagnostics.extend(rules::faults::lint_supervisor_policy(
        "default",
        &chopin_faults::SupervisorPolicy::default(),
    ));

    LintReport::new(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_suite_lints_clean() {
        let report = lint_suite();
        assert!(
            report.diagnostics.is_empty(),
            "expected a clean suite:\n{}",
            report.render_table()
        );
    }

    #[test]
    fn catalogue_ids_are_unique_and_sorted() {
        // Numeric order, not lexicographic: R1001 follows R903.
        let numbers: Vec<u32> = RULES
            .iter()
            .map(|r| r.id[1..].parse().unwrap_or_else(|_| panic!("{}", r.id)))
            .collect();
        for pair in numbers.windows(2) {
            assert!(
                pair[0] < pair[1],
                "rule ids must be unique and in numeric id order: R{} then R{}",
                pair[0],
                pair[1]
            );
        }
    }
}
