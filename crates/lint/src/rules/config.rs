//! R3xx: heap/collector configuration feasibility.
//!
//! R302 delegates to [`chopin_runtime::collector::costs::CollectorModel::validate`]
//! — the same check the engine runs — and layers the R303 cycle-reachability
//! analysis on top: a model whose coefficients are individually sane can
//! still describe a collector whose state machine has states that can never
//! fire (a dead `Degenerate` fallback on a stop-the-world collector) or
//! states that can never be left (a generational collector that never
//! schedules a `Full`).

use crate::diagnostic::Diagnostic;
use chopin_core::sweep::SweepConfig;
use chopin_runtime::collector::costs::{CollectorModel, ExhaustionPolicy};
use chopin_runtime::collector::CollectorKind;

/// R302 + R303 for one collector model.
pub fn lint_collector_model(model: &CollectorModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = format!("collector:{}", model.kind.label());

    // R302: coefficient sanity, exactly as the engine enforces it.
    if let Err(reason) = model.validate() {
        out.push(
            Diagnostic::error("R302", loc.clone(), reason)
                .with_hint("cost coefficients must be non-negative and in their documented ranges"),
        );
    }

    // R303: cycle state-machine reachability.
    let concurrent = model.concurrent_fraction > 0.0;
    if model.full_gc_period == Some(0) {
        out.push(
            Diagnostic::error(
                "R303",
                loc.clone(),
                "full_gc_period of 0 makes every cycle a full collection; the Young state is dead"
                    .to_string(),
            )
            .with_hint("use None to disable periodic fulls, or a positive period"),
        );
    }
    if model.kind.collects() {
        if !concurrent && model.kind.is_generational() && model.full_gc_period.is_none() {
            out.push(
                Diagnostic::error(
                    "R303",
                    loc.clone(),
                    "generational stop-the-world collector never reaches the Full state: \
                     old-generation garbage accumulates forever"
                        .to_string(),
                )
                .with_hint("set full_gc_period to schedule periodic whole-heap collections"),
            );
        }
        if !concurrent
            && matches!(
                model.exhaustion,
                ExhaustionPolicy::DegenerateFull | ExhaustionPolicy::ThrottleAllocation
            )
        {
            out.push(
                Diagnostic::error(
                    "R303",
                    loc.clone(),
                    format!(
                        "{:?} exhaustion is a dead state on a stop-the-world collector: \
                         it only triggers while a concurrent cycle is in flight",
                        model.exhaustion
                    ),
                )
                .with_hint("stop-the-world collectors exhaust into StopTheWorld"),
            );
        }
        if concurrent && model.exhaustion == ExhaustionPolicy::Fail {
            out.push(Diagnostic::error(
                "R303",
                loc.clone(),
                "a reclaiming concurrent collector must not fail on exhaustion mid-cycle"
                    .to_string(),
            ));
        }
    } else {
        // Epsilon: no collection states are reachable at all.
        if model.exhaustion != ExhaustionPolicy::Fail {
            out.push(Diagnostic::error(
                "R303",
                loc.clone(),
                "a non-reclaiming collector can only Fail on exhaustion".to_string(),
            ));
        }
        if model.full_gc_period.is_some() {
            out.push(Diagnostic::error(
                "R303",
                loc,
                "full_gc_period on a non-reclaiming collector names an unreachable state"
                    .to_string(),
            ));
        }
    }
    out
}

/// R302 + R303 across the five production collectors and Epsilon.
pub fn lint_collector_models() -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for kind in CollectorKind::ALL {
        out.extend(lint_collector_model(&kind.model()));
    }
    out.extend(lint_collector_model(&CollectorKind::Epsilon.model()));
    out
}

/// R301 + R304 + R404 for one sweep configuration. `name` identifies the
/// configuration in diagnostics (e.g. `default`, `preset:lbo`).
pub fn lint_sweep_config(name: &str, config: &SweepConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = format!("sweep:{name}");

    for &factor in &config.heap_factors {
        if !factor.is_finite() {
            out.push(Diagnostic::error(
                "R304",
                loc.clone(),
                format!("heap factor {factor} is not finite"),
            ));
        } else if factor < 1.0 {
            out.push(
                Diagnostic::error(
                    "R301",
                    loc.clone(),
                    format!(
                        "heap factor {factor} is below 1.0: the heap would be smaller than the \
                         benchmark's minimum heap and no run can complete"
                    ),
                )
                .with_hint(
                    "heap sizes are expressed as multiples of the per-benchmark minimum heap",
                ),
            );
        }
    }
    let mut seen = Vec::new();
    for &factor in &config.heap_factors {
        let key = (factor * 1000.0).round() as i64;
        if seen.contains(&key) {
            out.push(Diagnostic::error(
                "R304",
                loc.clone(),
                format!("heap factor {factor} appears more than once"),
            ));
        }
        seen.push(key);
    }
    if config.heap_factors.is_empty() {
        out.push(Diagnostic::error(
            "R304",
            loc.clone(),
            "heap-factor grid is empty".to_string(),
        ));
    }
    if config.collectors.is_empty() {
        out.push(Diagnostic::error(
            "R304",
            loc.clone(),
            "collector list is empty".to_string(),
        ));
    }
    let mut seen_collectors: Vec<CollectorKind> = Vec::new();
    for &c in &config.collectors {
        if seen_collectors.contains(&c) {
            out.push(Diagnostic::error(
                "R304",
                loc.clone(),
                format!("collector {c} appears more than once"),
            ));
        }
        seen_collectors.push(c);
    }
    if config.invocations == 0 {
        out.push(Diagnostic::error(
            "R404",
            loc.clone(),
            "invocations must be positive".to_string(),
        ));
    }
    if config.iterations == 0 {
        out.push(Diagnostic::error(
            "R404",
            loc,
            "iterations must be positive".to_string(),
        ));
    }
    out
}
