//! R4xx: methodology sanity — smoothing windows, LBO grids, percentiles.

use crate::diagnostic::Diagnostic;
use chopin_workloads::profile::WorkloadProfile;

/// The paper's default metered-latency smoothing window, in milliseconds
/// ("100ms as a reasonable middle ground", §4.4).
pub const DEFAULT_SMOOTHING_WINDOW_MS: f64 = 100.0;

/// R401: the default smoothing window must cover the mean request
/// inter-arrival time of every latency-sensitive workload — a window
/// shorter than one inter-arrival smooths nothing and metered latency
/// degenerates to simple latency.
pub fn lint_smoothing(p: &WorkloadProfile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(r) = &p.requests else {
        return out;
    };
    if r.count == 0 {
        // R202's problem, not R401's.
        return out;
    }
    let mean_interarrival_ms = p.derived_exec_time_s() * 1000.0 / r.count as f64;
    if mean_interarrival_ms > DEFAULT_SMOOTHING_WINDOW_MS {
        out.push(
            Diagnostic::warn(
                "R401",
                format!("profile:{}", p.name),
                format!(
                    "mean request inter-arrival ({mean_interarrival_ms:.1} ms) exceeds the \
                     default {DEFAULT_SMOOTHING_WINDOW_MS:.0} ms smoothing window"
                ),
            )
            .with_hint("a window below one inter-arrival smooths nothing; raise the window or the request count"),
        );
    }
    out
}

/// R402: an LBO heap-factor grid must be able to observe the distilled
/// denominator — at least two distinct factors, reaching into the
/// generous-heap region (max factor >= 3x) where the per-run cost
/// approaches its minimum.
pub fn lint_lbo_grid(name: &str, heap_factors: &[f64]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = format!("lbo-grid:{name}");
    let finite: Vec<f64> = heap_factors
        .iter()
        .copied()
        .filter(|f| f.is_finite())
        .collect();
    if finite.len() < 2 {
        out.push(
            Diagnostic::warn(
                "R402",
                loc,
                format!(
                    "{} heap factor(s) cannot form an overhead curve; the distilled \
                     denominator equals the only sample",
                    finite.len()
                ),
            )
            .with_hint("sweep at least two heap factors"),
        );
        return out;
    }
    let max = finite.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    if max < 3.0 {
        out.push(
            Diagnostic::warn(
                "R402",
                loc,
                format!(
                    "largest heap factor is {max}x; the distilled minimum is taken over the \
                     grid and stays inflated without a generous-heap (>= 3x) sample"
                ),
            )
            .with_hint(
                "include a factor of 3x or more so the denominator approaches the true lower bound",
            ),
        );
    }
    out
}

/// R403: a percentile configuration must be strictly ascending with every
/// value in `[0, 100)` (the axis transform diverges at 100).
pub fn lint_percentiles(name: &str, percentiles: &[f64]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = format!("percentiles:{name}");
    for &p in percentiles {
        if !p.is_finite() || !(0.0..100.0).contains(&p) {
            out.push(
                Diagnostic::error(
                    "R403",
                    loc.clone(),
                    format!("percentile {p} is outside [0, 100)"),
                )
                .with_hint("the nines axis position is -log10(1 - p/100), undefined at 100"),
            );
        }
    }
    for pair in percentiles.windows(2) {
        if pair[0].partial_cmp(&pair[1]) != Some(std::cmp::Ordering::Less) {
            out.push(Diagnostic::error(
                "R403",
                loc.clone(),
                format!(
                    "percentiles are not strictly ascending: {} then {}",
                    pair[0], pair[1]
                ),
            ));
        }
    }
    out
}

/// Run R403 over the percentile configurations the figures and reports
/// ship with.
pub fn lint_shipped_percentiles() -> Vec<Diagnostic> {
    let mut out = lint_percentiles(
        "figure",
        &chopin_core::latency::percentile::FIGURE_PERCENTILES,
    );
    out.extend(lint_percentiles(
        "report",
        &chopin_core::latency::percentile::REPORT_PERCENTILES,
    ));
    out
}
