//! The rule catalogue, grouped into thirteen families:
//!
//! * **R1xx** ([`nominal`]) — nominal-statistic completeness and ranges.
//! * **R2xx** ([`spec`]) — cross-field workload-spec consistency.
//! * **R3xx** ([`config`]) — heap/collector configuration feasibility.
//! * **R4xx** ([`methodology`]) — latency/LBO methodology sanity.
//! * **R5xx** ([`registry`]) — suite-registry invariants.
//! * **R6xx** ([`obs`]) — observability-configuration validity.
//! * **R7xx** ([`faults`]) — fault-plan and supervisor-policy validity.
//! * **R8xx** — plan pre-flight and artifact provenance. These rules are
//!   catalogued here (one registry, one severity model) but implemented by
//!   the `chopin-analyzer` crate, which compiles whole experiment plans
//!   into a typed PlanIR before checking them.
//! * **R9xx** — process-isolation (sandbox) configuration: resource-limit
//!   coverage, heartbeat-vs-deadline coherence, and hard-fault backend
//!   requirements. Also implemented by `chopin-analyzer`.
//! * **R10xx** — source-level determinism and soundness: a static pass
//!   over the workspace's *own Rust source* (hand-rolled lexer + scope
//!   tracker, no proc-macro dependency) enforcing the contracts the
//!   integration tests assume — no nondeterministic hash iteration, no
//!   raw wall-clock reads, confined `unsafe`, seeded-RNG-only, canonical
//!   float marshalling. Catalogued here, implemented by the
//!   `chopin-srclint` crate and run by `artifact srclint`.
//! * **R11xx** — perf-ledger integrity: the `BENCH_*.json` trajectory
//!   points are schema-current, statistically meaningful (enough
//!   samples, consistent arrays) and correctly sequenced. Catalogued
//!   here, implemented by the `chopin-perf` crate and run by
//!   `artifact perf --check`.
//! * **R12xx** — fleet-protocol configuration: coordinator/worker
//!   sharding shape (worker count vs the cell matrix), lease deadlines
//!   vs the R808 cost bound, and isolation-model conflicts between
//!   per-cell hard faults and worker-kill storms. Catalogued here,
//!   implemented by `chopin-analyzer` and enforced pre-flight wherever
//!   `--fleet` is accepted.
//! * **R13xx** — fleet-protocol *behaviour*: the safety and bounded-
//!   liveness rules of the coordinator/worker lease protocol itself
//!   (single committed winner per cell, merge minimality against late
//!   results, durability across shard truncation, merged-journal
//!   determinism, drain liveness). Catalogued here, checked on every
//!   reachable state of the bounded state space by the `chopin-model`
//!   exhaustive checker and run by `artifact model --check`.
//! * **R14xx** — partition tolerance: the behaviour rules of the
//!   standby hand-off and authenticated transport (durability across a
//!   takeover, epoch fencing against split brain, token-gated
//!   admission — R1401–R1403, checked by `chopin-model` alongside the
//!   R13xx family) plus the pre-flight configuration rules for the
//!   seeded network-fault shim and standby registration (R1404–R1405,
//!   implemented by `chopin-analyzer` and enforced wherever
//!   `--net-faults`/`--fleet-standby` are accepted).

pub mod config;
pub mod faults;
pub mod methodology;
pub mod nominal;
pub mod obs;
pub mod registry;
pub mod spec;

use crate::diagnostic::Severity;

/// A rule's catalogue entry: stable id, severity and one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleDef {
    /// Stable identifier (`R101`…).
    pub id: &'static str,
    /// Severity of findings from this rule.
    pub severity: Severity,
    /// One-line summary of what the rule enforces.
    pub summary: &'static str,
}

/// Every rule the linter implements, in id order. Rendered by
/// `artifact lint --rules` and kept in sync with the rule modules by the
/// crate's tests.
pub const RULES: [RuleDef; 75] = [
    RuleDef {
        id: "R101",
        severity: Severity::Error,
        summary: "every required nominal metric is present for every benchmark (GML/GMV optional)",
    },
    RuleDef {
        id: "R102",
        severity: Severity::Error,
        summary: "nominal metric values are finite, and non-negative outside the signed PFS/PLS/UAI columns",
    },
    RuleDef {
        id: "R103",
        severity: Severity::Error,
        summary: "nominal scores lie in 0..=10",
    },
    RuleDef {
        id: "R104",
        severity: Severity::Error,
        summary: "rankings are valid competition rankings: ranks in 1..=of, best rank is 1",
    },
    RuleDef {
        id: "R105",
        severity: Severity::Error,
        summary: "the nominal dataset rows and the suite registry name the same benchmarks",
    },
    RuleDef {
        id: "R201",
        severity: Severity::Error,
        summary: "every size class of every profile builds a valid MutatorSpec",
    },
    RuleDef {
        id: "R202",
        severity: Severity::Error,
        summary: "request profiles are valid: positive count/workers, finite non-negative dispersion",
    },
    RuleDef {
        id: "R203",
        severity: Severity::Error,
        summary: "request workers do not exceed the request count",
    },
    RuleDef {
        id: "R204",
        severity: Severity::Error,
        summary: "the canonical latency-sensitive benchmarks (and only they) carry request profiles",
    },
    RuleDef {
        id: "R205",
        severity: Severity::Error,
        summary: "published minimum heaps are monotone: GMS <= GMD <= GML <= GMV, and GMU >= GMD",
    },
    RuleDef {
        id: "R206",
        severity: Severity::Error,
        summary: "allocation-rate and live-set curve parameters are positive and well-formed",
    },
    RuleDef {
        id: "R301",
        severity: Severity::Error,
        summary: "sweep heap factors are at least 1.0 x the minimum heap",
    },
    RuleDef {
        id: "R302",
        severity: Severity::Error,
        summary: "collector cost models validate: non-negative, in-range coefficients",
    },
    RuleDef {
        id: "R303",
        severity: Severity::Error,
        summary: "collector cycle state machines have no unreachable or dead states",
    },
    RuleDef {
        id: "R304",
        severity: Severity::Error,
        summary: "sweep collector lists and heap-factor grids are non-empty, finite and duplicate-free",
    },
    RuleDef {
        id: "R401",
        severity: Severity::Warn,
        summary: "the default smoothing window covers the mean request inter-arrival time",
    },
    RuleDef {
        id: "R402",
        severity: Severity::Warn,
        summary: "LBO heap-factor grids sample the generous-heap denominator (>= 2 factors, max >= 3x)",
    },
    RuleDef {
        id: "R403",
        severity: Severity::Error,
        summary: "percentile configurations are strictly ascending and lie in [0, 100)",
    },
    RuleDef {
        id: "R404",
        severity: Severity::Error,
        summary: "sweep invocation and iteration counts are positive",
    },
    RuleDef {
        id: "R501",
        severity: Severity::Error,
        summary: "the suite registers exactly 22 workloads",
    },
    RuleDef {
        id: "R502",
        severity: Severity::Error,
        summary: "workload names are unique",
    },
    RuleDef {
        id: "R503",
        severity: Severity::Error,
        summary: "the suite registry is sorted alphabetically by name",
    },
    RuleDef {
        id: "R504",
        severity: Severity::Warn,
        summary: "exactly 8 workloads are marked new-in-Chopin",
    },
    RuleDef {
        id: "R505",
        severity: Severity::Error,
        summary: "exactly 9 workloads are latency-sensitive",
    },
    RuleDef {
        id: "R601",
        severity: Severity::Error,
        summary: "trace/event export paths are writable-shaped files, not directories",
    },
    RuleDef {
        id: "R602",
        severity: Severity::Error,
        summary: "the event ring capacity is positive",
    },
    RuleDef {
        id: "R603",
        severity: Severity::Error,
        summary: "pause-histogram bucket bounds are positive and strictly increasing",
    },
    RuleDef {
        id: "R701",
        severity: Severity::Error,
        summary: "non-empty fault plans carry a non-zero seed (reproducible chaos)",
    },
    RuleDef {
        id: "R702",
        severity: Severity::Error,
        summary: "fault magnitudes are finite and within their documented ranges",
    },
    RuleDef {
        id: "R703",
        severity: Severity::Error,
        summary: "fault windows have positive duration, lie within the run horizon and stay under the window cap",
    },
    RuleDef {
        id: "R704",
        severity: Severity::Error,
        summary: "supervisor retry/backoff/deadline budgets are positive and bounded",
    },
    RuleDef {
        id: "R801",
        severity: Severity::Error,
        summary: "every benchmark x collector pair has at least one feasible heap cell in the sweep grid",
    },
    RuleDef {
        id: "R802",
        severity: Severity::Warn,
        summary: "individual sweep cells below the collector-adjusted minimum heap are flagged as predictably infeasible",
    },
    RuleDef {
        id: "R803",
        severity: Severity::Error,
        summary: "the latency methodology only targets latency-sensitive benchmarks",
    },
    RuleDef {
        id: "R804",
        severity: Severity::Error,
        summary: "timed iterations exist beyond iteration 0 (a single iteration measures cold start as steady state)",
    },
    RuleDef {
        id: "R805",
        severity: Severity::Warn,
        summary: "residual warmup at the timed iteration is below the steady-state threshold",
    },
    RuleDef {
        id: "R806",
        severity: Severity::Error,
        summary: "fault windows start within reach of the planned run (no dead fault plans)",
    },
    RuleDef {
        id: "R807",
        severity: Severity::Warn,
        summary: "fault windows do not blanket the whole run (always-on faults are a baseline, not a perturbation)",
    },
    RuleDef {
        id: "R808",
        severity: Severity::Error,
        summary: "per-cell cost lower bounds fit inside the supervisor's cell deadline",
    },
    RuleDef {
        id: "R809",
        severity: Severity::Warn,
        summary: "long sweeps (over 24h estimated) run with a crash-safe journal",
    },
    RuleDef {
        id: "R810",
        severity: Severity::Error,
        summary: "result artifacts parse as a runbms CSV or a sweep journal",
    },
    RuleDef {
        id: "R811",
        severity: Severity::Error,
        summary: "result artifacts match the plan that claims them: fingerprint, benchmarks, collectors, heap factors, sample counts",
    },
    RuleDef {
        id: "R812",
        severity: Severity::Error,
        summary: "result rows satisfy measurement invariants: finite positive times, distillable <= total, LBO curves >= 1",
    },
    RuleDef {
        id: "R813",
        severity: Severity::Warn,
        summary: "artifacts cover every feasible planned cell (incomplete runs are resumable, not publishable)",
    },
    RuleDef {
        id: "R901",
        severity: Severity::Error,
        summary: "an explicit sandbox RLIMIT_AS override must cover every feasible cell's heap plus the worker base (fix: raise --rlimit-as-mb or drop it to derive limits per cell)",
    },
    RuleDef {
        id: "R902",
        severity: Severity::Error,
        summary: "the sandbox heartbeat timeout (interval x grace) must fire before the cell deadline, or wedged cells are never detected (fix: lower --heartbeat-ms or raise --cell-deadline)",
    },
    RuleDef {
        id: "R903",
        severity: Severity::Error,
        summary: "hard-fault injection (kill/abort/oom) requires process isolation; under threads the first victim kills the whole sweep (fix: add --isolation process)",
    },
    RuleDef {
        id: "R1001",
        severity: Severity::Error,
        summary: "no HashMap/HashSet in non-test workspace source: hash iteration order is nondeterministic and leaks into CSV/journal/fingerprint bytes (use BTreeMap/BTreeSet or a sorted drain)",
    },
    RuleDef {
        id: "R1002",
        severity: Severity::Error,
        summary: "wall-clock reads (Instant::now/SystemTime::now) only inside the SupervisorClock/WallSpan abstractions",
    },
    RuleDef {
        id: "R1003",
        severity: Severity::Error,
        summary: "thread::spawn only in the supervision layer (crates/sandbox, the harness supervisor and its sandbox glue)",
    },
    RuleDef {
        id: "R1004",
        severity: Severity::Error,
        summary: "persisted-artifact writers marshal floats via shortest-round-trip Debug formatting, never fixed-precision or scientific specs",
    },
    RuleDef {
        id: "R1005",
        severity: Severity::Error,
        summary: "`unsafe` is confined to crates/sandbox (the workspace's one audited FFI boundary)",
    },
    RuleDef {
        id: "R1006",
        severity: Severity::Error,
        summary: "std::process::exit only in bin entry points: library code returns exit codes so callers keep destructors and journals intact",
    },
    RuleDef {
        id: "R1007",
        severity: Severity::Error,
        summary: "no ambient entropy (thread_rng/from_entropy/OsRng/rand::random): every random stream flows from an explicit seed",
    },
    RuleDef {
        id: "R1008",
        severity: Severity::Error,
        summary: "#[allow(...)] attributes carry an adjacent justification comment (same line or the line above)",
    },
    RuleDef {
        id: "R1009",
        severity: Severity::Error,
        summary: "the srclint engine, this catalogue and the README rule table agree: no rule is implemented but uncatalogued, catalogued but unimplemented, or undocumented",
    },
    RuleDef {
        id: "R1010",
        severity: Severity::Error,
        summary: "srclint:allow suppressions are themselves linted: well-formed, carry a reason, name known rules and suppress at least one finding",
    },
    RuleDef {
        id: "R1011",
        severity: Severity::Error,
        summary: "no dbg!/todo!/unimplemented! in non-test code",
    },
    RuleDef {
        id: "R1012",
        severity: Severity::Error,
        summary: "float orderings use total_cmp, not partial_cmp().unwrap(): a NaN must not panic the sweep mid-suite",
    },
    RuleDef {
        id: "R1101",
        severity: Severity::Error,
        summary: "every perf-ledger point declares the current bench-report schema version (legacy v0 points are migrated, not accumulated)",
    },
    RuleDef {
        id: "R1102",
        severity: Severity::Error,
        summary: "every bench records at least 5 samples, and a non-empty samples_ns array matches its declared sample_count",
    },
    RuleDef {
        id: "R1103",
        severity: Severity::Error,
        summary: "ledger file names and document PR numbers agree (BENCH_<PR>.json declares pr = <PR>) and the ledger's PRs are strictly ascending",
    },
    RuleDef {
        id: "R1201",
        severity: Severity::Error,
        summary: "the fleet worker count fits the plan: at least 1, at most 256, and no more workers than cells in the sweep matrix",
    },
    RuleDef {
        id: "R1202",
        severity: Severity::Error,
        summary: "the lease deadline covers the R808 cost lower bound of the slowest feasible cell: a lease that must expire is a reassignment storm, not a safety net",
    },
    RuleDef {
        id: "R1203",
        severity: Severity::Error,
        summary: "per-cell hard faults (--hard-faults) are not combined with a fleet: workers run cells without the sandbox backstop; storm workers instead (--fleet-storm)",
    },
    RuleDef {
        id: "R1301",
        severity: Severity::Error,
        summary: "no cell is committed to the base journal by two winners: every cell has at most one sealed row",
    },
    RuleDef {
        id: "R1302",
        severity: Severity::Error,
        summary: "the merge winner is the (attempt, worker)-minimal candidate ever offered: a generation-checked late result never overwrites an established winner",
    },
    RuleDef {
        id: "R1303",
        severity: Severity::Error,
        summary: "no completed cell is lost between shard truncation and base-journal persist: every durable completion survives in the base, a shard, or the live coordinator",
    },
    RuleDef {
        id: "R1304",
        severity: Severity::Error,
        summary: "the merged journal is deterministic: every committed payload and every drained resolution is the pure function of the sweep matrix",
    },
    RuleDef {
        id: "R1305",
        severity: Severity::Error,
        summary: "bounded liveness under fairness: every reachable state can still drain (every cell reaches Done or quarantine; no drain deadlock)",
    },
    RuleDef {
        id: "R1401",
        severity: Severity::Error,
        summary: "no committed result is lost across a coordinator hand-off: the standby's takeover absorbs base + shards before serving the next epoch",
    },
    RuleDef {
        id: "R1402",
        severity: Severity::Error,
        summary: "single active coordinator epoch: frames echoing a dead incarnation's nonce are fenced, never applied to the live lease table",
    },
    RuleDef {
        id: "R1403",
        severity: Severity::Error,
        summary: "token-gated admission both ways: a wrong or missing --fleet-token is refused at @hello, and the run's own token is always admitted",
    },
    RuleDef {
        id: "R1404",
        severity: Severity::Error,
        summary: "net-fault injection needs a fleet and headroom: --net-faults requires --fleet, and the plan's injected delay ceiling must stay under the lease deadline",
    },
    RuleDef {
        id: "R1405",
        severity: Severity::Error,
        summary: "a standby coordinator needs a journal: --fleet-standby requires --journal pointing at the primary's journal so a takeover can absorb it",
    },
];

/// Look up a rule's catalogue entry by id.
pub fn rule(id: &str) -> Option<&'static RuleDef> {
    RULES.iter().find(|r| r.id == id)
}

/// Render the catalogue as the table printed by `artifact lint --rules`:
/// one row per rule with its severity and summary.
pub fn render_catalogue() -> String {
    let mut out = String::new();
    out.push_str("rule  severity  summary\n");
    for r in &RULES {
        out.push_str(&format!(
            "{:<5} {:<9} {}\n",
            r.id,
            r.severity.label(),
            r.summary
        ));
    }
    out
}
