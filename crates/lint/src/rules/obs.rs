//! R6xx: observability configuration validity — export paths, event-ring
//! capacity and pause-histogram bucket bounds.
//!
//! A bad observability configuration fails *after* the simulation has run
//! (an unwritable trace path) or silently degrades the data (a zero-sized
//! ring, non-monotone histogram buckets). These rules reject it before a
//! single slice executes.

use crate::diagnostic::Diagnostic;
use chopin_obs::ObsConfig;

/// R601: an export path must be writable-shaped — non-empty, not a
/// directory-like path (no trailing separator), and not pointing into a
/// parent that is obviously not a directory name (empty component).
fn lint_output_path(name: &str, flag: &str, path: &str) -> Vec<Diagnostic> {
    let loc = format!("obs:{name}:{flag}");
    let mut out = Vec::new();
    if path.trim().is_empty() {
        out.push(
            Diagnostic::error("R601", loc, format!("{flag} path is empty"))
                .with_hint("pass a file path, e.g. out/trace.json"),
        );
        return out;
    }
    if path.ends_with('/') || path.ends_with('\\') {
        out.push(
            Diagnostic::error(
                "R601",
                loc.clone(),
                format!("{flag} path `{path}` names a directory, not a file"),
            )
            .with_hint("append a file name, e.g. trace.json"),
        );
    }
    if path.contains("//") {
        // `a//b` style paths hide typos; absolute paths legitimately start
        // with a single separator and trailing ones are caught above.
        out.push(
            Diagnostic::error(
                "R601",
                loc,
                format!("{flag} path `{path}` contains an empty component"),
            )
            .with_hint("remove the doubled separator"),
        );
    }
    out
}

/// Lint one observability configuration: R601 (export paths are
/// writable-shaped), R602 (ring capacity is positive), R603 (histogram
/// bounds are positive, finite in count, strictly increasing).
///
/// # Examples
///
/// ```
/// use chopin_obs::ObsConfig;
///
/// assert!(chopin_lint::lint_obs_config("default", &ObsConfig::default()).is_empty());
/// let bad = ObsConfig { ring_capacity: 0, ..ObsConfig::default() };
/// assert!(!chopin_lint::lint_obs_config("bad", &bad).is_empty());
/// ```
pub fn lint_obs_config(name: &str, config: &ObsConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // R601: output paths.
    if let Some(path) = &config.events_out {
        out.extend(lint_output_path(name, "--events-out", path));
    }
    if let Some(path) = &config.trace_out {
        out.extend(lint_output_path(name, "--trace-out", path));
    }

    // R602: ring capacity.
    if config.ring_capacity == 0 {
        out.push(
            Diagnostic::error(
                "R602",
                format!("obs:{name}:ring"),
                "event ring capacity is 0; every event would be dropped",
            )
            .with_hint("use a positive capacity (default 65536)"),
        );
    }

    // R603: histogram bounds.
    let bounds = &config.pause_histogram_bounds;
    let loc = format!("obs:{name}:histogram");
    if bounds.is_empty() {
        out.push(
            Diagnostic::error(
                "R603",
                loc.clone(),
                "pause histogram has no bucket bounds; every pause lands in one overflow bucket \
                 and quantiles collapse to the maximum",
            )
            .with_hint("use chopin_obs::default_pause_bounds()"),
        );
    }
    if bounds.first().is_some_and(|&b| b == 0) {
        out.push(
            Diagnostic::error(
                "R603",
                loc.clone(),
                "histogram bucket bound 0 is degenerate",
            )
            .with_hint("bounds must be positive nanosecond values"),
        );
    }
    for w in bounds.windows(2) {
        if w[0] >= w[1] {
            out.push(
                Diagnostic::error(
                    "R603",
                    loc,
                    format!(
                        "histogram bounds are not strictly increasing: {} then {}",
                        w[0], w[1]
                    ),
                )
                .with_hint("sort and deduplicate the bucket bounds"),
            );
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_clean() {
        assert!(lint_obs_config("default", &ObsConfig::default()).is_empty());
    }

    #[test]
    fn good_paths_are_clean() {
        let cfg = ObsConfig {
            events_out: Some("out/events.jsonl".to_string()),
            trace_out: Some("/tmp/trace.json".to_string()),
            ..ObsConfig::default()
        };
        assert!(lint_obs_config("ok", &cfg).is_empty());
    }

    #[test]
    fn r601_rejects_directory_and_empty_paths() {
        for bad in ["", "   ", "out/", "out//trace.json"] {
            let cfg = ObsConfig {
                trace_out: Some(bad.to_string()),
                ..ObsConfig::default()
            };
            let diags = lint_obs_config("bad", &cfg);
            assert!(
                diags.iter().any(|d| d.rule == "R601"),
                "path {bad:?} should fire R601"
            );
        }
    }

    #[test]
    fn r602_rejects_zero_capacity() {
        let cfg = ObsConfig {
            ring_capacity: 0,
            ..ObsConfig::default()
        };
        let diags = lint_obs_config("bad", &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "R602");
    }

    #[test]
    fn r603_rejects_degenerate_bounds() {
        for bad in [vec![], vec![0, 10], vec![10, 10, 20], vec![20, 10]] {
            let cfg = ObsConfig {
                pause_histogram_bounds: bad.clone(),
                ..ObsConfig::default()
            };
            let diags = lint_obs_config("bad", &cfg);
            assert!(
                diags.iter().any(|d| d.rule == "R603"),
                "bounds {bad:?} should fire R603"
            );
        }
    }
}
