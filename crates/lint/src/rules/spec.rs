//! R2xx: cross-field consistency of workload profiles and the mutator
//! specs built from them.
//!
//! R201 delegates to [`chopin_runtime::spec::MutatorSpec::validate`] (via
//! the builder) and R202 to
//! [`chopin_runtime::spec::RequestProfile::validate`], so the static gate
//! and the runtime preconditions can never drift apart.

use crate::diagnostic::Diagnostic;
use chopin_runtime::spec::RequestProfile;
use chopin_workloads::profile::{SizeClass, WorkloadProfile};

/// The nine latency-sensitive benchmarks of the suite: "Nine of the 22
/// benchmarks are request-based" — these and only these may carry a
/// request profile.
pub const LATENCY_SENSITIVE: [&str; 9] = [
    "cassandra",
    "h2",
    "jme",
    "kafka",
    "lusearch",
    "spring",
    "tomcat",
    "tradebeans",
    "tradesoap",
];

/// Run the whole R2 family on one profile.
pub fn lint_profile(p: &WorkloadProfile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = format!("profile:{}", p.name);

    // R201: every size class the profile offers must build a valid spec.
    for size in SizeClass::ALL {
        if let Some(Err(e)) = p.to_spec(size) {
            out.push(
                Diagnostic::error(
                    "R201",
                    format!("{loc}:{size:?}"),
                    format!("spec does not build: field {} {}", e.field(), e.reason()),
                )
                .with_hint(
                    "recalibrate the profile so the derived spec passes MutatorSpec::validate",
                ),
            );
        }
    }

    // R202 + R203: request-profile consistency.
    if let Some(r) = &p.requests {
        let profile = RequestProfile {
            count: r.count,
            workers: r.workers,
            dispersion: r.dispersion,
        };
        if let Err(e) = profile.validate() {
            out.push(Diagnostic::error(
                "R202",
                loc.clone(),
                format!(
                    "request profile invalid: field {} {}",
                    e.field(),
                    e.reason()
                ),
            ));
        }
        if r.workers > r.count {
            out.push(
                Diagnostic::error(
                    "R203",
                    loc.clone(),
                    format!(
                        "request workers ({}) exceed the request count ({})",
                        r.workers, r.count
                    ),
                )
                .with_hint(
                    "idle workers distort metered latency; cap workers at the request count",
                ),
            );
        }
    }

    // R205: published minimum heaps must be monotone in the size classes,
    // and the uncompressed footprint can only inflate.
    let gms = p.min_heap_small_mb;
    let gmd = p.min_heap_default_mb;
    if gms > gmd {
        out.push(Diagnostic::error(
            "R205",
            loc.clone(),
            format!("GMS ({gms} MB) exceeds GMD ({gmd} MB)"),
        ));
    }
    if let Some(gml) = p.min_heap_large_mb {
        if gml < gmd {
            out.push(Diagnostic::error(
                "R205",
                loc.clone(),
                format!("GML ({gml} MB) is below GMD ({gmd} MB)"),
            ));
        }
        if let Some(gmv) = p.min_heap_vlarge_mb {
            if gmv < gml {
                out.push(Diagnostic::error(
                    "R205",
                    loc.clone(),
                    format!("GMV ({gmv} MB) is below GML ({gml} MB)"),
                ));
            }
        }
    }
    if p.min_heap_uncompressed_mb < gmd {
        out.push(
            Diagnostic::error(
                "R205",
                loc.clone(),
                format!(
                    "GMU ({} MB) is below GMD ({gmd} MB): uncompressed pointers cannot shrink the heap",
                    p.min_heap_uncompressed_mb
                ),
            )
            .with_hint("GMU/GMD is the pointer-inflation factor and must be >= 1"),
        );
    }

    // R206: the allocation-rate and live-set curves must be positive and
    // well-formed, otherwise derived execution time and heap pressure are
    // meaningless.
    if !(p.alloc_rate_mb_s.is_finite() && p.alloc_rate_mb_s > 0.0) {
        out.push(Diagnostic::error(
            "R206",
            loc.clone(),
            format!(
                "allocation rate ARA must be positive and finite, got {}",
                p.alloc_rate_mb_s
            ),
        ));
    }
    if !(p.turnover.is_finite() && p.turnover > 0.0) {
        out.push(Diagnostic::error(
            "R206",
            loc.clone(),
            format!(
                "turnover GTO must be positive and finite, got {}",
                p.turnover
            ),
        ));
    }
    if !(p.exec_time_s.is_finite() && p.exec_time_s > 0.0) {
        out.push(Diagnostic::error(
            "R206",
            loc.clone(),
            format!(
                "execution time PET must be positive and finite, got {}",
                p.exec_time_s
            ),
        ));
    }
    if !(0.0..=1.0).contains(&p.live_floor_fraction) {
        out.push(Diagnostic::error(
            "R206",
            loc.clone(),
            format!(
                "live_floor_fraction must lie in [0, 1] so the live-set ramp is monotone, got {}",
                p.live_floor_fraction
            ),
        ));
    }
    if !(0.0..=1.0).contains(&p.build_fraction) {
        out.push(Diagnostic::error(
            "R206",
            loc,
            format!(
                "build_fraction must lie in [0, 1], got {}",
                p.build_fraction
            ),
        ));
    }

    out
}

/// R204 (name-aware): benchmarks on the canonical latency-sensitive list
/// must carry request profiles, and no other *canonical* benchmark may.
/// Unknown names (synthetic test profiles) are exempt.
pub fn lint_latency_set(profiles: &[WorkloadProfile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in profiles {
        let canonical = LATENCY_SENSITIVE.contains(&p.name);
        if canonical && p.requests.is_none() {
            out.push(
                Diagnostic::error(
                    "R204",
                    format!("profile:{}", p.name),
                    "canonical latency-sensitive benchmark has no request profile".to_string(),
                )
                .with_hint("add a RequestSpec; Figures 3 and 6 depend on its events"),
            );
        }
        if !canonical && p.requests.is_some() && chopin_workloads::suite::by_name(p.name).is_some()
        {
            out.push(Diagnostic::error(
                "R204",
                format!("profile:{}", p.name),
                "benchmark carries a request profile but is not on the canonical latency-sensitive list"
                    .to_string(),
            ));
        }
    }
    out
}
