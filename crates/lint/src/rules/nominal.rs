//! R1xx: nominal-statistic completeness, ranges, scores and rankings.

use crate::diagnostic::Diagnostic;
use chopin_core::nominal::dataset::NominalRow;
use chopin_core::nominal::metric::METRICS;
use chopin_core::nominal::score::ScoredMetric;

/// Metrics that legitimately have no value for some benchmarks: the large
/// and very-large heap configurations only exist where the workload ships
/// those input sizes (e.g. fop has no large input; only h2 has a vlarge
/// one).
pub const OPTIONAL_METRICS: [&str; 2] = ["GML", "GMV"];

/// Metrics that are deltas and may legitimately be negative: LLC
/// sensitivity (PLS — sunflow speeds up marginally under a restricted
/// cache), frequency sensitivity (PFS — zxing reports a small negative
/// speedup) and the Golden Cove v Zen 4 change (UAI — avrora and
/// cassandra run faster on Zen 4).
const SIGNED_METRICS: [&str; 3] = ["PFS", "PLS", "UAI"];

/// R101 + R102: every required metric present, every value finite and in
/// its sign range.
pub fn lint_rows(rows: &[NominalRow]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for row in rows {
        for (i, def) in METRICS.iter().enumerate() {
            match row.values.get(i).copied().flatten() {
                None => {
                    if !OPTIONAL_METRICS.contains(&def.code) {
                        out.push(
                            Diagnostic::error(
                                "R101",
                                format!("nominal:{}:{}", row.benchmark, def.code),
                                format!(
                                    "required metric {} is missing for {}",
                                    def.code, row.benchmark
                                ),
                            )
                            .with_hint("fill the cell from the appendix tables or mark the metric optional"),
                        );
                    }
                }
                Some(v) => {
                    if !v.is_finite() {
                        out.push(Diagnostic::error(
                            "R102",
                            format!("nominal:{}:{}", row.benchmark, def.code),
                            format!("metric {} is not finite ({v})", def.code),
                        ));
                    } else if v < 0.0 && !SIGNED_METRICS.contains(&def.code) {
                        out.push(
                            Diagnostic::error(
                                "R102",
                                format!("nominal:{}:{}", row.benchmark, def.code),
                                format!(
                                    "metric {} is negative ({v}) but only PFS/PLS/UAI may be",
                                    def.code
                                ),
                            )
                            .with_hint("check the sign convention against Table 1"),
                        );
                    }
                }
            }
        }
    }
    out
}

/// R103 + R104: scores in `0..=10`, ranks in `1..=of`.
pub fn lint_score_table(benchmark: &str, table: &[ScoredMetric]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for s in table {
        if s.score > 10 {
            out.push(
                Diagnostic::error(
                    "R103",
                    format!("score:{}:{}", benchmark, s.code),
                    format!("score {} is outside 0..=10", s.score),
                )
                .with_hint("scores are linear in rank: 10*(of-rank)/(of-1), clamped to 0..=10"),
            );
        }
        if s.rank == 0 || s.rank > s.of {
            out.push(
                Diagnostic::error(
                    "R104",
                    format!("score:{}:{}", benchmark, s.code),
                    format!(
                        "rank {} is outside 1..={} (competition ranking)",
                        s.rank, s.of
                    ),
                )
                .with_hint("rank 1 is the largest value; every rank must lie in 1..=of"),
            );
        }
    }
    out
}

/// R104 (suite-wide): a metric's ranking across benchmarks must be a valid
/// competition ranking — every rank in `1..=of` and the best rank present.
pub fn lint_ranking(code: &str, ranking: &[(&str, f64, usize)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let of = ranking.len();
    if of == 0 {
        return out;
    }
    for (bench, _, rank) in ranking {
        if *rank == 0 || *rank > of {
            out.push(Diagnostic::error(
                "R104",
                format!("ranking:{code}:{bench}"),
                format!("rank {rank} is outside 1..={of}"),
            ));
        }
    }
    if !ranking.iter().any(|(_, _, rank)| *rank == 1) {
        out.push(Diagnostic::error(
            "R104",
            format!("ranking:{code}"),
            "no benchmark holds rank 1 (the ranking has a gap at the top)".to_string(),
        ));
    }
    out
}

/// R105: the dataset and the suite registry must name the same benchmarks.
pub fn lint_row_names(rows: &[NominalRow], suite_names: &[&str]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for row in rows {
        if !suite_names.contains(&row.benchmark) {
            out.push(Diagnostic::error(
                "R105",
                format!("nominal:{}", row.benchmark),
                "dataset row has no matching suite profile".to_string(),
            ));
        }
    }
    for name in suite_names {
        if !rows.iter().any(|r| r.benchmark == *name) {
            out.push(
                Diagnostic::error(
                    "R105",
                    format!("profile:{name}"),
                    "suite profile has no nominal dataset row".to_string(),
                )
                .with_hint("add the benchmark's row to chopin_core::nominal::dataset"),
            );
        }
    }
    out
}

/// Run the whole R1 family against the shipped dataset and score tables.
pub fn lint_dataset(suite_names: &[&str]) -> Vec<Diagnostic> {
    let rows = chopin_core::nominal::dataset::dataset();
    let mut out = lint_rows(&rows);
    out.extend(lint_row_names(&rows, suite_names));
    for row in &rows {
        if let Some(table) = chopin_core::nominal::score::score_table(row.benchmark) {
            out.extend(lint_score_table(row.benchmark, &table));
        } else {
            out.push(Diagnostic::error(
                "R105",
                format!("score:{}", row.benchmark),
                "no score table for a benchmark that has a dataset row".to_string(),
            ));
        }
    }
    for def in &METRICS {
        if let Some(ranking) = chopin_core::nominal::score::metric_ranking(def.code) {
            let borrowed: Vec<(&str, f64, usize)> =
                ranking.iter().map(|(b, v, r)| (*b, *v, *r)).collect();
            out.extend(lint_ranking(def.code, &borrowed));
        }
    }
    out
}
