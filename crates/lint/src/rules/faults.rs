//! R7xx: fault-injection and resilient-execution validity — fault plans
//! are seeded and bounded, their windows lie inside the run horizon, and
//! supervisor retry/backoff/deadline budgets are positive and bounded.
//!
//! A malformed fault plan is worse than no fault plan: a zero seed makes
//! the chaos campaign unreproducible, an infinite spike factor turns the
//! run into nonsense, and a window past the run horizon silently never
//! fires, so the experiment "passes" without testing anything. These rules
//! mirror [`FaultPlan::validate`] and [`SupervisorPolicy::validate`] as
//! static checks over every shipped preset and policy — but report *every*
//! violation rather than the first, as a lint should.

use crate::diagnostic::Diagnostic;
use chopin_faults::{FaultPlan, SupervisorPolicy, MAX_WINDOWS};
use chopin_faults::{MAX_BACKOFF_MS, MAX_DEADLINE_MS, MAX_RETRIES_BOUND};

/// Lint one fault plan: R701 (non-empty plans carry a non-zero seed),
/// R702 (finite, in-range magnitudes), R703 (positive-duration windows
/// inside the horizon, bounded window count).
///
/// # Examples
///
/// ```
/// use chopin_faults::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new(42).with_window(0, 1_000, FaultKind::ForceDegenerate);
/// assert!(chopin_lint::lint_fault_plan("ok", &plan, Some(1_000)).is_empty());
/// let unseeded = FaultPlan::new(0).with_window(0, 1_000, FaultKind::ForceDegenerate);
/// assert_eq!(chopin_lint::lint_fault_plan("bad", &unseeded, None)[0].rule, "R701");
/// ```
pub fn lint_fault_plan(name: &str, plan: &FaultPlan, horizon_ns: Option<u64>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // R701: seeded.
    if !plan.windows.is_empty() && plan.seed == 0 {
        out.push(
            Diagnostic::error(
                "R701",
                format!("faults:{name}:seed"),
                "non-empty fault plan has seed 0; the campaign would be unreproducible",
            )
            .with_hint("set an explicit non-zero seed (presets substitute FALLBACK_SEED)"),
        );
    }

    // R703: bounded window count.
    if plan.windows.len() > MAX_WINDOWS {
        out.push(
            Diagnostic::error(
                "R703",
                format!("faults:{name}:windows"),
                format!(
                    "{} windows exceed the {MAX_WINDOWS}-window cap",
                    plan.windows.len()
                ),
            )
            .with_hint("coarsen the storm: fewer windows with longer duty cycles"),
        );
    }

    for (i, w) in plan.windows.iter().enumerate() {
        let loc = format!("faults:{name}:windows[{i}]");
        // R702: magnitudes.
        if let Some(reason) = w.kind.magnitude_error() {
            out.push(
                Diagnostic::error("R702", loc.clone(), format!("{}: {reason}", w.kind.label()))
                    .with_hint("see FaultKind's documented magnitude ranges"),
            );
        }
        // R703: window shape and horizon.
        if w.end_ns <= w.start_ns {
            out.push(
                Diagnostic::error(
                    "R703",
                    loc,
                    format!(
                        "window [{}, {}) has no positive duration",
                        w.start_ns, w.end_ns
                    ),
                )
                .with_hint("end_ns must exceed start_ns"),
            );
        } else if let Some(h) = horizon_ns {
            if w.end_ns > h {
                out.push(
                    Diagnostic::error(
                        "R703",
                        loc,
                        format!("window ends at {} — beyond the run horizon {h}", w.end_ns),
                    )
                    .with_hint("a window past the horizon never fires; shrink it or drop it"),
                );
            }
        }
    }
    out
}

/// Lint one supervisor policy (R704): deadline, retry and backoff budgets
/// are positive and bounded.
///
/// # Examples
///
/// ```
/// use chopin_faults::SupervisorPolicy;
///
/// assert!(chopin_lint::lint_supervisor_policy("ok", &SupervisorPolicy::default()).is_empty());
/// let bad = SupervisorPolicy { backoff_base_ms: 0, ..SupervisorPolicy::default() };
/// assert_eq!(chopin_lint::lint_supervisor_policy("bad", &bad)[0].rule, "R704");
/// ```
pub fn lint_supervisor_policy(name: &str, policy: &SupervisorPolicy) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = |field: &str| format!("policy:{name}:{field}");

    match policy.cell_deadline_ms {
        Some(0) => out.push(
            Diagnostic::error(
                "R704",
                loc("cell_deadline_ms"),
                "cell deadline of 0ms would time out every attempt",
            )
            .with_hint("use None to disable the watchdog"),
        ),
        Some(d) if d > MAX_DEADLINE_MS => out.push(
            Diagnostic::error(
                "R704",
                loc("cell_deadline_ms"),
                format!("{d}ms exceeds the {MAX_DEADLINE_MS}ms bound"),
            )
            .with_hint("a cell that needs more than a day is a hang"),
        ),
        _ => {}
    }
    if policy.max_retries > MAX_RETRIES_BOUND {
        out.push(
            Diagnostic::error(
                "R704",
                loc("max_retries"),
                format!(
                    "{} retries exceed the {MAX_RETRIES_BOUND} bound",
                    policy.max_retries
                ),
            )
            .with_hint("a cell that fails this often belongs in quarantine"),
        );
    }
    if policy.backoff_base_ms == 0 {
        out.push(
            Diagnostic::error(
                "R704",
                loc("backoff_base_ms"),
                "backoff base of 0ms retries in a hot loop",
            )
            .with_hint("use a positive base delay"),
        );
    }
    if policy.backoff_max_ms < policy.backoff_base_ms {
        out.push(
            Diagnostic::error(
                "R704",
                loc("backoff_max_ms"),
                format!(
                    "ceiling {}ms is below the base delay {}ms",
                    policy.backoff_max_ms, policy.backoff_base_ms
                ),
            )
            .with_hint("raise the ceiling or lower the base"),
        );
    }
    if policy.backoff_max_ms > MAX_BACKOFF_MS {
        out.push(
            Diagnostic::error(
                "R704",
                loc("backoff_max_ms"),
                format!(
                    "ceiling {}ms exceeds the {MAX_BACKOFF_MS}ms bound",
                    policy.backoff_max_ms
                ),
            )
            .with_hint("five minutes of backoff is recovery; more is a hang with extra steps"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chopin_faults::FaultKind;

    #[test]
    fn valid_plans_and_policies_are_clean() {
        let plan = FaultPlan::new(7)
            .with_window(0, 100, FaultKind::AllocSpike { factor: 4.0 })
            .with_storm(FaultKind::StallStorm { throttle: 0.1 }, 10_000, 4, 0.2);
        assert!(lint_fault_plan("ok", &plan, Some(10_000)).is_empty());
        assert!(lint_fault_plan("ok", &plan, None).is_empty());
        assert!(lint_supervisor_policy("ok", &SupervisorPolicy::default()).is_empty());
    }

    #[test]
    fn empty_plan_may_have_zero_seed() {
        assert!(lint_fault_plan("empty", &FaultPlan::new(0), None).is_empty());
    }

    #[test]
    fn lint_reports_every_violation_not_just_the_first() {
        // validate() stops at the first error; the lint keeps going.
        let plan = FaultPlan::new(0)
            .with_window(0, 100, FaultKind::AllocSpike { factor: f64::NAN })
            .with_window(50, 50, FaultKind::ForceDegenerate)
            .with_window(0, 2_000, FaultKind::ForceDegenerate);
        let diags = lint_fault_plan("multi", &plan, Some(1_000));
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["R701", "R702", "R703", "R703"], "{diags:?}");
    }

    #[test]
    fn policy_lint_mirrors_validate() {
        // Everything validate() rejects, the lint flags as R704 (and
        // vice versa: a clean lint implies a valid policy).
        let bad = SupervisorPolicy {
            cell_deadline_ms: Some(0),
            max_retries: MAX_RETRIES_BOUND + 1,
            backoff_base_ms: 0,
            backoff_max_ms: MAX_BACKOFF_MS + 1,
        };
        let diags = lint_supervisor_policy("bad", &bad);
        assert_eq!(diags.len(), 4, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "R704"));
        assert!(bad.validate().is_err());
    }
}
