//! R5xx: suite-registry invariants — 22 workloads, unique, alphabetical,
//! with the paper's new-in-Chopin and latency-sensitive counts.

use crate::diagnostic::Diagnostic;
use chopin_workloads::profile::WorkloadProfile;

/// The suite size the paper fixes: "The DaCapo Chopin suite consists of 22
/// widely used real-world workloads".
pub const SUITE_SIZE: usize = 22;

/// Workloads new in the Chopin release.
pub const NEW_IN_CHOPIN: usize = 8;

/// Latency-sensitive (request-based) workloads.
pub const LATENCY_SENSITIVE_COUNT: usize = 9;

/// Run the whole R5 family over a registry.
pub fn lint_registry(profiles: &[WorkloadProfile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    if profiles.len() != SUITE_SIZE {
        out.push(
            Diagnostic::error(
                "R501",
                "suite",
                format!(
                    "registry has {} profiles, expected {SUITE_SIZE}",
                    profiles.len()
                ),
            )
            .with_hint("every figure and geomean in the paper is over exactly 22 benchmarks"),
        );
    }

    for (i, p) in profiles.iter().enumerate() {
        if profiles[..i].iter().any(|q| q.name == p.name) {
            out.push(Diagnostic::error(
                "R502",
                format!("profile:{}", p.name),
                "duplicate benchmark name".to_string(),
            ));
        }
    }

    for pair in profiles.windows(2) {
        if pair[0].name >= pair[1].name {
            out.push(
                Diagnostic::error(
                    "R503",
                    format!("profile:{}", pair[1].name),
                    format!(
                        "registry is not alphabetical: {} precedes {}",
                        pair[0].name, pair[1].name
                    ),
                )
                .with_hint("suite::all() order is load-bearing for table and figure layout"),
            );
        }
    }

    let new_count = profiles.iter().filter(|p| p.new_in_chopin).count();
    if !profiles.is_empty() && new_count != NEW_IN_CHOPIN {
        out.push(Diagnostic::warn(
            "R504",
            "suite",
            format!("{new_count} profiles are marked new-in-Chopin, expected {NEW_IN_CHOPIN}"),
        ));
    }

    let latency_count = profiles.iter().filter(|p| p.is_latency_sensitive()).count();
    if !profiles.is_empty() && latency_count != LATENCY_SENSITIVE_COUNT {
        out.push(Diagnostic::error(
            "R505",
            "suite",
            format!(
                "{latency_count} profiles are latency-sensitive, expected {LATENCY_SENSITIVE_COUNT}"
            ),
        ));
    }

    out
}
