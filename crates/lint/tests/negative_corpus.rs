//! The negative corpus: deliberately broken specs, configurations and
//! registries, each asserting that the linter fires the exact rule id the
//! catalogue promises.
//!
//! The positive direction — the shipped suite and the harness presets lint
//! clean — is asserted by the crate's unit tests and the harness's
//! `shipped_presets_lint_clean`; these tests establish that a clean report
//! is meaningful, i.e. that every rule actually detects its defect.

use chopin_core::nominal::dataset::{NominalRow, RowProvenance, METRIC_COUNT};
use chopin_core::nominal::score::ScoredMetric;
use chopin_core::sweep::SweepConfig;
use chopin_faults::{FaultKind, FaultPlan, SupervisorPolicy};
use chopin_lint::{Diagnostic, Severity};
use chopin_obs::ObsConfig;
use chopin_runtime::collector::CollectorKind;
use chopin_workloads::profile::WorkloadProfile;
use chopin_workloads::suite;

fn ids(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

/// A known-good latency-sensitive profile to mutate.
fn base_profile() -> WorkloadProfile {
    suite::by_name("cassandra").expect("cassandra is in the suite")
}

fn base_score() -> ScoredMetric {
    ScoredMetric {
        code: "AOA",
        value: 50.0,
        rank: 3,
        of: 22,
        score: 9,
        min: 10.0,
        median: 40.0,
        max: 100.0,
    }
}

#[test]
fn r101_missing_required_metric() {
    let row = NominalRow {
        benchmark: "broken",
        provenance: RowProvenance::Published,
        values: [None; METRIC_COUNT],
    };
    let diags = chopin_lint::rules::nominal::lint_rows(&[row]);
    assert!(ids(&diags).contains(&"R101"), "{diags:?}");
    // Only the optional GML/GMV cells escape the completeness rule.
    assert_eq!(diags.len(), METRIC_COUNT - 2, "{diags:?}");
}

#[test]
fn r102_negative_value_in_unsigned_column() {
    let mut values = [Some(1.0); METRIC_COUNT];
    values[0] = Some(-50.0); // AOA: allocation cannot be negative.
    let row = NominalRow {
        benchmark: "broken",
        provenance: RowProvenance::Published,
        values,
    };
    let diags = chopin_lint::rules::nominal::lint_rows(&[row]);
    assert_eq!(ids(&diags), vec!["R102"], "{diags:?}");
}

#[test]
fn r103_score_above_ten() {
    let table = [ScoredMetric {
        score: 11,
        ..base_score()
    }];
    let diags = chopin_lint::lint_score_table("broken", &table);
    assert_eq!(ids(&diags), vec!["R103"], "{diags:?}");
}

#[test]
fn r104_rank_zero() {
    let table = [ScoredMetric {
        rank: 0,
        ..base_score()
    }];
    let diags = chopin_lint::lint_score_table("broken", &table);
    assert_eq!(ids(&diags), vec!["R104"], "{diags:?}");
}

#[test]
fn r202_negative_dispersion() {
    let mut p = base_profile();
    p.requests.as_mut().expect("latency-sensitive").dispersion = -0.5;
    let diags = chopin_lint::lint_profile(&p);
    assert!(ids(&diags).contains(&"R202"), "{diags:?}");
}

#[test]
fn r203_more_workers_than_requests() {
    let mut p = base_profile();
    let r = p.requests.as_mut().expect("latency-sensitive");
    r.count = 8;
    r.workers = 32;
    let diags = chopin_lint::lint_profile(&p);
    assert!(ids(&diags).contains(&"R203"), "{diags:?}");
}

#[test]
fn r204_canonical_benchmark_without_requests() {
    let mut p = base_profile();
    p.requests = None;
    let diags = chopin_lint::lint_latency_set(&[p]);
    assert!(ids(&diags).contains(&"R204"), "{diags:?}");
}

#[test]
fn r205_small_heap_above_default() {
    let mut p = base_profile();
    p.min_heap_small_mb = p.min_heap_default_mb * 2.0;
    let diags = chopin_lint::lint_profile(&p);
    assert!(ids(&diags).contains(&"R205"), "{diags:?}");
}

#[test]
fn r205_uncompressed_below_default() {
    let mut p = base_profile();
    p.min_heap_uncompressed_mb = p.min_heap_default_mb - 1.0;
    let diags = chopin_lint::lint_profile(&p);
    assert!(ids(&diags).contains(&"R205"), "{diags:?}");
}

#[test]
fn r206_nonpositive_allocation_rate() {
    let mut p = base_profile();
    p.alloc_rate_mb_s = 0.0;
    let diags = chopin_lint::lint_profile(&p);
    assert!(ids(&diags).contains(&"R206"), "{diags:?}");
}

#[test]
fn r301_heap_factor_below_minimum() {
    let config = SweepConfig {
        heap_factors: vec![0.5, 2.0],
        ..SweepConfig::default()
    };
    let diags = chopin_lint::lint_sweep_config("broken", &config);
    assert!(ids(&diags).contains(&"R301"), "{diags:?}");
}

#[test]
fn r302_invalid_collector_coefficient() {
    let mut model = CollectorKind::G1.model();
    model.barrier_tax = -0.1;
    let diags = chopin_lint::lint_collector_model(&model);
    assert!(ids(&diags).contains(&"R302"), "{diags:?}");
}

#[test]
fn r303_zero_full_gc_period_is_a_dead_state() {
    let mut model = CollectorKind::Serial.model();
    model.full_gc_period = Some(0);
    let diags = chopin_lint::lint_collector_model(&model);
    assert!(ids(&diags).contains(&"R303"), "{diags:?}");
}

#[test]
fn r304_duplicate_heap_factors() {
    let config = SweepConfig {
        heap_factors: vec![2.0, 2.0, 6.0],
        ..SweepConfig::default()
    };
    let diags = chopin_lint::lint_sweep_config("broken", &config);
    assert!(ids(&diags).contains(&"R304"), "{diags:?}");
}

#[test]
fn r402_grid_never_reaches_generous_heaps() {
    let diags = chopin_lint::lint_lbo_grid("broken", &[1.25, 1.5, 2.0]);
    assert_eq!(ids(&diags), vec!["R402"], "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Warn));
}

#[test]
fn r403_unsorted_percentiles() {
    let diags = chopin_lint::lint_percentiles("broken", &[50.0, 99.0, 90.0]);
    assert_eq!(ids(&diags), vec!["R403"], "{diags:?}");
}

#[test]
fn r403_percentile_one_hundred() {
    let diags = chopin_lint::lint_percentiles("broken", &[50.0, 100.0]);
    assert_eq!(ids(&diags), vec!["R403"], "{diags:?}");
}

#[test]
fn r404_zero_invocations() {
    let config = SweepConfig {
        invocations: 0,
        ..SweepConfig::default()
    };
    let diags = chopin_lint::lint_sweep_config("broken", &config);
    assert!(ids(&diags).contains(&"R404"), "{diags:?}");
}

#[test]
fn r501_truncated_registry() {
    let profiles: Vec<WorkloadProfile> = suite::all().into_iter().take(10).collect();
    let diags = chopin_lint::lint_registry(&profiles);
    assert!(ids(&diags).contains(&"R501"), "{diags:?}");
}

#[test]
fn r502_duplicate_name() {
    let mut profiles = suite::all();
    profiles[1] = profiles[0].clone();
    let diags = chopin_lint::lint_registry(&profiles);
    assert!(ids(&diags).contains(&"R502"), "{diags:?}");
}

#[test]
fn r503_unsorted_registry() {
    let mut profiles = suite::all();
    profiles.reverse();
    let diags = chopin_lint::lint_registry(&profiles);
    assert!(ids(&diags).contains(&"R503"), "{diags:?}");
}

#[test]
fn r505_dropped_latency_benchmark() {
    let mut profiles = suite::all();
    for p in &mut profiles {
        if p.name == "kafka" {
            p.requests = None;
        }
    }
    let diags = chopin_lint::lint_registry(&profiles);
    assert!(ids(&diags).contains(&"R505"), "{diags:?}");
}

#[test]
fn r601_trace_path_is_a_directory() {
    let config = ObsConfig {
        trace_out: Some("out/traces/".to_string()),
        ..ObsConfig::default()
    };
    let diags = chopin_lint::lint_obs_config("broken", &config);
    assert_eq!(ids(&diags), vec!["R601"], "{diags:?}");
}

#[test]
fn r601_empty_events_path() {
    let config = ObsConfig {
        events_out: Some(String::new()),
        ..ObsConfig::default()
    };
    let diags = chopin_lint::lint_obs_config("broken", &config);
    assert_eq!(ids(&diags), vec!["R601"], "{diags:?}");
}

#[test]
fn r602_zero_ring_capacity() {
    let config = ObsConfig {
        ring_capacity: 0,
        ..ObsConfig::default()
    };
    let diags = chopin_lint::lint_obs_config("broken", &config);
    assert_eq!(ids(&diags), vec!["R602"], "{diags:?}");
}

#[test]
fn r603_non_monotone_histogram_bounds() {
    let config = ObsConfig {
        pause_histogram_bounds: vec![1_000, 4_000, 2_000],
        ..ObsConfig::default()
    };
    let diags = chopin_lint::lint_obs_config("broken", &config);
    assert_eq!(ids(&diags), vec!["R603"], "{diags:?}");
}

#[test]
fn r701_unseeded_fault_plan() {
    let plan = FaultPlan::new(0).with_window(0, 1_000, FaultKind::ForceDegenerate);
    let diags = chopin_lint::lint_fault_plan("broken", &plan, None);
    assert_eq!(ids(&diags), vec!["R701"], "{diags:?}");
}

#[test]
fn r702_non_finite_spike_factor() {
    let plan = FaultPlan::new(1).with_window(
        0,
        1_000,
        FaultKind::AllocSpike {
            factor: f64::INFINITY,
        },
    );
    let diags = chopin_lint::lint_fault_plan("broken", &plan, None);
    assert_eq!(ids(&diags), vec!["R702"], "{diags:?}");
}

#[test]
fn r702_squeeze_fraction_of_one() {
    let plan = FaultPlan::new(1).with_window(0, 1_000, FaultKind::HeapSqueeze { fraction: 1.0 });
    let diags = chopin_lint::lint_fault_plan("broken", &plan, None);
    assert_eq!(ids(&diags), vec!["R702"], "{diags:?}");
}

#[test]
fn r703_window_beyond_the_horizon() {
    let plan = FaultPlan::new(1).with_window(0, 2_000, FaultKind::ForceDegenerate);
    let diags = chopin_lint::lint_fault_plan("broken", &plan, Some(1_000));
    assert_eq!(ids(&diags), vec!["R703"], "{diags:?}");
}

#[test]
fn r703_inverted_window() {
    let plan = FaultPlan::new(1).with_window(500, 100, FaultKind::ForceDegenerate);
    let diags = chopin_lint::lint_fault_plan("broken", &plan, None);
    assert_eq!(ids(&diags), vec!["R703"], "{diags:?}");
}

#[test]
fn r704_zero_backoff_base() {
    let policy = SupervisorPolicy {
        backoff_base_ms: 0,
        ..SupervisorPolicy::default()
    };
    let diags = chopin_lint::lint_supervisor_policy("broken", &policy);
    assert_eq!(ids(&diags), vec!["R704"], "{diags:?}");
}

#[test]
fn r704_inverted_backoff_bounds() {
    let policy = SupervisorPolicy {
        backoff_base_ms: 500,
        backoff_max_ms: 100,
        ..SupervisorPolicy::default()
    };
    let diags = chopin_lint::lint_supervisor_policy("broken", &policy);
    assert_eq!(ids(&diags), vec!["R704"], "{diags:?}");
}

#[test]
fn every_fired_rule_is_in_the_catalogue() {
    // Cross-check: each id asserted above resolves in the catalogue.
    for id in [
        "R101", "R102", "R103", "R104", "R202", "R203", "R204", "R205", "R206", "R301", "R302",
        "R303", "R304", "R402", "R403", "R404", "R501", "R502", "R503", "R505", "R601", "R602",
        "R603", "R701", "R702", "R703", "R704",
    ] {
        assert!(
            chopin_lint::rules::rule(id).is_some(),
            "{id} missing from RULES"
        );
    }
}
