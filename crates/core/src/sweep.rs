//! Heap-size sweeps (recommendations H1 and H2).
//!
//! "Garbage collectors should be evaluated across a range of heap sizes to
//! demonstrate the sensitivity of the collector to the time–space
//! tradeoff" (H1), with "heap sizes ... chosen on a benchmark-by-benchmark
//! basis" as multiples of the per-benchmark minimum heap (H2). "Because the
//! time-space tradeoff is not linear ... we suggest selecting heap sizes in
//! a distribution that gives more resolution to small heap sizes."

use crate::benchmark::{BenchmarkError, BenchmarkRunner};
use crate::lbo::RunSample;
use chopin_runtime::collector::CollectorKind;
use chopin_runtime::result::RunError;
use chopin_workloads::{SizeClass, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// The heap factors Figure 1 and Figure 5 sweep: denser at small heaps,
/// 1–6 × the minimum.
pub const PAPER_HEAP_FACTORS: [f64; 11] = [1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0];

/// Configuration of a sweep over collectors × heap factors × invocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Collectors to sweep (default: all five).
    pub collectors: Vec<CollectorKind>,
    /// Heap factors, in multiples of the nominal minimum heap.
    pub heap_factors: Vec<f64>,
    /// Invocations per cell (the paper runs 10; smaller counts keep quick
    /// runs cheap and still produce CIs from 2 upward).
    pub invocations: u32,
    /// Iterations per invocation, timing the last (paper: 5).
    pub iterations: u32,
    /// Input size class.
    pub size: SizeClass,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            collectors: CollectorKind::ALL.to_vec(),
            heap_factors: PAPER_HEAP_FACTORS.to_vec(),
            invocations: 3,
            iterations: 5,
            size: SizeClass::Default,
        }
    }
}

impl SweepConfig {
    /// A cheap configuration for tests and smoke runs: three collectors
    /// would lose information, so all five are kept but with a coarse
    /// factor grid, single invocation, and two iterations.
    pub fn quick() -> Self {
        SweepConfig {
            collectors: CollectorKind::ALL.to_vec(),
            heap_factors: vec![1.5, 2.0, 3.0, 6.0],
            invocations: 1,
            iterations: 2,
            size: SizeClass::Default,
        }
    }

    /// Number of (collector, heap factor) cells per benchmark this
    /// configuration sweeps.
    ///
    /// # Examples
    ///
    /// ```
    /// use chopin_core::sweep::SweepConfig;
    ///
    /// assert_eq!(SweepConfig::default().cell_count(), 5 * 11);
    /// ```
    pub fn cell_count(&self) -> usize {
        self.collectors.len() * self.heap_factors.len()
    }
}

/// A cell that failed to run, with the reason — the paper's missing data
/// points ("we only plot data points where the respective collector can
/// run all 22 benchmarks").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepFailure {
    /// The collector that failed.
    pub collector: CollectorKind,
    /// The heap factor at which it failed.
    pub heap_factor: f64,
    /// Stringified failure reason.
    pub reason: String,
}

/// The outcome of sweeping one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Benchmark name.
    pub benchmark: String,
    /// One sample per completed (collector, factor, invocation).
    pub samples: Vec<RunSample>,
    /// Cells that could not run (OOM/thrash at small heaps).
    pub failures: Vec<SweepFailure>,
}

impl SweepResult {
    /// Heap factors at which `collector` completed every invocation.
    pub fn completed_factors(&self, collector: CollectorKind) -> Vec<f64> {
        let mut factors: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.collector == collector)
            .map(|s| s.heap_factor)
            .collect();
        factors.sort_by(f64::total_cmp);
        factors.dedup();
        factors
            .into_iter()
            .filter(|f| {
                !self
                    .failures
                    .iter()
                    .any(|fail| fail.collector == collector && fail.heap_factor == *f)
            })
            .collect()
    }
}

/// Run a full sweep of `profile` under `config`.
///
/// Cells that fail with out-of-memory or GC thrash are recorded in
/// [`SweepResult::failures`] rather than aborting the sweep; other errors
/// propagate.
///
/// # Errors
///
/// Returns [`BenchmarkError`] for configuration errors (e.g. an
/// unsupported size class).
pub fn run_sweep(
    profile: &WorkloadProfile,
    config: &SweepConfig,
) -> Result<SweepResult, BenchmarkError> {
    let mut samples = Vec::new();
    let mut failures = Vec::new();
    for &collector in &config.collectors {
        for &factor in &config.heap_factors {
            let mut cell_failed = false;
            for invocation in 0..config.invocations {
                if cell_failed {
                    break;
                }
                let outcome = BenchmarkRunner::for_profile(profile.clone())
                    .collector(collector)
                    .size(config.size)
                    .heap_factor(factor)
                    .iterations(config.iterations)
                    .seed(1 + invocation as u64)
                    .run();
                match outcome {
                    Ok(set) => {
                        samples.push(RunSample::from_result(set.timed(), factor));
                    }
                    Err(BenchmarkError::Run(
                        e @ (RunError::OutOfMemory { .. } | RunError::GcThrash { .. }),
                    )) => {
                        failures.push(SweepFailure {
                            collector,
                            heap_factor: factor,
                            reason: e.to_string(),
                        });
                        cell_failed = true;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(SweepResult {
        benchmark: profile.name.to_string(),
        samples,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbo::{Clock, LboAnalysis};
    use chopin_workloads::suite;

    #[test]
    fn paper_factors_are_denser_at_small_heaps() {
        let gaps: Vec<f64> = PAPER_HEAP_FACTORS.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.windows(2).all(|g| g[0] <= g[1] + 1e-12), "{gaps:?}");
        assert_eq!(PAPER_HEAP_FACTORS[0], 1.0);
        assert_eq!(*PAPER_HEAP_FACTORS.last().unwrap(), 6.0);
    }

    #[test]
    fn sweep_of_fop_produces_samples_and_zgc_failures() {
        let fop = suite::by_name("fop").unwrap();
        let cfg = SweepConfig {
            collectors: vec![CollectorKind::G1, CollectorKind::Zgc],
            heap_factors: vec![1.0, 2.0, 4.0],
            invocations: 1,
            iterations: 1,
            size: SizeClass::Default,
        };
        let result = run_sweep(&fop, &cfg).unwrap();
        assert!(!result.samples.is_empty());
        // G1 completes everywhere.
        assert_eq!(
            result.completed_factors(CollectorKind::G1),
            vec![1.0, 2.0, 4.0]
        );
        // ZGC (uncompressed pointers, fop GMU/GMD = 17/13 ≈ 1.3) fails at 1×.
        assert!(
            result
                .failures
                .iter()
                .any(|f| f.collector == CollectorKind::Zgc && f.heap_factor == 1.0),
            "failures: {:?}",
            result.failures
        );
    }

    #[test]
    fn sweep_feeds_lbo_with_hyperbolic_overheads() {
        let fop = suite::by_name("fop").unwrap();
        let cfg = SweepConfig {
            collectors: vec![CollectorKind::Parallel],
            heap_factors: vec![1.25, 2.0, 6.0],
            invocations: 2,
            iterations: 2,
            size: SizeClass::Default,
        };
        let result = run_sweep(&fop, &cfg).unwrap();
        let lbo = LboAnalysis::compute(&result.samples, Clock::Task).unwrap();
        let curve = lbo.curve(CollectorKind::Parallel).unwrap();
        assert_eq!(curve.len(), 3);
        // Time–space tradeoff: overhead decreases as heap grows.
        assert!(
            curve[0].overhead.mean() > curve[2].overhead.mean(),
            "small heaps cost more: {:?}",
            curve
        );
    }
}
