//! The Lower-Bound Overhead (LBO) methodology of Cai et al. (§4.5, §6.2).
//!
//! "The key idea is to 'distill' a baseline that conservatively
//! approximates the ideal GC. The distilled baseline is then used as the
//! denominator in the LBO graphs, while the measured system forms the
//! numerator. We use Java's JVMTI interface to capture the
//! easily-attributable stop-the-world periods of the collectors. The
//! remainder is an approximation to the application costs. We then find
//! the lowest approximated application cost from among all collectors and
//! all heap sizes, and use that as the distilled cost."
//!
//! Because the distilled baseline still contains barrier taxes and other
//! woven-in costs, it *over*-estimates the ideal, so the reported overhead
//! is a *lower bound* — hence the name (pronounced *elbow*).

use chopin_analysis::ci::ConfidenceInterval;
use chopin_analysis::descriptive::geometric_mean;
use chopin_analysis::AnalysisError;
use chopin_runtime::collector::CollectorKind;
use chopin_runtime::result::RunResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One run's contribution to an LBO analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSample {
    /// Which collector produced the sample.
    pub collector: CollectorKind,
    /// Heap size as a multiple of the nominal minimum heap (H2's axis).
    pub heap_factor: f64,
    /// Wall-clock time of the timed iteration, seconds.
    pub wall_s: f64,
    /// Task clock (total CPU across all threads), seconds.
    pub task_s: f64,
    /// Wall time minus stop-the-world pauses (the JVMTI-attributable
    /// subtraction), seconds.
    pub wall_distillable_s: f64,
    /// Task clock minus GC CPU burned during stop-the-world phases,
    /// seconds.
    pub task_distillable_s: f64,
}

impl RunSample {
    /// Extract an LBO sample from a run result.
    pub fn from_result(result: &RunResult, heap_factor: f64) -> RunSample {
        RunSample {
            collector: result.config().collector(),
            heap_factor,
            wall_s: result.wall_time().as_secs_f64(),
            task_s: result.task_clock().as_secs_f64(),
            wall_distillable_s: result.wall_minus_stw().as_secs_f64(),
            task_distillable_s: result.task_clock_minus_stw().as_secs_f64(),
        }
    }
}

/// Which clock an LBO curve is computed against (recommendation O2 asks
/// for both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Clock {
    /// End-to-end wall-clock time (Figure 1(a)).
    Wall,
    /// Total CPU time across all threads — Linux `perf` `TASK_CLOCK`
    /// (Figure 1(b)).
    Task,
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clock::Wall => write!(f, "wall"),
            Clock::Task => write!(f, "task"),
        }
    }
}

/// One point of an LBO curve: the mean normalized overhead with its 95 %
/// confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LboPoint {
    /// Heap size in multiples of the nominal minimum heap.
    pub heap_factor: f64,
    /// Normalized overhead (≥ 1.0 up to sampling noise): measured cost
    /// divided by the distilled baseline.
    pub overhead: ConfidenceInterval,
}

/// The LBO curves of one benchmark for one clock.
#[derive(Debug, Clone, PartialEq)]
pub struct LboAnalysis {
    clock: Clock,
    distilled_s: f64,
    curves: BTreeMap<CollectorKind, Vec<LboPoint>>,
}

impl LboAnalysis {
    /// Compute the LBO analysis of `samples` for `clock`.
    ///
    /// Samples must cover at least one (collector, heap) cell with at least
    /// one invocation; cells with multiple invocations get non-degenerate
    /// confidence intervals (single-invocation cells get zero-width ones).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Empty`] when `samples` is empty and
    /// [`AnalysisError::NotFinite`] if any sample is non-positive.
    pub fn compute(samples: &[RunSample], clock: Clock) -> Result<LboAnalysis, AnalysisError> {
        if samples.is_empty() {
            return Err(AnalysisError::Empty);
        }
        let measured = |s: &RunSample| match clock {
            Clock::Wall => s.wall_s,
            Clock::Task => s.task_s,
        };
        let distillable = |s: &RunSample| match clock {
            Clock::Wall => s.wall_distillable_s,
            Clock::Task => s.task_distillable_s,
        };
        if samples
            .iter()
            .any(|s| !(measured(s) > 0.0 && distillable(s) > 0.0))
        {
            return Err(AnalysisError::NotFinite {
                context: "lbo sample (times must be positive)",
            });
        }

        // Group by (collector, heap factor) cell.
        let mut cells: BTreeMap<(CollectorKind, u64), Vec<&RunSample>> = BTreeMap::new();
        for s in samples {
            cells
                .entry((s.collector, factor_key(s.heap_factor)))
                .or_default()
                .push(s);
        }

        // Distill: the lowest mean approximated application cost across all
        // collectors and all heap sizes.
        let distilled_s = cells
            .values()
            .map(|runs| runs.iter().map(|s| distillable(s)).sum::<f64>() / runs.len() as f64)
            .fold(f64::INFINITY, f64::min);

        let mut curves: BTreeMap<CollectorKind, Vec<LboPoint>> = BTreeMap::new();
        for ((collector, _), runs) in &cells {
            let overheads: Vec<f64> = runs.iter().map(|s| measured(s) / distilled_s).collect();
            let overhead = if overheads.len() >= 2 {
                ConfidenceInterval::from_samples(&overheads)?
            } else {
                ConfidenceInterval::from_samples(&[overheads[0], overheads[0]])?
            };
            curves.entry(*collector).or_default().push(LboPoint {
                heap_factor: runs[0].heap_factor,
                overhead,
            });
        }
        for points in curves.values_mut() {
            points.sort_by(|a, b| a.heap_factor.total_cmp(&b.heap_factor));
        }

        Ok(LboAnalysis {
            clock,
            distilled_s,
            curves,
        })
    }

    /// Which clock the analysis used.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// The distilled baseline cost in seconds — the denominator of every
    /// curve.
    pub fn distilled_s(&self) -> f64 {
        self.distilled_s
    }

    /// The curve for one collector, if it has any completed runs.
    pub fn curve(&self, collector: CollectorKind) -> Option<&[LboPoint]> {
        self.curves.get(&collector).map(|v| v.as_slice())
    }

    /// All curves, keyed by collector.
    pub fn curves(&self) -> &BTreeMap<CollectorKind, Vec<LboPoint>> {
        &self.curves
    }
}

/// Geometric-mean LBO across benchmarks (Figure 1): for each collector and
/// heap factor present in **every** per-benchmark analysis, the geomean of
/// the per-benchmark mean overheads.
///
/// "We only plot data points where the respective collector can run all
/// 22 benchmarks to completion" — enforced here by intersecting the
/// per-benchmark curves.
///
/// # Errors
///
/// Returns [`AnalysisError::Empty`] when `analyses` is empty.
pub fn geomean_curves(
    analyses: &[LboAnalysis],
) -> Result<BTreeMap<CollectorKind, Vec<(f64, f64)>>, AnalysisError> {
    if analyses.is_empty() {
        return Err(AnalysisError::Empty);
    }
    let mut out: BTreeMap<CollectorKind, Vec<(f64, f64)>> = BTreeMap::new();
    for collector in CollectorKind::ALL {
        // Factors at which this collector completed every benchmark.
        let mut factors: Option<Vec<u64>> = None;
        for a in analyses {
            let fs: Vec<u64> = a
                .curve(collector)
                .map(|points| points.iter().map(|p| factor_key(p.heap_factor)).collect())
                .unwrap_or_default();
            factors = Some(match factors {
                None => fs,
                Some(existing) => existing.into_iter().filter(|f| fs.contains(f)).collect(),
            });
        }
        let factors = factors.unwrap_or_default();
        let mut series = Vec::new();
        for fk in factors {
            let mut per_bench = Vec::with_capacity(analyses.len());
            let mut factor = 0.0;
            // The factor set was intersected above, so every benchmark has a
            // point at `fk`; should a curve nonetheless lack one, drop the
            // factor rather than plot an incomplete geomean.
            let mut complete = true;
            for a in analyses {
                let point = a
                    .curve(collector)
                    .and_then(|ps| ps.iter().find(|p| factor_key(p.heap_factor) == fk));
                match point {
                    Some(p) => {
                        per_bench.push(p.overhead.mean());
                        factor = p.heap_factor;
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                continue;
            }
            series.push((factor, geometric_mean(&per_bench)?));
        }
        if !series.is_empty() {
            out.insert(collector, series);
        }
    }
    Ok(out)
}

/// Quantise a heap factor for exact grouping (1/1000 resolution).
fn factor_key(factor: f64) -> u64 {
    (factor * 1000.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        collector: CollectorKind,
        factor: f64,
        wall: f64,
        task: f64,
        wall_d: f64,
        task_d: f64,
    ) -> RunSample {
        RunSample {
            collector,
            heap_factor: factor,
            wall_s: wall,
            task_s: task,
            wall_distillable_s: wall_d,
            task_distillable_s: task_d,
        }
    }

    #[test]
    fn empty_samples_rejected() {
        assert!(LboAnalysis::compute(&[], Clock::Wall).is_err());
    }

    #[test]
    fn nonpositive_samples_rejected() {
        let s = sample(CollectorKind::G1, 2.0, 1.0, 0.0, 1.0, 1.0);
        assert!(LboAnalysis::compute(&[s], Clock::Task).is_err());
    }

    #[test]
    fn distilled_is_minimum_across_cells() {
        let samples = vec![
            sample(CollectorKind::Serial, 2.0, 1.2, 1.3, 1.0, 1.1),
            sample(CollectorKind::Serial, 6.0, 1.05, 1.1, 0.95, 1.0),
            sample(CollectorKind::Zgc, 2.0, 1.5, 2.5, 1.45, 2.4),
        ];
        let a = LboAnalysis::compute(&samples, Clock::Wall).unwrap();
        assert_eq!(a.distilled_s(), 0.95, "lowest wall-minus-stw wins");
        let t = LboAnalysis::compute(&samples, Clock::Task).unwrap();
        assert_eq!(t.distilled_s(), 1.0);
    }

    #[test]
    fn overheads_are_at_least_one_for_the_distilled_cell() {
        let samples = vec![
            sample(CollectorKind::Serial, 6.0, 1.0, 1.1, 0.9, 1.0),
            sample(CollectorKind::G1, 6.0, 1.2, 1.6, 1.1, 1.5),
        ];
        let a = LboAnalysis::compute(&samples, Clock::Wall).unwrap();
        for points in a.curves().values() {
            for p in points {
                assert!(p.overhead.mean() >= 1.0, "{:?}", p);
            }
        }
    }

    #[test]
    fn curves_are_sorted_by_heap_factor() {
        let samples = vec![
            sample(CollectorKind::G1, 6.0, 1.0, 1.0, 0.9, 0.9),
            sample(CollectorKind::G1, 2.0, 1.4, 1.4, 1.2, 1.2),
            sample(CollectorKind::G1, 4.0, 1.1, 1.1, 1.0, 1.0),
        ];
        let a = LboAnalysis::compute(&samples, Clock::Wall).unwrap();
        let factors: Vec<f64> = a
            .curve(CollectorKind::G1)
            .unwrap()
            .iter()
            .map(|p| p.heap_factor)
            .collect();
        assert_eq!(factors, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn repeated_invocations_produce_confidence_intervals() {
        let samples = vec![
            sample(CollectorKind::G1, 2.0, 1.40, 1.4, 1.0, 1.0),
            sample(CollectorKind::G1, 2.0, 1.44, 1.4, 1.0, 1.0),
            sample(CollectorKind::G1, 2.0, 1.36, 1.4, 1.0, 1.0),
        ];
        let a = LboAnalysis::compute(&samples, Clock::Wall).unwrap();
        let p = &a.curve(CollectorKind::G1).unwrap()[0];
        assert!(p.overhead.half_width() > 0.0);
        assert!(p.overhead.contains(1.4));
    }

    #[test]
    fn geomean_intersects_incomplete_collectors() {
        // Benchmark A has ZGC at 2 and 6; benchmark B only at 6 (ZGC could
        // not run B at 2×): the geomean ZGC curve must only contain 6.
        let a = LboAnalysis::compute(
            &[
                sample(CollectorKind::Zgc, 2.0, 2.0, 2.0, 1.0, 1.0),
                sample(CollectorKind::Zgc, 6.0, 1.2, 1.2, 1.0, 1.0),
            ],
            Clock::Wall,
        )
        .unwrap();
        let b = LboAnalysis::compute(
            &[sample(CollectorKind::Zgc, 6.0, 1.3, 1.3, 1.0, 1.0)],
            Clock::Wall,
        )
        .unwrap();
        let geo = geomean_curves(&[a, b]).unwrap();
        let zgc = &geo[&CollectorKind::Zgc];
        assert_eq!(zgc.len(), 1);
        assert_eq!(zgc[0].0, 6.0);
        let expected = (1.2f64 * 1.3).sqrt();
        assert!((zgc[0].1 - expected).abs() < 1e-12);
    }

    #[test]
    fn clock_display() {
        assert_eq!(Clock::Wall.to_string(), "wall");
        assert_eq!(Clock::Task.to_string(), "task");
    }
}
