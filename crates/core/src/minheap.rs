//! Minimum-heap search (recommendation H2).
//!
//! "Heap sizes should be expressed in terms of multiples of the minimum
//! heap size in which a baseline collector can run that workload." The
//! suite ships *nominal* minimum heaps (GMD/GMS/GML/GMV/GMU) measured with
//! the baseline configuration; this module re-derives them empirically on
//! the simulated runtime by bisection, the methodology of Blackburn et al.
//! (the paper's reference 9, which footnote 4 points to).

use crate::benchmark::{BenchmarkError, BenchmarkRunner};
use chopin_runtime::collector::CollectorKind;
use chopin_runtime::result::RunError;
use chopin_workloads::{SizeClass, WorkloadProfile};
use std::fmt;

/// The nominal minimum heap `profile` needs under `collector` at `size`,
/// in bytes — the published GMD-style minimum inflated by the workload's
/// GMU/GMD ratio when the collector cannot use compressed pointers
/// (today: ZGC).
///
/// This is the static counterpart of [`MinHeapSearch::find`]: it consults
/// only published nominal statistics, so pre-flight analyses can reason
/// about sweep feasibility without running the simulator. Returns `None`
/// when the profile does not publish a minimum for `size`.
///
/// # Examples
///
/// ```
/// use chopin_core::minheap::required_heap_bytes;
/// use chopin_runtime::collector::CollectorKind;
/// use chopin_workloads::SizeClass;
///
/// let pmd = chopin_workloads::suite::by_name("pmd").unwrap();
/// let g1 = required_heap_bytes(&pmd, CollectorKind::G1, SizeClass::Default).unwrap();
/// let zgc = required_heap_bytes(&pmd, CollectorKind::Zgc, SizeClass::Default).unwrap();
/// assert!(zgc > g1, "uncompressed pointers inflate the minimum heap");
/// ```
pub fn required_heap_bytes(
    profile: &WorkloadProfile,
    collector: CollectorKind,
    size: SizeClass,
) -> Option<u64> {
    let base = profile.min_heap_bytes(size)?;
    let inflation = if collector.supports_compressed_oops() {
        1.0
    } else {
        profile.uncompressed_inflation()
    };
    Some((base as f64 * inflation).ceil() as u64)
}

/// Error raised by the minimum-heap search.
#[derive(Debug, Clone, PartialEq)]
pub enum MinHeapError {
    /// No heap up to the search ceiling let the workload complete.
    NotFoundBelow {
        /// The ceiling that was tried, in bytes.
        ceiling_bytes: u64,
    },
    /// The workload does not provide the requested size class.
    UnsupportedSize(String),
    /// A run failed for a reason other than memory pressure.
    Run(String),
}

impl fmt::Display for MinHeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinHeapError::NotFoundBelow { ceiling_bytes } => {
                write!(f, "no viable heap found below {ceiling_bytes} bytes")
            }
            MinHeapError::UnsupportedSize(b) => write!(f, "{b}: unsupported size class"),
            MinHeapError::Run(msg) => write!(f, "run failed: {msg}"),
        }
    }
}

impl std::error::Error for MinHeapError {}

/// Configuration of the bisection search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinHeapSearch {
    /// Collector to search with (the suite's nominal statistics use the
    /// default collector, G1).
    pub collector: CollectorKind,
    /// Compressed-pointer override; `None` uses the collector's default.
    /// `Some(false)` with G1 measures the GMU statistic ("minimum heap
    /// size for default size without compressed pointers").
    pub compressed_oops: Option<bool>,
    /// Size class.
    pub size: SizeClass,
    /// Iterations each probe runs (the published GMD is defined over
    /// 5 iterations; a single iteration is much cheaper and within the
    /// nominal tolerance).
    pub iterations: u32,
    /// Relative resolution at which to stop bisecting (e.g. 0.02 = 2 %).
    pub resolution: f64,
}

impl Default for MinHeapSearch {
    fn default() -> Self {
        MinHeapSearch {
            collector: CollectorKind::G1,
            compressed_oops: None,
            size: SizeClass::Default,
            iterations: 1,
            resolution: 0.02,
        }
    }
}

impl MinHeapSearch {
    /// Find the minimum heap, in bytes, in which `profile` completes.
    ///
    /// Runs with invocation noise disabled so the result is deterministic.
    /// The search brackets the boundary by doubling from an optimistic
    /// lower bound, then bisects to the configured resolution.
    ///
    /// # Errors
    ///
    /// See [`MinHeapError`].
    pub fn find(&self, profile: &WorkloadProfile) -> Result<u64, MinHeapError> {
        let nominal = profile
            .min_heap_bytes(self.size)
            .ok_or_else(|| MinHeapError::UnsupportedSize(profile.name.to_string()))?;

        // Optimistic floor: a quarter of the nominal minimum.
        let mut lo = (nominal / 4).max(1 << 20);
        let ceiling = nominal.saturating_mul(64).max(1 << 30);

        // If the floor already works, it is our "success" bracket; walk
        // down? No: the floor is meant to fail. If it succeeds, halve until
        // failure or 1 MB.
        while lo > 1 << 20 && self.completes(profile, lo)? {
            lo /= 2;
        }

        let mut hi = lo;
        loop {
            hi = hi.saturating_mul(2);
            if hi > ceiling {
                return Err(MinHeapError::NotFoundBelow {
                    ceiling_bytes: ceiling,
                });
            }
            if self.completes(profile, hi)? {
                break;
            }
            lo = hi;
        }

        // Bisect (lo fails, hi succeeds).
        while (hi - lo) as f64 > self.resolution * hi as f64 {
            let mid = lo + (hi - lo) / 2;
            if self.completes(profile, mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }

    fn completes(&self, profile: &WorkloadProfile, heap_bytes: u64) -> Result<bool, MinHeapError> {
        let mut runner = BenchmarkRunner::for_profile(profile.clone())
            .collector(self.collector)
            .size(self.size)
            .heap_bytes(heap_bytes)
            .iterations(self.iterations)
            .noise(0.0);
        if let Some(oops) = self.compressed_oops {
            runner = runner.compressed_oops(oops);
        }
        let result = runner.run();
        match result {
            Ok(_) => Ok(true),
            Err(BenchmarkError::Run(RunError::OutOfMemory { .. }))
            | Err(BenchmarkError::Run(RunError::GcThrash { .. })) => Ok(false),
            Err(e) => Err(MinHeapError::Run(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chopin_workloads::suite;

    #[test]
    fn min_heap_of_fop_is_near_nominal() {
        let fop = suite::by_name("fop").unwrap();
        let found = MinHeapSearch::default().find(&fop).unwrap();
        let nominal = fop.min_heap_bytes(SizeClass::Default).unwrap();
        let ratio = found as f64 / nominal as f64;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "simulated minheap {found} vs nominal {nominal} (ratio {ratio})"
        );
    }

    #[test]
    fn zgc_min_heap_exceeds_g1_min_heap() {
        // ZGC cannot use compressed pointers, so its minimum heap is larger
        // by roughly the workload's GMU/GMD inflation.
        let pmd = suite::by_name("pmd").unwrap();
        let g1 = MinHeapSearch::default().find(&pmd).unwrap();
        let zgc = MinHeapSearch {
            collector: CollectorKind::Zgc,
            ..Default::default()
        }
        .find(&pmd)
        .unwrap();
        let ratio = zgc as f64 / g1 as f64;
        assert!(
            ratio > 1.15,
            "ZGC needs more memory: {zgc} vs {g1} (ratio {ratio})"
        );
    }

    #[test]
    fn small_size_needs_less_heap_than_default() {
        let lusearch = suite::by_name("lusearch").unwrap();
        let default = MinHeapSearch::default().find(&lusearch).unwrap();
        let small = MinHeapSearch {
            size: SizeClass::Small,
            ..Default::default()
        }
        .find(&lusearch)
        .unwrap();
        assert!(small < default, "small {small} vs default {default}");
    }

    #[test]
    fn unsupported_size_is_an_error() {
        let fop = suite::by_name("fop").unwrap();
        let err = MinHeapSearch {
            size: SizeClass::VLarge,
            ..Default::default()
        }
        .find(&fop)
        .unwrap_err();
        assert!(matches!(err, MinHeapError::UnsupportedSize(_)));
    }
}
