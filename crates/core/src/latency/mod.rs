//! User-experienced latency: the Simple and Metered Latency metrics
//! (§4.4).
//!
//! "A naïve approach to measuring latency is to simply measure the length
//! of pauses created by the runtime ... However, as Cheng and Blelloch
//! pointed out, this is a poor measure since several short pauses may have
//! a similar or worse effect than a long pause." DaCapo Chopin instead
//! times *every event* and reports the distribution of user-experienced
//! latencies — and so does this reproduction:
//!
//! * [`simple`] — per-event latency exactly as observed (end − start).
//! * [`metered`] — the queueing model: each event is assigned an assumed
//!   start time as if requests had arrived at a smoothed (up to uniform)
//!   rate, so a pause delays not only the in-flight events but everything
//!   queued behind them.
//! * [`percentile`] — distribution reporting "in terms of percentiles,
//!   from median to 99.99" and CDF curves for the figure axes.
//! * [`mmu`] — the prior-art minimum-mutator-utilization metric, provided
//!   so its blind spots can be demonstrated against the above.

pub mod metered;
pub mod mmu;
pub mod percentile;
pub mod simple;

pub use metered::{metered_latencies, SmoothingWindow};
pub use percentile::LatencyDistribution;
pub use simple::simple_latencies;

use chopin_runtime::requests::{extract_events, RequestEvent};
use chopin_runtime::result::RunResult;
use chopin_runtime::spec::RequestProfile;

/// Recover the timed events of a run of a latency-sensitive workload.
///
/// Returns `None` when `requests` is `None` (the workload is not
/// latency-sensitive).
///
/// # Examples
///
/// ```
/// use chopin_core::Suite;
/// use chopin_core::latency::{events_of, simple_latencies};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let suite = Suite::chopin();
/// let bench = suite.benchmark("h2").expect("h2 is in the suite");
/// let runs = bench.runner().heap_factor(2.0).iterations(1).run()?;
/// let spec = bench
///     .profile()
///     .to_spec(chopin_workloads::SizeClass::Default)
///     .unwrap()?;
/// let events = events_of(runs.timed(), spec.requests()).expect("h2 is latency-sensitive");
/// assert!(!events.is_empty());
/// let latencies = simple_latencies(&events);
/// assert_eq!(latencies.len(), events.len());
/// # Ok(())
/// # }
/// ```
pub fn events_of(
    result: &RunResult,
    requests: Option<&RequestProfile>,
) -> Option<Vec<RequestEvent>> {
    let profile = requests?;
    Some(extract_events(
        result.progress(),
        profile,
        result.config().seed(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chopin_runtime::progress::ProgressTrace;
    use chopin_runtime::time::SimTime;

    #[test]
    fn events_of_none_for_batch_workloads() {
        // A synthetic result via the engine would do, but events_of only
        // consults the request profile, so `None` in means `None` out.
        let mut trace = ProgressTrace::new();
        trace.push(SimTime::ZERO, SimTime::from_nanos(10), 1.0);
        // Construct a result through the public engine API.
        let spec = chopin_runtime::spec::MutatorSpec::builder("t")
            .total_work(chopin_runtime::time::SimDuration::from_micros(10))
            .total_allocation(1 << 20)
            .live_range(1 << 20, 1 << 20)
            .build()
            .unwrap();
        let cfg = chopin_runtime::config::RunConfig::new(
            16 << 20,
            chopin_runtime::collector::CollectorKind::G1,
        );
        let result = chopin_runtime::engine::run(&spec, &cfg).unwrap();
        assert!(events_of(&result, None).is_none());
    }
}
