//! Latency distributions and percentile reporting.
//!
//! Recommendation L2: "Researchers should report distribution statistics
//! and/or plot CDFs as illustrated in Figure 3, rather than reporting
//! singular latency metrics." The figures plot request latency against a
//! log-scaled percentile axis: 0, 90, 99, 99.9, 99.99, 99.999, 99.9999.

use chopin_analysis::descriptive::percentile_sorted;
use chopin_analysis::histogram::HdrHistogram;
use chopin_runtime::time::SimDuration;

/// The percentile axis used by the paper's latency figures.
pub const FIGURE_PERCENTILES: [f64; 7] = [0.0, 90.0, 99.0, 99.9, 99.99, 99.999, 99.9999];

/// The tabular report the suite prints: "from median to 99.99".
pub const REPORT_PERCENTILES: [f64; 5] = [50.0, 90.0, 99.0, 99.9, 99.99];

/// Position of percentile `p` on the paper's log-scaled percentile axis
/// (Figures 3 and 6): 0, 90, 99, 99.9, … are equally spaced, i.e.
/// `x = -log10(1 - p/100)`.
///
/// # Examples
///
/// ```
/// use chopin_core::latency::percentile::percentile_axis_position;
///
/// assert_eq!(percentile_axis_position(0.0), 0.0);
/// assert!((percentile_axis_position(90.0) - 1.0).abs() < 1e-9);
/// assert!((percentile_axis_position(99.0) - 2.0).abs() < 1e-9);
/// assert!((percentile_axis_position(99.9) - 3.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100)` (100 maps to infinity).
pub fn percentile_axis_position(p: f64) -> f64 {
    assert!((0.0..100.0).contains(&p), "percentile must lie in [0, 100)");
    -(1.0 - p / 100.0).log10()
}

/// An immutable latency distribution.
///
/// # Examples
///
/// ```
/// use chopin_core::latency::LatencyDistribution;
/// use chopin_runtime::time::SimDuration;
///
/// let d = LatencyDistribution::from_durations(
///     (1..=100).map(SimDuration::from_millis),
/// ).expect("non-empty");
/// assert_eq!(d.len(), 100);
/// assert!((d.percentile(50.0) - 50.5).abs() < 1e-9);
/// assert!(d.percentile(99.0) > d.percentile(90.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyDistribution {
    /// Latencies in milliseconds, ascending.
    sorted_ms: Vec<f64>,
}

impl LatencyDistribution {
    /// Build a distribution from raw durations.
    ///
    /// Returns `None` for an empty input.
    pub fn from_durations<I: IntoIterator<Item = SimDuration>>(latencies: I) -> Option<Self> {
        let mut sorted_ms: Vec<f64> = latencies.into_iter().map(|d| d.as_millis_f64()).collect();
        if sorted_ms.is_empty() {
            return None;
        }
        sorted_ms.sort_by(f64::total_cmp);
        Some(LatencyDistribution { sorted_ms })
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.sorted_ms.len()
    }

    /// Whether the distribution is empty (never: construction rejects it).
    pub fn is_empty(&self) -> bool {
        self.sorted_ms.is_empty()
    }

    /// The `p`-th percentile latency in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        match percentile_sorted(&self.sorted_ms, p) {
            Ok(v) => v,
            Err(e) => panic!("invalid percentile query: {e}"),
        }
    }

    /// The maximum observed latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        // Construction rejects empty distributions.
        self.sorted_ms.last().copied().unwrap_or(f64::NAN)
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.sorted_ms.iter().sum::<f64>() / self.sorted_ms.len() as f64
    }

    /// The (percentile, latency-ms) series for the paper's figure axis,
    /// truncated to percentiles the sample size can resolve (a 420-event
    /// jme run cannot speak to the 99.999th percentile).
    pub fn figure_curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted_ms.len() as f64;
        FIGURE_PERCENTILES
            .iter()
            .filter(|&&p| p == 0.0 || n >= 100.0 / (100.0 - p))
            .map(|&p| (p, self.percentile(p)))
            .collect()
    }

    /// The tabular "median to 99.99" report as (percentile, latency-ms)
    /// pairs.
    pub fn report(&self) -> Vec<(f64, f64)> {
        REPORT_PERCENTILES
            .iter()
            .map(|&p| (p, self.percentile(p)))
            .collect()
    }

    /// Compress the distribution into an HDR histogram over nanoseconds,
    /// with `precision_bits` of relative precision — the constant-memory
    /// form used to merge latency across invocations.
    pub fn to_histogram(&self, precision_bits: u32) -> HdrHistogram {
        let mut h = HdrHistogram::new(precision_bits);
        for &ms in &self.sorted_ms {
            h.record((ms * 1e6).round().max(0.0) as u64);
        }
        h
    }

    /// Rebuild an approximate distribution from a (possibly merged) HDR
    /// histogram by expanding each percentile of interest. Returns `None`
    /// for an empty histogram.
    pub fn from_histogram(h: &HdrHistogram) -> Option<LatencyDistribution> {
        if h.is_empty() {
            return None;
        }
        // Reconstruct a representative sample: one point per permille.
        let sorted_ms: Vec<f64> = (0..=1000)
            .map(|k| h.value_at_percentile(k as f64 / 10.0) as f64 / 1e6)
            .collect();
        Some(LatencyDistribution { sorted_ms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dist(ms: &[u64]) -> LatencyDistribution {
        LatencyDistribution::from_durations(ms.iter().map(|&m| SimDuration::from_millis(m)))
            .unwrap()
    }

    #[test]
    fn empty_input_rejected() {
        assert!(LatencyDistribution::from_durations(std::iter::empty()).is_none());
    }

    #[test]
    fn percentiles_are_monotone() {
        let d = dist(&[5, 1, 9, 3, 7, 2, 8, 4, 6, 10]);
        let mut prev = 0.0;
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            let v = d.percentile(p);
            assert!(v >= prev);
            prev = v;
        }
        assert_eq!(d.max_ms(), 10.0);
        assert!((d.mean_ms() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn figure_curve_respects_sample_size() {
        let small = dist(&[1; 50]);
        let points: Vec<f64> = small.figure_curve().iter().map(|(p, _)| *p).collect();
        assert!(points.contains(&0.0));
        assert!(points.contains(&90.0));
        assert!(!points.contains(&99.9), "50 events cannot resolve 99.9");
        let big = LatencyDistribution::from_durations(
            (0..2_000_000).map(|_| SimDuration::from_millis(1)),
        )
        .unwrap();
        assert_eq!(big.figure_curve().len(), FIGURE_PERCENTILES.len());
    }

    #[test]
    fn report_covers_median_to_four_nines() {
        let d = dist(&(1..=10_000).collect::<Vec<_>>());
        let report = d.report();
        assert_eq!(report.len(), 5);
        assert_eq!(report[0].0, 50.0);
        assert_eq!(report[4].0, 99.99);
    }

    #[test]
    fn histogram_round_trip_preserves_percentiles() {
        let d = dist(&(1..=1000).collect::<Vec<_>>());
        let h = d.to_histogram(7);
        assert_eq!(h.len(), 1000);
        let r = LatencyDistribution::from_histogram(&h).expect("non-empty");
        for p in [50.0, 90.0, 99.0] {
            let a = d.percentile(p);
            let b = r.percentile(p);
            assert!((a - b).abs() / a < 0.02, "p{p}: exact {a} vs histogram {b}");
        }
        assert!(LatencyDistribution::from_histogram(
            &chopin_analysis::histogram::HdrHistogram::new(5)
        )
        .is_none());
    }

    #[test]
    fn histograms_merge_across_invocations() {
        let a = dist(&[1, 2, 3]).to_histogram(6);
        let mut b = dist(&[100, 200, 300]).to_histogram(6);
        b.merge(&a).unwrap();
        assert_eq!(b.len(), 6);
        let merged = LatencyDistribution::from_histogram(&b).unwrap();
        assert!(merged.percentile(0.0) < 4.0);
        assert!(merged.percentile(100.0) > 250.0);
    }

    #[test]
    fn axis_positions_are_equally_spaced_nines() {
        let positions: Vec<f64> = [0.0, 90.0, 99.0, 99.9, 99.99, 99.999]
            .iter()
            .map(|&p| percentile_axis_position(p))
            .collect();
        for (i, x) in positions.iter().enumerate() {
            assert!((x - i as f64).abs() < 1e-9, "{positions:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_percentile_bounded_by_extremes(
            ms in proptest::collection::vec(1u64..100_000, 1..200),
            p in 0.0f64..100.0,
        ) {
            let d = dist(&ms);
            let v = d.percentile(p);
            prop_assert!(v >= d.percentile(0.0) - 1e-9);
            prop_assert!(v <= d.max_ms() + 1e-9);
        }
    }
}
