//! Minimum mutator utilization (MMU) — the prior-art responsiveness metric
//! of Cheng and Blelloch that §4.4 discusses.
//!
//! "They proposed the notion of minimum mutator utilization (MMU) metric to
//! reflect how much CPU was available to the mutator over a sliding window
//! of time, for various window sizes. ... Even so, MMU is not ideal since
//! it is a single-threaded measure, cannot capture throughput reductions
//! due to expensive barriers embedded within the mutator, and requires
//! instrumenting the garbage collector."
//!
//! The reproduction computes MMU from the mutator progress trace: the
//! utilization of a window is the average execution rate within it,
//! normalised by the trace's peak rate. MMU(w) is the minimum over all
//! windows of width `w`. Because the normalisation hides uniform
//! slowdowns, barrier taxes are invisible to MMU — exactly the blind spot
//! the paper points out, demonstrated by
//! `tests/mmu_blind_spots.rs`.

use chopin_runtime::progress::ProgressTrace;
use chopin_runtime::time::SimDuration;

/// Minimum mutator utilization over sliding windows of width `window`.
///
/// Returns a value in `[0, 1]`: 1.0 means the mutator ran at peak rate in
/// every window; 0.0 means some window was entirely stopped. Returns
/// `None` for an empty trace, a zero window, or a window longer than the
/// trace.
///
/// # Examples
///
/// ```
/// use chopin_core::latency::mmu::mmu;
/// use chopin_runtime::progress::ProgressTrace;
/// use chopin_runtime::time::{SimDuration, SimTime};
///
/// let mut trace = ProgressTrace::new();
/// trace.push(SimTime::from_nanos(0), SimTime::from_nanos(400), 1.0);
/// trace.push(SimTime::from_nanos(400), SimTime::from_nanos(500), 0.0); // 100ns pause
/// trace.push(SimTime::from_nanos(500), SimTime::from_nanos(1000), 1.0);
///
/// // A 100ns window can land entirely inside the pause.
/// assert_eq!(mmu(&trace, SimDuration::from_nanos(100)), Some(0.0));
/// // A 500ns window sees at most 100ns of pause: utilization >= 0.8.
/// let m = mmu(&trace, SimDuration::from_nanos(500)).unwrap();
/// assert!((m - 0.8).abs() < 1e-9);
/// ```
pub fn mmu(trace: &ProgressTrace, window: SimDuration) -> Option<f64> {
    let segments = trace.segments();
    if segments.is_empty() || window.is_zero() {
        return None;
    }
    let t0 = segments[0].start.as_nanos() as f64;
    let t1 = segments[segments.len() - 1].end.as_nanos() as f64;
    let w = window.as_nanos() as f64;
    if w > t1 - t0 {
        return None;
    }
    let peak = segments
        .iter()
        .map(|s| s.worker_rate)
        .fold(0.0f64, f64::max);
    if peak <= 0.0 {
        return Some(0.0);
    }

    // Prefix integral of rate over time at segment boundaries.
    let mut bounds = Vec::with_capacity(segments.len() + 1);
    let mut integral = Vec::with_capacity(segments.len() + 1);
    bounds.push(t0);
    integral.push(0.0);
    for s in segments {
        let prev = integral.last().copied().unwrap_or(0.0);
        bounds.push(s.end.as_nanos() as f64);
        integral.push(prev + s.worker_rate * (s.end - s.start).as_nanos() as f64);
    }
    let value_at = |t: f64| -> f64 {
        // Integral of rate from t0 to t.
        match bounds.binary_search_by(|b| b.total_cmp(&t)) {
            Ok(i) => integral[i],
            Err(i) => {
                // t lies inside segment i-1.
                let s = &segments[i - 1];
                integral[i - 1] + s.worker_rate * (t - bounds[i - 1])
            }
        }
    };

    // The sliding integral of a piecewise-constant function attains its
    // minimum with a window edge at a segment boundary: evaluate windows
    // starting at every boundary and ending at every boundary.
    let mut min_util = f64::INFINITY;
    let mut consider = |start: f64| {
        let start = start.clamp(t0, t1 - w);
        let util = (value_at(start + w) - value_at(start)) / (w * peak);
        if util < min_util {
            min_util = util;
        }
    };
    for &b in &bounds {
        consider(b);
        consider(b - w);
    }
    Some(min_util.clamp(0.0, 1.0))
}

/// MMU at a ladder of window sizes (powers of ten from 1 µs up to the
/// trace length), as (window, utilization) pairs.
pub fn mmu_curve(trace: &ProgressTrace) -> Vec<(SimDuration, f64)> {
    let Some(end) = trace.end_time() else {
        return Vec::new();
    };
    let total = end.saturating_since(
        trace
            .segments()
            .first()
            .map(|s| s.start)
            .unwrap_or(chopin_runtime::time::SimTime::ZERO),
    );
    let mut out = Vec::new();
    let mut w = SimDuration::from_micros(1);
    while w <= total {
        if let Some(m) = mmu(trace, w) {
            out.push((w, m));
        }
        w = w * 10;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chopin_runtime::time::SimTime;

    fn trace(parts: &[(u64, u64, f64)]) -> ProgressTrace {
        let mut t = ProgressTrace::new();
        for &(a, b, r) in parts {
            t.push(SimTime::from_nanos(a), SimTime::from_nanos(b), r);
        }
        t
    }

    #[test]
    fn empty_or_degenerate_inputs() {
        assert_eq!(mmu(&ProgressTrace::new(), SimDuration::from_nanos(1)), None);
        let t = trace(&[(0, 100, 1.0)]);
        assert_eq!(mmu(&t, SimDuration::ZERO), None);
        assert_eq!(
            mmu(&t, SimDuration::from_nanos(200)),
            None,
            "window longer than trace"
        );
    }

    #[test]
    fn uninterrupted_trace_has_full_utilization() {
        let t = trace(&[(0, 1000, 2.0)]);
        assert_eq!(mmu(&t, SimDuration::from_nanos(100)), Some(1.0));
    }

    #[test]
    fn window_inside_pause_gives_zero() {
        let t = trace(&[(0, 400, 1.0), (400, 600, 0.0), (600, 1000, 1.0)]);
        assert_eq!(mmu(&t, SimDuration::from_nanos(150)), Some(0.0));
    }

    #[test]
    fn mmu_grows_with_window_size() {
        let t = trace(&[(0, 400, 1.0), (400, 500, 0.0), (500, 1000, 1.0)]);
        let mut prev = -1.0;
        for w in [50, 100, 200, 400, 800] {
            let m = mmu(&t, SimDuration::from_nanos(w)).unwrap();
            assert!(
                m >= prev - 1e-9,
                "MMU must be non-decreasing in window size"
            );
            prev = m;
        }
    }

    #[test]
    fn clustered_pauses_hurt_mmu_more_than_one_pause() {
        // Figure 2's point, in MMU form: same total pause, worse minimum.
        let single = trace(&[(0, 480, 1.0), (480, 520, 0.0), (520, 1000, 1.0)]);
        let clustered = trace(&[
            (0, 480, 1.0),
            (480, 500, 0.0),
            (500, 505, 1.0),
            (505, 525, 0.0),
            (525, 1000, 1.0),
        ]);
        let w = SimDuration::from_nanos(50);
        let m_single = mmu(&single, w).unwrap();
        let m_clustered = mmu(&clustered, w).unwrap();
        assert!(
            m_clustered <= m_single,
            "clustered {m_clustered} vs single {m_single}"
        );
    }

    #[test]
    fn uniform_slowdown_is_invisible_to_mmu() {
        // The blind spot: a trace running at half speed everywhere (e.g. a
        // heavy barrier tax) has the same normalised MMU as a full-speed
        // trace.
        let fast = trace(&[(0, 1000, 2.0)]);
        let slow = trace(&[(0, 1000, 1.0)]);
        let w = SimDuration::from_nanos(100);
        assert_eq!(mmu(&fast, w), mmu(&slow, w));
    }

    #[test]
    fn curve_covers_window_ladder() {
        let t = trace(&[
            (0, 10_000_000, 1.0),
            (10_000_000, 10_500_000, 0.0),
            (10_500_000, 20_000_000, 1.0),
        ]);
        let curve = mmu_curve(&t);
        assert!(curve.len() >= 2);
        assert!(curve.windows(2).all(|p| p[0].1 <= p[1].1 + 1e-9));
    }
}
