//! Simple Latency (§4.4).
//!
//! "DaCapo times every event ... Once the workload completes, DaCapo
//! determines the distribution of latencies, reporting the distribution in
//! terms of percentiles, from median to 99.99 ... We call this metric
//! Simple Latency."

use chopin_runtime::requests::RequestEvent;
use chopin_runtime::time::SimDuration;

/// The simple latency of every event: `end − start`, in event order.
///
/// # Examples
///
/// ```
/// use chopin_core::latency::simple_latencies;
/// use chopin_runtime::requests::RequestEvent;
/// use chopin_runtime::time::SimTime;
///
/// let events = [RequestEvent {
///     start: SimTime::from_nanos(100),
///     end: SimTime::from_nanos(350),
/// }];
/// let lat = simple_latencies(&events);
/// assert_eq!(lat[0].as_nanos(), 250);
/// ```
pub fn simple_latencies(events: &[RequestEvent]) -> Vec<SimDuration> {
    events.iter().map(|e| e.latency()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chopin_runtime::time::SimTime;

    fn ev(start: u64, end: u64) -> RequestEvent {
        RequestEvent {
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn latencies_match_event_spans() {
        let events = [ev(0, 10), ev(10, 40), ev(40, 45)];
        let lat = simple_latencies(&events);
        let ns: Vec<u64> = lat.iter().map(|d| d.as_nanos()).collect();
        assert_eq!(ns, vec![10, 30, 5]);
    }

    #[test]
    fn empty_events_give_empty_latencies() {
        assert!(simple_latencies(&[]).is_empty());
    }
}
