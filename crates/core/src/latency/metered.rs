//! Metered Latency (§4.4): modelling request queueing.
//!
//! "In a real system, request/event start times are externally defined, so
//! a delay will affect not only all running events, but all subsequent
//! events that are forced to wait in the queue ... we assign each event an
//! assumed start time based on all events having been hypothetically
//! received at uniform intervals throughout the execution ... We then
//! determine the metered latency for each event as the time between its end
//! time and the earlier of its actual and assumed start times."
//!
//! "We implement the uniform synthetic start times by applying a smoothing
//! function to the actual start times, using a sliding average. A window
//! size of one affords no smoothing, so is identical to simple latency ...
//! an arbitrarily large window gives all events uniformly distributed
//! synthetic start times. DaCapo reports metered latency using window sizes
//! from 1 ms up to the length of the benchmark execution, in powers of
//! ten."
//!
//! The smoothing operates on inter-arrival gaps: each event's assumed gap
//! is the sliding average of the actual gaps within the window, and the
//! assumed start times are the running sum of assumed gaps. With no
//! smoothing the gaps are unchanged (metered ≡ simple); with full smoothing
//! every gap is the global mean, i.e. uniform synthetic arrivals.

use chopin_runtime::requests::RequestEvent;
use chopin_runtime::time::{SimDuration, SimTime};

/// The smoothing window applied to actual start times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SmoothingWindow {
    /// No smoothing (window of one event): metered latency degenerates to
    /// simple latency, "reflecting no queueing effect".
    None,
    /// A sliding time window of the given width. The paper suggests 100 ms
    /// as "a reasonable middle ground".
    Duration(SimDuration),
    /// Full smoothing: uniformly distributed synthetic start times across
    /// the whole execution.
    Full,
}

impl SmoothingWindow {
    /// The window ladder the paper reports: no smoothing, then powers of
    /// ten from 1 ms up to (at least) `run_length`, then full smoothing.
    ///
    /// # Examples
    ///
    /// ```
    /// use chopin_core::latency::SmoothingWindow;
    /// use chopin_runtime::time::SimDuration;
    ///
    /// let ladder = SmoothingWindow::ladder(SimDuration::from_millis(250));
    /// assert_eq!(ladder.first(), Some(&SmoothingWindow::None));
    /// assert_eq!(ladder.last(), Some(&SmoothingWindow::Full));
    /// assert!(ladder.contains(&SmoothingWindow::Duration(SimDuration::from_millis(100))));
    /// ```
    pub fn ladder(run_length: SimDuration) -> Vec<SmoothingWindow> {
        let mut windows = vec![SmoothingWindow::None];
        let mut w = SimDuration::from_millis(1);
        loop {
            windows.push(SmoothingWindow::Duration(w));
            if w >= run_length {
                break;
            }
            w = w * 10;
        }
        windows.push(SmoothingWindow::Full);
        windows
    }
}

impl std::fmt::Display for SmoothingWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmoothingWindow::None => write!(f, "none"),
            SmoothingWindow::Duration(d) => write!(f, "{d}"),
            SmoothingWindow::Full => write!(f, "full"),
        }
    }
}

/// Compute metered latencies for `events` under the given smoothing
/// window.
///
/// Events are processed in global start-time order (the queueing model is
/// system-wide, not per-worker); the returned latencies correspond to the
/// sorted order. Metered latency can never be lower than simple latency:
/// the assumed start is only ever taken when it is *earlier* than the
/// actual start.
///
/// # Examples
///
/// ```
/// use chopin_core::latency::{metered_latencies, simple_latencies, SmoothingWindow};
/// use chopin_runtime::requests::RequestEvent;
/// use chopin_runtime::time::SimTime;
///
/// let mk = |s, e| RequestEvent {
///     start: SimTime::from_nanos(s),
///     end: SimTime::from_nanos(e),
/// };
/// // A long stall delays the third event's actual start; metered latency
/// // charges the queueing wait to the event.
/// let events = vec![mk(0, 100), mk(100, 200), mk(900, 1000), mk(1000, 1100)];
/// let metered = metered_latencies(&events, SmoothingWindow::Full);
/// let simple = simple_latencies(&events);
/// assert!(metered[2] > simple[2]);
/// ```
pub fn metered_latencies(events: &[RequestEvent], window: SmoothingWindow) -> Vec<SimDuration> {
    if events.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<RequestEvent> = events.to_vec();
    sorted.sort();
    let n = sorted.len();

    if window == SmoothingWindow::None || n == 1 {
        return sorted.iter().map(|e| e.latency()).collect();
    }

    let starts: Vec<u64> = sorted.iter().map(|e| e.start.as_nanos()).collect();
    let assumed = assumed_starts(&starts, window);

    sorted
        .iter()
        .zip(assumed)
        .map(|(e, a)| {
            let effective_start = e.start.min(a);
            e.end.saturating_since(effective_start)
        })
        .collect()
}

/// Assumed start times: running sum of sliding-average inter-arrival gaps,
/// anchored at the first actual start.
fn assumed_starts(starts: &[u64], window: SmoothingWindow) -> Vec<SimTime> {
    let n = starts.len();
    debug_assert!(n >= 2);
    let first = starts[0];
    let last = starts[n - 1];

    match window {
        SmoothingWindow::None => starts.iter().map(|&s| SimTime::from_nanos(s)).collect(),
        SmoothingWindow::Full => {
            // Uniform synthetic arrivals over [first, last].
            let mean_gap = (last - first) as f64 / (n - 1) as f64;
            (0..n)
                .map(|k| SimTime::from_nanos(first + (mean_gap * k as f64).round() as u64))
                .collect()
        }
        SmoothingWindow::Duration(w) => {
            // Local linear fit of the arrival curve over a sliding time
            // window: within the window the events are assumed to arrive at
            // the window's average rate. A pause therefore charges its
            // backlog to the events within a window of it (the queueing
            // effect), and the effect decays beyond the window — while a
            // window spanning the whole run reproduces the uniform
            // synthetic arrivals of full smoothing.
            let half = w.as_nanos() / 2;
            // Prefix sums of starts for O(1) window means.
            let mut prefix = Vec::with_capacity(n + 1);
            prefix.push(0u128);
            for &s in starts {
                let last = prefix.last().copied().unwrap_or(0);
                prefix.push(last + s as u128);
            }
            let mean_start = |i: usize, j: usize| -> f64 {
                ((prefix[j + 1] - prefix[i]) as f64) / (j - i + 1) as f64
            };

            let mut lo = 0usize;
            let mut hi = 0usize;
            let mut assumed = Vec::with_capacity(n);
            for k in 0..n {
                let centre = starts[k];
                let win_lo = centre.saturating_sub(half);
                let win_hi = centre.saturating_add(half);
                while lo < k && starts[lo] < win_lo {
                    lo += 1;
                }
                if hi < k {
                    hi = k;
                }
                while hi + 1 < n && starts[hi + 1] <= win_hi {
                    hi += 1;
                }
                let a = if hi == lo {
                    starts[k] as f64
                } else {
                    let slope = (starts[hi] - starts[lo]) as f64 / (hi - lo) as f64;
                    let mean_i = (lo + hi) as f64 / 2.0;
                    mean_start(lo, hi) + slope * (k as f64 - mean_i)
                };
                assumed.push(a.max(0.0));
            }
            assumed
                .into_iter()
                .map(|a| SimTime::from_nanos(a.round() as u64))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::simple_latencies;
    use proptest::prelude::*;

    fn ev(start: u64, end: u64) -> RequestEvent {
        RequestEvent {
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(metered_latencies(&[], SmoothingWindow::Full).is_empty());
        let one = [ev(5, 10)];
        assert_eq!(
            metered_latencies(&one, SmoothingWindow::Full),
            vec![SimDuration::from_nanos(5)]
        );
    }

    #[test]
    fn no_smoothing_equals_simple_latency() {
        let events = vec![ev(0, 10), ev(10, 50), ev(300, 320)];
        assert_eq!(
            metered_latencies(&events, SmoothingWindow::None),
            simple_latencies(&events)
        );
    }

    #[test]
    fn uniform_arrivals_make_full_smoothing_equal_simple() {
        // Perfectly regular arrivals: the synthetic starts coincide with
        // the actual starts, so metering changes nothing.
        let events: Vec<RequestEvent> = (0..10).map(|k| ev(k * 100, k * 100 + 40)).collect();
        assert_eq!(
            metered_latencies(&events, SmoothingWindow::Full),
            simple_latencies(&events)
        );
    }

    #[test]
    fn pause_backlog_is_charged_to_later_events() {
        // Events at 0,100,200 then a 1000ns stall, then 1300,1400: under
        // full smoothing the post-stall events' assumed starts are much
        // earlier than their actual starts.
        let events = vec![
            ev(0, 40),
            ev(100, 140),
            ev(200, 240),
            ev(1300, 1340),
            ev(1400, 1440),
        ];
        let simple = simple_latencies(&events);
        let metered = metered_latencies(&events, SmoothingWindow::Full);
        assert_eq!(simple[3].as_nanos(), 40);
        assert!(
            metered[3].as_nanos() > 200,
            "queued delay is charged: {:?}",
            metered[3]
        );
        // Earlier events are unaffected (assumed starts not earlier than
        // actual).
        assert_eq!(metered[0], simple[0]);
    }

    #[test]
    fn window_ladder_has_expected_shape() {
        let ladder = SmoothingWindow::ladder(SimDuration::from_secs(2));
        // none, 1ms, 10ms, 100ms, 1s, 10s, full
        assert_eq!(ladder.len(), 7);
        assert_eq!(ladder[0], SmoothingWindow::None);
        assert_eq!(
            ladder[1],
            SmoothingWindow::Duration(SimDuration::from_millis(1))
        );
        assert_eq!(*ladder.last().unwrap(), SmoothingWindow::Full);
    }

    #[test]
    fn display_of_windows() {
        assert_eq!(SmoothingWindow::None.to_string(), "none");
        assert_eq!(SmoothingWindow::Full.to_string(), "full");
        assert_eq!(
            SmoothingWindow::Duration(SimDuration::from_millis(100)).to_string(),
            "100.000ms"
        );
    }

    proptest! {
        #[test]
        fn prop_metered_never_below_simple(
            raw in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 2..100),
            window_ms in 0u64..1000,
        ) {
            let events: Vec<RequestEvent> = raw
                .iter()
                .map(|&(s, d)| ev(s, s + d))
                .collect();
            let windows = [
                SmoothingWindow::None,
                SmoothingWindow::Duration(SimDuration::from_millis(window_ms.max(1))),
                SmoothingWindow::Full,
            ];
            let mut sorted = events.clone();
            sorted.sort();
            let simple = simple_latencies(&sorted);
            for w in windows {
                let metered = metered_latencies(&events, w);
                prop_assert_eq!(metered.len(), simple.len());
                for (m, s) in metered.iter().zip(&simple) {
                    // Allow 1ns of rounding slack from gap reconstruction.
                    prop_assert!(
                        m.as_nanos() + 1 >= s.as_nanos(),
                        "metered {} < simple {} under {:?}", m, s, w
                    );
                }
            }
        }

        #[test]
        fn prop_wider_windows_never_reduce_total_metered_latency_much(
            raw in proptest::collection::vec((0u64..100_000, 1u64..1_000), 3..50),
        ) {
            // Not a strict theorem per event, but the *total* metered
            // latency under full smoothing should be at least the total
            // simple latency.
            let events: Vec<RequestEvent> = raw.iter().map(|&(s, d)| ev(s, s + d)).collect();
            let total = |v: Vec<SimDuration>| -> u128 {
                v.iter().map(|d| d.as_nanos() as u128).sum()
            };
            let simple = total(metered_latencies(&events, SmoothingWindow::None));
            let full = total(metered_latencies(&events, SmoothingWindow::Full));
            prop_assert!(full + events.len() as u128 >= simple);
        }
    }
}
