//! The DaCapo Chopin suite and methodology layer — the primary
//! contribution of *Rethinking Java Performance Analysis* (ASPLOS '25),
//! reproduced in Rust on a simulated managed runtime.
//!
//! The paper contributes a benchmark suite with integrated workload
//! characterisation plus a set of methodologies; this crate provides both:
//!
//! * [`benchmark`] — the suite registry and the run configuration builder
//!   (collector, heap in multiples of the nominal minimum heap, size
//!   class, iterations).
//! * [`iteration`] — JIT-warmup modelling and invocation aggregation
//!   (§4.3, §6.1).
//! * [`latency`] — Simple and Metered Latency with smoothing windows
//!   (§4.4), distributions and figure-ready percentile curves.
//! * [`lbo`] — the Lower-Bound Overhead methodology of Cai et al. (§4.5),
//!   for both the wall clock and the task clock.
//! * [`minheap`] / [`sweep`] — minimum-heap search and heap-size sweeps in
//!   multiples of the minimum (recommendations H1/H2).
//! * [`nominal`] — the 48 nominal statistics of Table 1, the published
//!   per-benchmark dataset, rank/score tables, and the Figure 4 PCA.
//! * [`methodology`] — the paper's seven recommendations as data.
//! * [`mod@characterize`] — re-measures the G/P-family nominal statistics on
//!   the simulated runtime (the suite's bundled instrumentation, §5.1),
//!   including the §6.1.3 frequency/memory/LLC sensitivity experiments.
//!
//! # Quickstart
//!
//! ```
//! use chopin_core::Suite;
//! use chopin_runtime::collector::CollectorKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let suite = Suite::chopin();
//! let fop = suite.benchmark("fop").expect("in the suite");
//! let runs = fop
//!     .runner()
//!     .collector(CollectorKind::G1)
//!     .heap_factor(2.0) // 2 × fop's nominal minimum heap (§6.1.2)
//!     .run()?;
//! println!("fop timed iteration: {}", runs.timed().wall_time());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod benchmark;
pub mod characterize;
pub mod iteration;
pub mod latency;
pub mod lbo;
pub mod methodology;
pub mod minheap;
pub mod nominal;
pub mod sweep;

pub use benchmark::{Benchmark, BenchmarkError, BenchmarkRunner, Suite};
pub use characterize::{characterize, CharacterizeConfig, MeasuredStats};
pub use iteration::IterationSet;
pub use lbo::{Clock, LboAnalysis, RunSample};
pub use minheap::{MinHeapError, MinHeapSearch};
pub use sweep::{run_sweep, SweepConfig, SweepResult};
