//! Iterations, warmup and invocation aggregation.
//!
//! §4.3 of the paper discusses compilers and warmup: "The DaCapo Chopin
//! suite comes with detailed measures of warmup time for each workload. In
//! practice we found that the fifth iteration (`-n 5`) for default workload
//! sizes ... exhibit well-warmed up behavior." The PWU nominal statistic
//! records "iterations to warm up to within 1.5 % of best".
//!
//! The simulation models JIT warmup as a per-iteration multiplier on the
//! workload's CPU demand that decays geometrically so that iteration
//! `PWU` lands within 1.5 % of the warmed-up cost — by construction
//! honouring the published statistic.

use chopin_runtime::result::RunResult;
use chopin_runtime::time::SimDuration;

/// Extra relative cost of the first (cold) iteration: interpretation plus
/// tier-1 code plus class loading. The decay is then solved per workload
/// from its PWU statistic.
const COLD_OVERHEAD: f64 = 0.6;

/// The warmup threshold PWU is defined against: "within 1.5 % of best".
const WARM_THRESHOLD: f64 = 0.015;

/// The work-scale multiplier for iteration `i` (0-based) of a workload that
/// needs `pwu` iterations to warm up.
///
/// Iteration 0 costs `1 + COLD_OVERHEAD`; by iteration `pwu` (0-based:
/// index `pwu`) the multiplier is within 1.5 % of 1.0.
///
/// # Examples
///
/// ```
/// use chopin_core::iteration::warmup_scale;
///
/// assert!(warmup_scale(0, 5) > 1.5);
/// assert!(warmup_scale(5, 5) <= 1.015);
/// assert!((warmup_scale(100, 5) - 1.0).abs() < 1e-3);
/// ```
pub fn warmup_scale(iteration: u32, pwu: u32) -> f64 {
    let pwu = pwu.max(1) as f64;
    // decay^pwu = WARM_THRESHOLD / COLD_OVERHEAD
    let decay = (WARM_THRESHOLD / COLD_OVERHEAD).powf(1.0 / pwu);
    1.0 + COLD_OVERHEAD * decay.powi(iteration as i32)
}

/// Residual warmup overhead at the iteration a plan actually times.
///
/// The timed iteration is the *last* of `iterations` (see
/// [`IterationSet::timed`]), i.e. 0-based index `iterations - 1`; this
/// returns `warmup_scale` there minus 1 — the fraction by which that
/// iteration is still slower than steady state. Pre-flight analyses
/// compare it against the 1.5 % PWU threshold.
///
/// # Examples
///
/// ```
/// use chopin_core::iteration::residual_warmup;
///
/// // 5 iterations of a PWU-9 workload time iteration 4 — still cold.
/// assert!(residual_warmup(5, 9) > 0.015);
/// // 10 iterations reach iteration 9 = PWU, warm by construction.
/// assert!(residual_warmup(10, 9) <= 0.015 + 1e-9);
/// ```
pub fn residual_warmup(iterations: u32, pwu: u32) -> f64 {
    warmup_scale(iterations.saturating_sub(1), pwu) - 1.0
}

/// The iteration count that times a warmed-up iteration for a workload
/// with warmup statistic `pwu`: iteration index `pwu` is the first within
/// 1.5 % of best, so `pwu + 1` iterations are needed for the timed (last)
/// iteration to be it.
pub fn steady_state_iterations(pwu: u32) -> u32 {
    pwu.max(1) + 1
}

/// The iterations of one simulated invocation, in execution order.
///
/// # Examples
///
/// See [`crate::benchmark::BenchmarkRunner::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct IterationSet {
    iterations: Vec<RunResult>,
}

impl IterationSet {
    /// Wrap a non-empty iteration sequence.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is empty.
    pub fn new(iterations: Vec<RunResult>) -> Self {
        assert!(
            !iterations.is_empty(),
            "an invocation runs at least one iteration"
        );
        IterationSet { iterations }
    }

    /// All iterations, first to last.
    pub fn iterations(&self) -> &[RunResult] {
        &self.iterations
    }

    /// The timed iteration — the last, per §6.1.2.
    pub fn timed(&self) -> &RunResult {
        match self.iterations.last() {
            Some(last) => last,
            None => unreachable!("InvocationResult holds at least one iteration"),
        }
    }

    /// Wall-clock time summed over all iterations (what a user of the
    /// whole invocation experiences).
    pub fn total_wall(&self) -> SimDuration {
        self.iterations.iter().map(|r| r.wall_time()).sum()
    }

    /// Task clock summed over all iterations.
    pub fn total_task_clock(&self) -> SimDuration {
        self.iterations.iter().map(|r| r.task_clock()).sum()
    }

    /// Total collections across all iterations.
    pub fn total_gc_count(&self) -> u64 {
        self.iterations.iter().map(|r| r.telemetry().gc_count).sum()
    }

    /// The iteration index (0-based) after which wall time is within
    /// `threshold` (e.g. 0.015) of the fastest iteration — the measured
    /// analog of the PWU statistic.
    pub fn measured_warmup(&self, threshold: f64) -> usize {
        let best = self
            .iterations
            .iter()
            .map(|r| r.wall_time().as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        self.iterations
            .iter()
            .position(|r| r.wall_time().as_secs_f64() <= best * (1.0 + threshold))
            .unwrap_or(self.iterations.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_scale_is_monotone_decreasing() {
        for pwu in [1, 3, 5, 9] {
            let scales: Vec<f64> = (0..12).map(|i| warmup_scale(i, pwu)).collect();
            assert!(scales.windows(2).all(|w| w[0] >= w[1]), "{scales:?}");
            assert!(scales[0] > 1.5);
        }
    }

    #[test]
    fn warmup_honours_pwu_threshold() {
        for pwu in [1u32, 2, 5, 9] {
            let s = warmup_scale(pwu, pwu);
            assert!(
                s <= 1.0 + WARM_THRESHOLD + 1e-9,
                "pwu={pwu}: iteration pwu must be warm, got {s}"
            );
            if pwu > 1 {
                let before = warmup_scale(pwu - 2, pwu);
                assert!(before > 1.0 + WARM_THRESHOLD, "pwu={pwu}: not warm before");
            }
        }
    }

    #[test]
    fn steady_state_iterations_reach_the_warm_threshold() {
        for pwu in [1u32, 2, 5, 9] {
            let n = steady_state_iterations(pwu);
            assert!(
                residual_warmup(n, pwu) <= WARM_THRESHOLD + 1e-9,
                "pwu={pwu}"
            );
            assert!(residual_warmup(n - 1, pwu) > WARM_THRESHOLD, "pwu={pwu}");
        }
    }

    #[test]
    fn slow_warmup_workloads_stay_cold_longer() {
        // jython (PWU 9) at iteration 3 is colder than fop-alike (PWU 2).
        assert!(warmup_scale(3, 9) > warmup_scale(3, 2));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn empty_iteration_set_rejected() {
        IterationSet::new(vec![]);
    }
}
