//! Workload characterisation measurement: re-deriving nominal statistics
//! from the simulated runtime.
//!
//! DaCapo Chopin ships precomputed nominal statistics because they are
//! "methodologically and computationally non-trivial to calculate" (§5.1);
//! the suite also ships the instrumentation so others can reproduce them.
//! This module is that instrumentation for the reproduction: it runs the
//! measurement experiments (§6.1.3's frequency/memory/LLC configurations,
//! 2× heap G1 baselines, heap-size sweeps) against the simulator and
//! reports the measured counterparts of the G- and P-family statistics.
//!
//! Two kinds of validation fall out:
//!
//! * **Emergent statistics** (GCC, GCP, GCA, GCM, GSS, GMD) are produced by
//!   the interaction of the live-set model, the collector behaviour and the
//!   engine — comparing their *ranking* across the suite against the
//!   published ranking (Spearman) tests the simulation's fidelity.
//! * **Replayed statistics** (PFS, PMS, PLS, PWU) are driven by calibrated
//!   sensitivities — measuring them closes the loop on the calibration
//!   (the experiment machinery must reproduce what it was told).

use crate::benchmark::{BenchmarkError, BenchmarkRunner};
use crate::minheap::MinHeapSearch;
use chopin_analysis::descriptive::percentile;
use chopin_analysis::rank::spearman;
use chopin_runtime::collector::CollectorKind;
use chopin_runtime::config::CompilerMode;
use chopin_runtime::machine::MachineConfig;
use chopin_workloads::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// The measured counterparts of the suite's G- and P-family nominal
/// statistics for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredStats {
    /// Benchmark name.
    pub benchmark: String,
    /// Empirical minimum heap in bytes (GMD analog); only present when the
    /// characterisation was configured to search for it.
    pub min_heap_bytes: Option<u64>,
    /// Collections during the timed iteration at 2× heap with G1 (GCC).
    pub gc_count_2x: u64,
    /// Percentage of wall time in GC pauses at 2× heap with G1 (GCP).
    pub gc_pause_pct_2x: f64,
    /// Average post-GC heap as a percentage of the nominal minimum heap at
    /// 2× with G1 (GCA); `None` when no collection occurred.
    pub avg_post_gc_pct: Option<f64>,
    /// Median post-GC heap percentage (GCM); `None` when no collection
    /// occurred.
    pub median_post_gc_pct: Option<f64>,
    /// Heap-size sensitivity: percentage slowdown at a tight (1.25×) heap
    /// relative to a generous (6×) one (GSS).
    pub heap_sensitivity_pct: f64,
    /// Percentage speedup from enabling Core Performance Boost (PFS).
    pub freq_speedup_pct: f64,
    /// Percentage slowdown under the slow-DRAM profile (PMS).
    pub slow_memory_slowdown_pct: f64,
    /// Percentage slowdown under the 1/16-LLC restriction (PLS).
    pub reduced_llc_slowdown_pct: f64,
    /// Percent 10th-iteration memory leakage: growth of the post-collection
    /// live level from the first to the tenth iteration (GLK).
    pub leakage_pct: Option<f64>,
    /// Percentage slowdown under forced C2 compilation (PCC).
    pub forced_c2_slowdown_pct: f64,
    /// Percentage slowdown under the interpreter (PIN).
    pub interpreter_slowdown_pct: f64,
    /// Iterations to warm up to within 1.5 % of best (PWU).
    pub warmup_iterations: usize,
    /// Wall time of the timed iteration at 2× with G1, seconds (PET).
    pub exec_time_s: f64,
}

/// Configuration of the characterisation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizeConfig {
    /// Also run the (more expensive) empirical minimum-heap search.
    pub with_min_heap: bool,
    /// Iterations per measurement invocation; the PWU measurement uses
    /// `max(iterations, 10)` to observe the warmup curve.
    pub iterations: u32,
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        CharacterizeConfig {
            with_min_heap: false,
            iterations: 5,
        }
    }
}

/// Measure one workload.
///
/// # Errors
///
/// Propagates [`BenchmarkError`] from any measurement run; individual
/// sensitivity experiments use the baseline G1 configuration at 2× heap,
/// which every workload supports.
pub fn characterize(
    profile: &WorkloadProfile,
    config: &CharacterizeConfig,
) -> Result<MeasuredStats, BenchmarkError> {
    let runner = || {
        BenchmarkRunner::for_profile(profile.clone())
            .collector(CollectorKind::G1)
            .heap_factor(2.0)
            .noise(0.0)
    };

    // Baseline at 2×: GCC, GCP, GCA, GCM, PET. The published nominal
    // statistics are defined over 5-iteration invocations (§6.1.2), and
    // leaky workloads (GLK — zxing doubles its live set by iteration 10)
    // may not fit 2× for longer invocations.
    let baseline = runner().iterations(config.iterations).run()?;
    let timed = baseline.timed();
    let wall_s = timed.wall_time().as_secs_f64();
    let pause_s = timed.telemetry().total_pause_wall().as_secs_f64();
    // SizeClass::Default always exists (the field is not optional), so
    // read it directly rather than through the fallible accessor.
    let min_heap_nominal = profile.min_heap_default_mb * (1u64 << 20) as f64;

    let post_gc_pcts: Vec<f64> = timed
        .telemetry()
        .heap_trace
        .iter()
        .map(|s| s.occupied_bytes / min_heap_nominal * 100.0)
        .collect();
    let (avg_post_gc_pct, median_post_gc_pct) = if post_gc_pcts.is_empty() {
        (None, None)
    } else {
        let avg = post_gc_pcts.iter().sum::<f64>() / post_gc_pcts.len() as f64;
        (Some(avg), percentile(&post_gc_pcts, 50.0).ok())
    };

    // GSS: tight vs generous heap.
    let tight = runner()
        .heap_factor(1.25)
        .iterations(config.iterations)
        .run()?
        .timed()
        .wall_time()
        .as_secs_f64();
    let generous = runner()
        .heap_factor(6.0)
        .iterations(config.iterations)
        .run()?
        .timed()
        .wall_time()
        .as_secs_f64();
    let heap_sensitivity_pct = (tight / generous - 1.0) * 100.0;

    // Machine-sensitivity experiments (§6.1.3). All four configurations
    // (including the reference) run the same iteration count so warmup
    // state is identical across the comparison.
    let wall_with = |machine: MachineConfig| -> Result<f64, BenchmarkError> {
        Ok(runner()
            .machine(machine)
            .iterations(config.iterations)
            .run()?
            .timed()
            .wall_time()
            .as_secs_f64())
    };
    let reference = wall_with(MachineConfig::default())?;
    let boosted = wall_with(MachineConfig::default().with_frequency_boost(true))?;
    let slow_mem = wall_with(MachineConfig::default().with_slow_memory(true))?;
    let small_llc = wall_with(MachineConfig::default().with_reduced_llc(true))?;

    // Compiler-configuration experiments (§4.3's axis; PCC and PIN).
    let wall_with_compiler = |mode: CompilerMode| -> Result<f64, BenchmarkError> {
        Ok(runner()
            .compiler_mode(mode)
            .iterations(config.iterations)
            .run()?
            .timed()
            .wall_time()
            .as_secs_f64())
    };
    let forced_c2 = wall_with_compiler(CompilerMode::ForcedC2)?;
    let interpreter = wall_with_compiler(CompilerMode::InterpreterOnly)?;

    // PWU needs enough iterations to watch the warmup curve flatten; run
    // it on a generous heap so leaky workloads still fit. The same run
    // measures GLK: growth of the post-collection live level from the
    // first iteration to the tenth.
    let warm_run = runner()
        .heap_factor(6.0)
        .iterations(config.iterations.max(10))
        .run()?;
    let warmup_iterations = warm_run.measured_warmup(0.015);
    let live_level = |r: &chopin_runtime::result::RunResult| -> Option<f64> {
        let trace = &r.telemetry().heap_trace;
        if trace.is_empty() {
            return None;
        }
        // The minimum post-collection occupancy approximates the live set.
        Some(
            trace
                .iter()
                .map(|s| s.occupied_bytes)
                .fold(f64::INFINITY, f64::min),
        )
    };
    let leakage_pct = match (
        warm_run.iterations().first().and_then(live_level),
        warm_run.iterations().last().and_then(live_level),
    ) {
        (Some(first), Some(last)) if first > 0.0 => Some((last / first - 1.0) * 100.0),
        _ => None,
    };

    let min_heap_bytes = if config.with_min_heap {
        Some(
            MinHeapSearch::default()
                .find(profile)
                .map_err(|e| BenchmarkError::Spec(e.to_string()))?,
        )
    } else {
        None
    };

    Ok(MeasuredStats {
        benchmark: profile.name.to_string(),
        min_heap_bytes,
        gc_count_2x: timed.telemetry().gc_count,
        gc_pause_pct_2x: pause_s / wall_s * 100.0,
        avg_post_gc_pct,
        median_post_gc_pct,
        heap_sensitivity_pct,
        freq_speedup_pct: (reference / boosted - 1.0) * 100.0,
        slow_memory_slowdown_pct: (slow_mem / reference - 1.0) * 100.0,
        reduced_llc_slowdown_pct: (small_llc / reference - 1.0) * 100.0,
        leakage_pct,
        forced_c2_slowdown_pct: (forced_c2 / reference - 1.0) * 100.0,
        interpreter_slowdown_pct: (interpreter / reference - 1.0) * 100.0,
        warmup_iterations,
        exec_time_s: wall_s,
    })
}

/// Measure every workload in the suite (sequentially; use the harness's
/// parallel runner for bulk work).
///
/// # Errors
///
/// Propagates the first failing measurement.
pub fn characterize_suite(
    config: &CharacterizeConfig,
) -> Result<Vec<MeasuredStats>, BenchmarkError> {
    chopin_workloads::suite::all()
        .iter()
        .map(|p| characterize(p, config))
        .collect()
}

/// Spearman rank correlation between a measured column and its published
/// counterpart, paired by position. Returns `None` when the correlation is
/// undefined (fewer than two pairs or a constant column).
pub fn rank_agreement(published: &[f64], measured: &[f64]) -> Option<f64> {
    spearman(published, measured).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chopin_workloads::suite;

    #[test]
    fn characterize_fop_produces_plausible_stats() {
        let fop = suite::by_name("fop").expect("in suite");
        let stats = characterize(&fop, &CharacterizeConfig::default()).unwrap();
        assert_eq!(stats.benchmark, "fop");
        assert!(stats.gc_count_2x > 10, "fop churns 75x its heap: {stats:?}");
        assert!(stats.gc_pause_pct_2x > 0.0 && stats.gc_pause_pct_2x < 60.0);
        assert!(stats.heap_sensitivity_pct > 0.0, "{stats:?}");
        assert!(stats.exec_time_s > 0.0);
        let gca = stats.avg_post_gc_pct.expect("fop collects");
        assert!((50.0..200.0).contains(&gca), "GCA {gca}");
    }

    #[test]
    fn sensitivity_experiments_reproduce_the_calibration() {
        // jython: PFS 20 (fully frequency-bound), PMS 0, PLS 1.
        let jython = suite::by_name("jython").expect("in suite");
        let stats = characterize(&jython, &CharacterizeConfig::default()).unwrap();
        assert!(
            (stats.freq_speedup_pct - 20.0).abs() < 4.0,
            "jython realises the full boost: {stats:?}"
        );
        assert!(stats.slow_memory_slowdown_pct.abs() < 3.0, "{stats:?}");

        // h2: PMS 40 (the most memory-bound workload).
        let h2 = suite::by_name("h2").expect("in suite");
        let stats = characterize(&h2, &CharacterizeConfig::default()).unwrap();
        assert!(
            stats.slow_memory_slowdown_pct > 20.0,
            "h2 suffers under slow DRAM: {stats:?}"
        );
    }

    #[test]
    fn compiler_modes_reproduce_pcc_and_pin() {
        // fop has the suite's highest forced-C2 cost (PCC 1083%) but is
        // barely interpreter-sensitive (PIN 23%); graphchi is the
        // opposite extreme for PIN (323%).
        let fop = suite::by_name("fop").expect("in suite");
        let stats = characterize(&fop, &CharacterizeConfig::default()).unwrap();
        assert!(
            stats.forced_c2_slowdown_pct > 800.0,
            "fop under -Xcomp: {stats:?}"
        );
        assert!(stats.interpreter_slowdown_pct < 60.0, "{stats:?}");

        let graphchi = suite::by_name("graphchi").expect("in suite");
        let stats = characterize(&graphchi, &CharacterizeConfig::default()).unwrap();
        assert!(
            (stats.interpreter_slowdown_pct - 323.0).abs() < 50.0,
            "graphchi under -Xint: {stats:?}"
        );
    }

    #[test]
    fn jme_is_insensitive_to_everything() {
        // §B.10: jme is "insensitive to frequency scaling, compiler or
        // interpreter choice" and the least GC-intensive workload.
        let jme = suite::by_name("jme").expect("in suite");
        let stats = characterize(&jme, &CharacterizeConfig::default()).unwrap();
        assert!(stats.freq_speedup_pct.abs() < 2.0, "{stats:?}");
        assert!(stats.heap_sensitivity_pct.abs() < 10.0, "{stats:?}");
        assert!(stats.gc_pause_pct_2x < 1.0, "{stats:?}");
    }

    #[test]
    fn leakage_measurement_tracks_glk() {
        // zxing: GLK 120 (largest in the suite); fop: GLK 0.
        let zxing = suite::by_name("zxing").expect("in suite");
        let stats = characterize(&zxing, &CharacterizeConfig::default()).unwrap();
        let leak = stats.leakage_pct.expect("zxing collects");
        assert!((80.0..160.0).contains(&leak), "zxing leak: {leak}");

        let fop = suite::by_name("fop").expect("in suite");
        let stats = characterize(&fop, &CharacterizeConfig::default()).unwrap();
        let leak = stats.leakage_pct.expect("fop collects");
        assert!(leak.abs() < 20.0, "fop should not leak: {leak}");
    }

    #[test]
    fn rank_agreement_of_identical_columns_is_one() {
        let a = [3.0, 1.0, 2.0, 5.0];
        assert!((rank_agreement(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!(rank_agreement(&a, &[1.0]).is_none());
    }
}
