//! Rank and score computation for nominal statistics.
//!
//! §5.1: "Each benchmark is scored out of ten against each metric. The
//! score is a simple linear mapping of the benchmark's rank among all
//! benchmarks. 1 indicates the lowest ranked, while 10 indicates the
//! highest ranked." The appendix tables add: "the benchmark obtains a Rank
//! between 1 and the number of benchmarks having that metric (1 being the
//! largest)."

use super::dataset::{dataset, NominalRow};
use super::metric::{metric_index, MetricDef, METRICS};
use chopin_analysis::descriptive::Summary;
use serde::{Deserialize, Serialize};

/// One scored cell of an appendix table: a benchmark's value, rank, score
/// and the suite-wide min/median/max for the metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredMetric {
    /// The metric being scored.
    pub code: &'static str,
    /// The benchmark's concrete value.
    pub value: f64,
    /// Rank among benchmarks having this metric; 1 is the largest value.
    pub rank: usize,
    /// Number of benchmarks having this metric.
    pub of: usize,
    /// Score from 0 (smallest) to 10 (largest), linear in rank.
    pub score: u8,
    /// Smallest value across the suite.
    pub min: f64,
    /// Median value across the suite.
    pub median: f64,
    /// Largest value across the suite.
    pub max: f64,
}

/// Rank of `value` among `all` (competition ranking, 1 = largest).
fn rank_of(value: f64, all: &[f64]) -> usize {
    1 + all.iter().filter(|&&v| v > value).count()
}

/// Linear rank→score mapping onto 0..=10.
fn score_of(rank: usize, of: usize) -> u8 {
    if of <= 1 {
        return 10;
    }
    ((10.0 * (of - rank) as f64 / (of - 1) as f64).round() as i64).clamp(0, 10) as u8
}

/// The complete scored table for one benchmark — the reproduction of the
/// appendix's per-benchmark "Complete nominal statistics" tables (printed
/// by the suite's `-p` flag).
///
/// Returns `None` for an unknown benchmark.
///
/// # Examples
///
/// ```
/// use chopin_core::nominal::score_table;
///
/// let table = score_table("lusearch").expect("lusearch is in the suite");
/// let ara = table.iter().find(|s| s.code == "ARA").expect("ARA is scored");
/// // "the lusearch workload has a nominal allocation rate (ARA) of
/// //  23556 MB/sec ... This places it first in the suite, yielding a
/// //  score of 10." (§5.1)
/// assert_eq!(ara.rank, 1);
/// assert_eq!(ara.score, 10);
/// ```
pub fn score_table(benchmark: &str) -> Option<Vec<ScoredMetric>> {
    let rows = dataset();
    let row = rows.iter().find(|r| r.benchmark == benchmark)?;
    Some(score_row(row, &rows))
}

fn score_row(row: &NominalRow, rows: &[NominalRow]) -> Vec<ScoredMetric> {
    METRICS
        .iter()
        .enumerate()
        .filter_map(|(i, def): (usize, &MetricDef)| {
            let value = row.values[i]?;
            let all: Vec<f64> = rows.iter().filter_map(|r| r.values[i]).collect();
            let summary = Summary::of(&all).ok()?;
            let rank = rank_of(value, &all);
            Some(ScoredMetric {
                code: def.code,
                value,
                rank,
                of: all.len(),
                score: score_of(rank, all.len()),
                min: summary.min,
                median: summary.median,
                max: summary.max,
            })
        })
        .collect()
}

/// Ranks for one metric across the whole suite, sorted by rank
/// (1 = largest value first).
pub fn metric_ranking(code: &str) -> Option<Vec<(&'static str, f64, usize)>> {
    let i = metric_index(code)?;
    let rows = dataset();
    let all: Vec<f64> = rows.iter().filter_map(|r| r.values[i]).collect();
    let mut ranking: Vec<(&'static str, f64, usize)> = rows
        .iter()
        .filter_map(|r| {
            let v = r.values[i]?;
            Some((r.benchmark, v, rank_of(v, &all)))
        })
        .collect();
    ranking.sort_by_key(|(_, _, rank)| *rank);
    Some(ranking)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_one_is_largest() {
        let all = [3.0, 1.0, 2.0];
        assert_eq!(rank_of(3.0, &all), 1);
        assert_eq!(rank_of(1.0, &all), 3);
    }

    #[test]
    fn ties_share_rank() {
        let all = [5.0, 5.0, 1.0];
        assert_eq!(rank_of(5.0, &all), 1);
        assert_eq!(rank_of(1.0, &all), 3);
    }

    #[test]
    fn score_endpoints() {
        assert_eq!(score_of(1, 22), 10);
        assert_eq!(score_of(22, 22), 0);
        assert_eq!(score_of(1, 1), 10);
    }

    #[test]
    fn lusearch_ara_is_rank_one_score_ten() {
        let t = score_table("lusearch").unwrap();
        let ara = t.iter().find(|s| s.code == "ARA").unwrap();
        assert_eq!(ara.value, 23556.0);
        assert_eq!(ara.rank, 1);
        assert_eq!(ara.score, 10);
        assert_eq!(ara.of, 22);
        assert_eq!(ara.max, 23556.0);
    }

    #[test]
    fn avrora_has_lowest_gmd() {
        // "the minimum heap sizes range from 5 MB (avrora) to 681 MB (h2)".
        let t = score_table("avrora").unwrap();
        let gmd = t.iter().find(|s| s.code == "GMD").unwrap();
        assert_eq!(gmd.rank, 22);
        assert_eq!(gmd.score, 0);
        assert_eq!(gmd.min, 5.0);
        assert_eq!(gmd.max, 681.0);
        let h2 = score_table("h2").unwrap();
        assert_eq!(h2.iter().find(|s| s.code == "GMD").unwrap().rank, 1);
    }

    #[test]
    fn gmv_is_scored_only_for_h2() {
        let h2 = score_table("h2").unwrap();
        let gmv = h2.iter().find(|s| s.code == "GMV").unwrap();
        assert_eq!(gmv.of, 1);
        assert_eq!(gmv.score, 10);
        let avrora = score_table("avrora").unwrap();
        assert!(avrora.iter().all(|s| s.code != "GMV"));
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(score_table("renaissance").is_none());
    }

    #[test]
    fn metric_ranking_is_sorted_and_complete() {
        let ranking = metric_ranking("ARA").unwrap();
        assert_eq!(ranking.len(), 22);
        assert_eq!(ranking[0].0, "lusearch");
        assert!(ranking.windows(2).all(|w| w[0].2 <= w[1].2));
        assert!(metric_ranking("XXX").is_none());
    }

    #[test]
    fn scores_are_antitone_in_rank() {
        for code in ["ARA", "GMD", "UIP", "USF"] {
            let ranking = metric_ranking(code).unwrap();
            let n = ranking.len();
            let scores: Vec<u8> = ranking
                .iter()
                .map(|(_, _, rank)| score_of(*rank, n))
                .collect();
            assert!(
                scores.windows(2).all(|w| w[0] >= w[1]),
                "{code}: {scores:?}"
            );
        }
    }
}
