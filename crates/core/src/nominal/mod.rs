//! Nominal statistics (§5.1) and the principal components analysis built
//! on them (§5.2).
//!
//! "DaCapo Chopin comes with a large and diverse set of precomputed
//! analyses and statistics ... included as part of the suite because they
//! are methodologically and computationally non-trivial to calculate, yet
//! provide considerable insight into how each of the benchmarks behave."
//! The word *nominal* is used "in the sense of 'being, or relating to a
//! designated or theoretical size that may vary from the actual'".
//!
//! * [`metric`] — the Table 1 metric definitions.
//! * [`mod@dataset`] — the per-benchmark values (appendix tables / Table 2).
//! * [`score`] — the rank → score(0–10) machinery of the appendix tables.
//! * [`suite_pca`] — the Figure 4 analysis.

pub mod dataset;
pub mod metric;
pub mod score;

pub use dataset::{complete_matrix, complete_metrics, dataset, row, NominalRow, RowProvenance};
pub use metric::{metric_index, MetricDef, MetricGroup, METRICS, TABLE2_METRICS};
pub use score::{metric_ranking, score_table, ScoredMetric};

use chopin_analysis::pca::Pca;
use chopin_analysis::AnalysisError;

/// The suite-wide PCA of Figure 4: standard-scaled raw values of the
/// complete nominal metrics, one observation per benchmark.
///
/// Returns the benchmark names (row order of [`Pca::scores`]), the metric
/// codes (variable order of the loadings) and the fitted model.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the PCA fit (cannot occur for the
/// stock dataset, which is validated by tests).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// let (benchmarks, _metrics, pca) = chopin_core::nominal::suite_pca()?;
/// assert_eq!(benchmarks.len(), 22);
/// // "Together, these four principal components account for over 50% of
/// //  the variance between benchmarks." (§5.2)
/// assert!(pca.cumulative_explained_variance(4) > 0.5);
/// # Ok(())
/// # }
/// ```
pub fn suite_pca() -> Result<(Vec<&'static str>, Vec<&'static str>, Pca), AnalysisError> {
    let (benchmarks, metrics, matrix) = complete_matrix();
    let pca = Pca::fit(&matrix)?;
    Ok((benchmarks, metrics, pca))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pca_reproduces_figure_4_shape() {
        let (benchmarks, metrics, pca) = suite_pca().unwrap();
        assert_eq!(benchmarks.len(), 22);
        assert!(metrics.len() >= 33);
        let ratios = pca.explained_variance_ratio();
        // PC1 explains the most, and no single component dominates (the
        // paper reports 18/16/14/11% for PC1–PC4).
        assert!(ratios[0] > ratios[1]);
        assert!(ratios[0] < 0.5, "diverse suite: PC1 = {}", ratios[0]);
        assert!(pca.cumulative_explained_variance(4) > 0.5);
    }

    #[test]
    fn pca_scores_spread_benchmarks() {
        // Diversity: the per-benchmark projections onto PC1/PC2 are not
        // clustered at a point.
        let (_, _, pca) = suite_pca().unwrap();
        let pc1: Vec<f64> = pca.scores().iter().map(|r| r[0]).collect();
        let spread = pc1.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - pc1.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 2.0, "PC1 spread {spread}");
    }

    #[test]
    fn determinant_metrics_overlap_table2() {
        // The PCA-derived most-determinant set should recover a healthy
        // share of the paper's Table 2 selection.
        let (_, metrics, pca) = suite_pca().unwrap();
        let top = pca.most_determinant_variables(12, 4);
        let top_codes: Vec<&str> = top.iter().map(|&i| metrics[i]).collect();
        let overlap = top_codes
            .iter()
            .filter(|c| TABLE2_METRICS.contains(c))
            .count();
        assert!(
            overlap >= 3,
            "expected overlap with Table 2, got {overlap}: {top_codes:?}"
        );
    }
}
