//! The nominal-statistics dataset: per-benchmark values for every metric
//! of Table 1, transcribed from the paper's appendix tables (the "Value"
//! column of Tables 3–19) and from Table 2.
//!
//! Six rows are partially estimated: sunflow's appendix table is truncated
//! mid-way in our source text, and tomcat, tradebeans, tradesoap, xalan and
//! zxing lack appendix pages entirely — for those, the twelve Table 2
//! metrics are exact and the remainder are estimates informed by the
//! paper's prose (e.g. §6.4's xalan discussion). See DESIGN.md, D4.

use super::metric::{metric_index, METRICS};
use serde::{Deserialize, Serialize};

/// Number of metrics (columns) in the dataset.
pub const METRIC_COUNT: usize = METRICS.len();

/// Whether a row's values are fully published or partially estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowProvenance {
    /// Every cell comes from the paper's appendix tables.
    Published,
    /// Table 2 cells are published; other cells are estimates.
    PartiallyEstimated,
}

/// One benchmark's nominal-statistic values, aligned with
/// [`super::metric::METRICS`].
#[derive(Debug, Clone, PartialEq)]
pub struct NominalRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Data provenance for the row.
    pub provenance: RowProvenance,
    /// One value per metric; `None` where the metric does not apply (e.g.
    /// GML for workloads without a large configuration).
    pub values: [Option<f64>; METRIC_COUNT],
}

impl NominalRow {
    /// The value of the metric with the given code, if present.
    pub fn value(&self, code: &str) -> Option<f64> {
        self.values[metric_index(code)?]
    }
}

/// The dataset: one row per benchmark, in suite (alphabetical) order.
pub fn dataset() -> Vec<NominalRow> {
    DATASET.to_vec()
}

/// Look up one benchmark's row.
pub fn row(benchmark: &str) -> Option<NominalRow> {
    DATASET.iter().find(|r| r.benchmark == benchmark).cloned()
}

/// The metric codes for which **every** benchmark has a value — the
/// complete columns PCA operates on (§5.2 uses "the 33 nominal metrics
/// where all benchmarks have data points"; our dataset's completeness
/// differs slightly because estimated rows fill some gaps).
pub fn complete_metrics() -> Vec<&'static str> {
    (0..METRICS.len())
        .filter(|&i| DATASET.iter().all(|r| r.values[i].is_some()))
        .map(|i| METRICS[i].code)
        .collect()
}

/// The data matrix over the complete metrics: one row per benchmark, one
/// column per metric returned by [`complete_metrics`], raw values.
pub fn complete_matrix() -> (Vec<&'static str>, Vec<&'static str>, Vec<Vec<f64>>) {
    let metrics = complete_metrics();
    let idx: Vec<usize> = metrics.iter().map(|c| metric_index(c).expect("known")).collect();
    let benchmarks: Vec<&'static str> = DATASET.iter().map(|r| r.benchmark).collect();
    let matrix = DATASET
        .iter()
        .map(|r| idx.iter().map(|&i| r.values[i].expect("complete")).collect())
        .collect();
    (benchmarks, metrics, matrix)
}

static DATASET: [NominalRow; 22] = [
    NominalRow {
        benchmark: "avrora",
        provenance: RowProvenance::Published,
        values: [Some(34.0), Some(32.0), Some(32.0), Some(24.0), Some(56.0), Some(31.0), Some(0.0), Some(5.0), Some(692.0), Some(206.0), Some(33.0), Some(4.0), Some(80.0), Some(551.0), Some(80.0), Some(1.0), Some(0.0), Some(5.0), Some(15.0), Some(5.0), Some(7.0), None, Some(18.0), Some(33.0), Some(83.0), Some(7.0), Some(4.0), Some(18.0), Some(7.0), Some(56.0), Some(2.0), Some(6.0), Some(3.0), Some(4.0), Some(2.0), Some(53.0), Some(-19.0), Some(23.0), Some(19.0), Some(164.0), Some(20.0), Some(18.0), Some(131.0), Some(113.0), Some(3398.0), Some(26.0), Some(7.0), Some(51.0)],
    },
    NominalRow {
        benchmark: "batik",
        provenance: RowProvenance::Published,
        values: [Some(58.0), Some(72.0), Some(32.0), Some(24.0), Some(506.0), Some(41.0), Some(0.0), Some(4.0), Some(126.0), Some(28.0), Some(32.0), Some(4.0), Some(121.0), Some(111.0), Some(132.0), Some(9.0), Some(0.0), Some(175.0), Some(1759.0), Some(19.0), Some(229.0), None, Some(40.0), Some(3.0), Some(306.0), Some(24.0), Some(2.0), Some(20.0), Some(24.0), Some(0.0), Some(0.0), Some(2.0), Some(4.0), Some(1.0), Some(4.0), Some(80.0), Some(25.0), Some(37.0), Some(52.0), Some(2388.0), Some(55.0), Some(4.0), Some(50.0), Some(228.0), Some(1872.0), Some(46.0), Some(16.0), Some(10.0)],
    },
    NominalRow {
        benchmark: "biojava",
        provenance: RowProvenance::Published,
        values: [Some(28.0), Some(24.0), Some(24.0), Some(24.0), Some(2041.0), Some(0.0), Some(0.0), Some(28.0), Some(171.0), Some(2.0), Some(18.0), Some(2.0), Some(106.0), Some(2172.0), Some(98.0), Some(1.0), Some(0.0), Some(93.0), Some(1027.0), Some(7.0), Some(183.0), None, Some(7107.0), Some(102.0), Some(224.0), Some(106.0), Some(5.0), Some(19.0), Some(106.0), Some(1.0), Some(1.0), Some(0.0), Some(5.0), Some(0.0), Some(1.0), Some(121.0), Some(14.0), Some(15.0), Some(29.0), Some(3487.0), Some(33.0), Some(2.0), Some(30.0), Some(476.0), Some(1427.0), Some(19.0), Some(41.0), Some(6.0)],
    },
    NominalRow {
        benchmark: "cassandra",
        provenance: RowProvenance::Published,
        values: [Some(40.0), Some(56.0), Some(32.0), Some(24.0), Some(890.0), Some(9.0), Some(1.0), Some(3.0), Some(314.0), Some(57.0), Some(114.0), Some(18.0), Some(103.0), Some(659.0), Some(101.0), Some(1.0), Some(46.0), Some(174.0), Some(174.0), Some(77.0), Some(142.0), None, Some(14.0), Some(34.0), Some(60.0), Some(31.0), Some(6.0), Some(2.0), Some(31.0), Some(11.0), Some(3.0), Some(2.0), Some(13.0), Some(0.0), Some(2.0), Some(168.0), Some(-9.0), Some(26.0), Some(37.0), Some(619.0), Some(38.0), Some(24.0), Some(576.0), Some(108.0), Some(5719.0), Some(29.0), Some(92.0), Some(40.0)],
    },
    NominalRow {
        benchmark: "eclipse",
        provenance: RowProvenance::Published,
        values: [Some(84.0), Some(88.0), Some(32.0), Some(24.0), Some(1043.0), Some(0.0), Some(0.0), Some(29.0), Some(0.0), Some(0.0), Some(1.0), Some(0.0), Some(83.0), Some(997.0), Some(77.0), Some(2.0), Some(1.0), Some(135.0), Some(139.0), Some(13.0), Some(167.0), None, Some(16.0), Some(52.0), Some(349.0), Some(224.0), Some(8.0), Some(18.0), Some(224.0), Some(6.0), Some(23.0), Some(5.0), Some(5.0), Some(0.0), Some(3.0), Some(92.0), Some(36.0), Some(25.0), Some(97.0), Some(994.0), Some(98.0), Some(11.0), Some(283.0), Some(178.0), Some(3108.0), Some(29.0), Some(30.0), Some(30.0)],
    },
    NominalRow {
        benchmark: "fop",
        provenance: RowProvenance::Published,
        values: [Some(58.0), Some(56.0), Some(32.0), Some(24.0), Some(3340.0), Some(34.0), Some(6.0), Some(1.0), Some(527.0), Some(95.0), Some(177.0), Some(26.0), Some(107.0), Some(841.0), Some(107.0), Some(23.0), Some(0.0), Some(13.0), None, Some(9.0), Some(17.0), None, Some(755.0), Some(75.0), Some(1083.0), Some(23.0), Some(1.0), Some(13.0), Some(23.0), Some(2.0), Some(37.0), Some(12.0), Some(9.0), Some(0.0), Some(8.0), Some(76.0), Some(35.0), Some(21.0), Some(134.0), Some(2653.0), Some(137.0), Some(14.0), Some(174.0), Some(181.0), Some(2138.0), Some(25.0), Some(19.0), Some(32.0)],
    },
    NominalRow {
        benchmark: "graphchi",
        provenance: RowProvenance::Published,
        values: [Some(110.0), Some(160.0), Some(24.0), Some(16.0), Some(2737.0), Some(2204.0), Some(1.0), Some(12.0), Some(9217.0), Some(43.0), Some(8.0), Some(1.0), Some(113.0), Some(1262.0), Some(108.0), Some(2.0), Some(0.0), Some(175.0), Some(1183.0), Some(141.0), Some(179.0), None, Some(382.0), Some(38.0), Some(276.0), Some(323.0), Some(3.0), Some(14.0), Some(323.0), Some(1.0), Some(5.0), Some(10.0), Some(9.0), Some(1.0), Some(2.0), Some(112.0), Some(35.0), Some(19.0), Some(5.0), Some(704.0), Some(5.0), Some(3.0), Some(45.0), Some(234.0), Some(1746.0), Some(38.0), Some(192.0), Some(4.0)],
    },
    NominalRow {
        benchmark: "h2",
        provenance: RowProvenance::Published,
        values: [Some(41.0), Some(64.0), Some(32.0), Some(24.0), Some(11858.0), Some(234.0), Some(28.0), Some(7.0), Some(3677.0), Some(601.0), Some(17.0), Some(2.0), Some(98.0), Some(552.0), Some(82.0), Some(4.0), Some(0.0), Some(681.0), Some(10201.0), Some(69.0), Some(903.0), Some(20641.0), Some(38.0), Some(30.0), Some(87.0), Some(55.0), Some(2.0), Some(5.0), Some(55.0), Some(0.0), Some(31.0), Some(40.0), Some(24.0), Some(1.0), Some(2.0), Some(127.0), Some(24.0), Some(40.0), Some(29.0), Some(920.0), Some(30.0), Some(16.0), Some(476.0), Some(135.0), Some(4315.0), Some(43.0), Some(140.0), Some(17.0)],
    },
    NominalRow {
        benchmark: "h2o",
        provenance: RowProvenance::Published,
        values: [Some(142.0), Some(152.0), Some(24.0), Some(16.0), Some(5740.0), Some(231.0), Some(31.0), Some(6.0), Some(3002.0), Some(142.0), Some(87.0), Some(11.0), Some(112.0), Some(5118.0), Some(111.0), Some(12.0), Some(17.0), Some(72.0), Some(2543.0), Some(29.0), Some(73.0), None, Some(249.0), Some(187.0), Some(207.0), Some(57.0), Some(3.0), Some(9.0), Some(57.0), Some(4.0), Some(11.0), Some(21.0), Some(4.0), Some(2.0), Some(4.0), Some(102.0), Some(32.0), Some(41.0), Some(29.0), Some(1126.0), Some(30.0), Some(23.0), Some(499.0), Some(89.0), Some(8506.0), Some(53.0), Some(102.0), Some(18.0)],
    },
    NominalRow {
        benchmark: "jme",
        provenance: RowProvenance::Published,
        values: [Some(42.0), Some(56.0), Some(24.0), Some(24.0), Some(54.0), Some(0.0), Some(0.0), Some(4.0), Some(26.0), Some(10.0), Some(34.0), Some(4.0), Some(24.0), Some(31.0), Some(24.0), Some(0.0), Some(0.0), Some(29.0), Some(29.0), Some(29.0), Some(29.0), None, Some(0.0), Some(12.0), Some(72.0), Some(1.0), Some(7.0), Some(0.0), Some(1.0), Some(8.0), Some(0.0), Some(0.0), Some(3.0), Some(0.0), Some(1.0), Some(2.0), Some(1.0), Some(19.0), Some(89.0), Some(1226.0), Some(90.0), Some(11.0), Some(96.0), Some(204.0), Some(1558.0), Some(27.0), Some(1.0), Some(32.0)],
    },
    NominalRow {
        benchmark: "jython",
        provenance: RowProvenance::Published,
        values: [Some(37.0), Some(48.0), Some(32.0), Some(16.0), Some(1462.0), Some(39.0), Some(13.0), Some(8.0), Some(256.0), Some(83.0), Some(149.0), Some(29.0), Some(104.0), Some(3457.0), Some(100.0), Some(7.0), Some(0.0), Some(25.0), Some(25.0), Some(25.0), Some(31.0), None, Some(2024.0), Some(139.0), Some(211.0), Some(277.0), Some(3.0), Some(20.0), Some(277.0), Some(1.0), Some(1.0), Some(0.0), Some(5.0), Some(1.0), Some(9.0), Some(102.0), Some(32.0), Some(17.0), Some(85.0), Some(1105.0), Some(86.0), Some(9.0), Some(78.0), Some(268.0), Some(1160.0), Some(20.0), Some(35.0), Some(21.0)],
    },
    NominalRow {
        benchmark: "kafka",
        provenance: RowProvenance::Published,
        values: [Some(54.0), Some(56.0), Some(32.0), Some(16.0), Some(803.0), Some(1.0), Some(0.0), Some(1.0), Some(183.0), Some(55.0), Some(159.0), Some(28.0), Some(86.0), Some(221.0), Some(86.0), Some(0.0), Some(0.0), Some(201.0), Some(345.0), Some(157.0), Some(208.0), None, Some(0.0), Some(19.0), Some(255.0), Some(34.0), Some(6.0), Some(1.0), Some(34.0), Some(25.0), Some(0.0), Some(0.0), Some(3.0), Some(1.0), Some(3.0), Some(19.0), Some(13.0), Some(26.0), Some(30.0), Some(547.0), Some(31.0), Some(27.0), Some(230.0), Some(127.0), Some(6819.0), Some(30.0), Some(20.0), Some(43.0)],
    },
    NominalRow {
        benchmark: "luindex",
        provenance: RowProvenance::Published,
        values: [Some(211.0), Some(88.0), Some(32.0), Some(24.0), Some(841.0), Some(33.0), Some(1.0), Some(3.0), Some(1179.0), Some(306.0), Some(54.0), Some(5.0), Some(93.0), Some(1459.0), Some(100.0), Some(1.0), Some(0.0), Some(29.0), Some(37.0), Some(13.0), Some(31.0), None, Some(56.0), Some(76.0), Some(201.0), Some(61.0), Some(3.0), Some(18.0), Some(61.0), Some(2.0), Some(38.0), Some(2.0), Some(3.0), Some(1.0), Some(2.0), Some(90.0), Some(25.0), Some(31.0), Some(109.0), Some(3280.0), Some(112.0), Some(6.0), Some(66.0), Some(263.0), Some(930.0), Some(36.0), Some(4.0), Some(12.0)],
    },
    NominalRow {
        benchmark: "lusearch",
        provenance: RowProvenance::Published,
        values: [Some(75.0), Some(88.0), Some(24.0), Some(24.0), Some(23556.0), Some(252.0), Some(126.0), Some(5.0), Some(12289.0), Some(3863.0), Some(26.0), Some(3.0), Some(89.0), Some(22408.0), Some(84.0), Some(32.0), Some(0.0), Some(19.0), Some(109.0), Some(5.0), Some(21.0), None, Some(2159.0), Some(1211.0), Some(172.0), Some(202.0), Some(2.0), Some(11.0), Some(202.0), Some(7.0), Some(19.0), Some(9.0), Some(34.0), Some(3.0), Some(8.0), Some(87.0), Some(56.0), Some(20.0), Some(40.0), Some(596.0), Some(41.0), Some(12.0), Some(154.0), Some(149.0), Some(2830.0), Some(29.0), Some(198.0), Some(23.0)],
    },
    NominalRow {
        benchmark: "pmd",
        provenance: RowProvenance::Published,
        values: [Some(32.0), Some(48.0), Some(24.0), Some(16.0), Some(6721.0), Some(82.0), Some(1.0), Some(4.0), Some(1719.0), Some(583.0), Some(95.0), Some(15.0), Some(133.0), Some(781.0), Some(144.0), Some(16.0), Some(5.0), Some(191.0), Some(3519.0), Some(7.0), Some(269.0), None, Some(467.0), Some(32.0), Some(179.0), Some(74.0), Some(1.0), Some(11.0), Some(74.0), Some(1.0), Some(31.0), Some(19.0), Some(10.0), Some(1.0), Some(7.0), Some(112.0), Some(47.0), Some(35.0), Some(38.0), Some(1295.0), Some(39.0), Some(16.0), Some(258.0), Some(109.0), Some(4478.0), Some(40.0), Some(155.0), Some(21.0)],
    },
    NominalRow {
        benchmark: "spring",
        provenance: RowProvenance::Published,
        values: [Some(70.0), Some(200.0), Some(32.0), Some(24.0), Some(10849.0), Some(11.0), Some(2.0), Some(2.0), Some(395.0), Some(94.0), Some(170.0), Some(26.0), Some(94.0), Some(2770.0), Some(83.0), Some(12.0), Some(0.0), Some(55.0), Some(65.0), Some(43.0), Some(70.0), None, Some(397.0), Some(283.0), Some(162.0), Some(110.0), Some(2.0), Some(8.0), Some(110.0), Some(7.0), Some(6.0), Some(20.0), Some(36.0), Some(1.0), Some(2.0), Some(87.0), Some(30.0), Some(28.0), Some(60.0), Some(1475.0), Some(61.0), Some(13.0), Some(392.0), Some(122.0), Some(4264.0), Some(32.0), Some(100.0), Some(32.0)],
    },
    NominalRow {
        benchmark: "sunflow",
        provenance: RowProvenance::PartiallyEstimated,
        values: [Some(40.0), Some(48.0), Some(48.0), Some(24.0), Some(10518.0), Some(2204.0), Some(2.0), Some(3.0), Some(32087.0), Some(3200.0), Some(20.0), Some(1.0), Some(113.0), Some(14139.0), Some(113.0), Some(20.0), Some(0.0), Some(29.0), Some(149.0), Some(5.0), Some(31.0), None, Some(6329.0), Some(711.0), Some(200.0), Some(150.0), Some(3.0), Some(16.0), Some(150.0), Some(1.0), Some(-2.0), Some(5.0), Some(87.0), Some(13.0), Some(6.0), Some(98.0), Some(19.0), Some(23.0), Some(21.0), Some(2380.0), Some(24.0), Some(8.0), Some(100.0), Some(180.0), Some(2000.0), Some(45.0), Some(250.0), Some(5.0)],
    },
    NominalRow {
        benchmark: "tomcat",
        provenance: RowProvenance::PartiallyEstimated,
        values: [Some(48.0), Some(56.0), Some(32.0), Some(24.0), Some(2000.0), Some(5.0), Some(1.0), Some(2.0), Some(300.0), Some(60.0), Some(120.0), Some(20.0), Some(100.0), Some(800.0), Some(100.0), Some(2.0), Some(0.0), Some(19.0), None, Some(12.0), Some(24.0), None, Some(50.0), Some(90.0), Some(200.0), Some(60.0), Some(4.0), Some(2.0), Some(60.0), Some(19.0), Some(3.0), Some(2.0), Some(20.0), Some(1.0), Some(2.0), Some(14.0), Some(4.0), Some(25.0), Some(44.0), Some(584.0), Some(45.0), Some(15.0), Some(250.0), Some(120.0), Some(4000.0), Some(30.0), Some(60.0), Some(45.0)],
    },
    NominalRow {
        benchmark: "tradebeans",
        provenance: RowProvenance::PartiallyEstimated,
        values: [Some(40.0), Some(56.0), Some(32.0), Some(24.0), Some(1500.0), Some(10.0), Some(1.0), Some(3.0), Some(400.0), Some(80.0), Some(100.0), Some(15.0), Some(100.0), Some(600.0), Some(100.0), Some(2.0), Some(26.0), Some(113.0), None, Some(60.0), Some(141.0), None, Some(100.0), Some(60.0), Some(250.0), Some(80.0), Some(1.0), Some(17.0), Some(80.0), Some(2.0), Some(8.0), Some(5.0), Some(12.0), Some(1.0), Some(6.0), Some(144.0), Some(42.0), Some(28.0), Some(38.0), Some(1187.0), Some(39.0), Some(12.0), Some(300.0), Some(130.0), Some(3500.0), Some(32.0), Some(80.0), Some(38.0)],
    },
    NominalRow {
        benchmark: "tradesoap",
        provenance: RowProvenance::PartiallyEstimated,
        values: [Some(40.0), Some(56.0), Some(32.0), Some(24.0), Some(1200.0), Some(10.0), Some(1.0), Some(2.0), Some(350.0), Some(70.0), Some(110.0), Some(18.0), Some(100.0), Some(500.0), Some(100.0), Some(2.0), Some(6.0), Some(92.0), None, Some(50.0), Some(115.0), None, Some(100.0), Some(60.0), Some(260.0), Some(90.0), Some(1.0), Some(16.0), Some(90.0), Some(2.0), Some(8.0), Some(5.0), Some(12.0), Some(1.0), Some(5.0), Some(147.0), Some(34.0), Some(28.0), Some(73.0), Some(1087.0), Some(74.0), Some(12.0), Some(300.0), Some(125.0), Some(3500.0), Some(32.0), Some(80.0), Some(35.0)],
    },
    NominalRow {
        benchmark: "xalan",
        provenance: RowProvenance::PartiallyEstimated,
        values: [Some(32.0), Some(48.0), Some(24.0), Some(16.0), Some(9000.0), Some(100.0), Some(5.0), Some(4.0), Some(2000.0), Some(500.0), Some(60.0), Some(8.0), Some(100.0), Some(5000.0), Some(100.0), Some(10.0), Some(7.0), Some(14.0), None, Some(7.0), Some(17.0), None, Some(800.0), Some(300.0), Some(180.0), Some(100.0), Some(1.0), Some(12.0), Some(100.0), Some(14.0), Some(25.0), Some(15.0), Some(45.0), Some(1.0), Some(1.0), Some(101.0), Some(13.0), Some(35.0), Some(39.0), Some(785.0), Some(39.0), Some(22.0), Some(450.0), Some(94.0), Some(6000.0), Some(45.0), Some(150.0), Some(36.0)],
    },
    NominalRow {
        benchmark: "zxing",
        provenance: RowProvenance::PartiallyEstimated,
        values: [Some(60.0), Some(72.0), Some(32.0), Some(24.0), Some(2500.0), Some(50.0), Some(2.0), Some(5.0), Some(800.0), Some(150.0), Some(70.0), Some(10.0), Some(105.0), Some(700.0), Some(105.0), Some(3.0), Some(120.0), Some(102.0), None, Some(50.0), Some(127.0), None, Some(60.0), Some(40.0), Some(220.0), Some(70.0), Some(1.0), Some(-1.0), Some(70.0), Some(5.0), Some(10.0), Some(8.0), Some(25.0), Some(1.0), Some(7.0), Some(77.0), Some(42.0), Some(25.0), Some(52.0), Some(374.0), Some(52.0), Some(14.0), Some(200.0), Some(140.0), Some(3000.0), Some(33.0), Some(90.0), Some(18.0)],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_benchmark_in_suite_order() {
        let names: Vec<&str> = DATASET.iter().map(|r| r.benchmark).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn lookup_by_code_matches_position() {
        let avrora = row("avrora").unwrap();
        assert_eq!(avrora.value("ARA"), Some(56.0));
        assert_eq!(avrora.value("PKP"), Some(56.0));
        assert_eq!(avrora.value("GMV"), None, "only h2 has a vlarge heap");
        assert_eq!(row("h2").unwrap().value("GMV"), Some(20641.0));
        assert!(row("nope").is_none());
    }

    #[test]
    fn table2_values_match_published_numbers() {
        // Spot-check Table 2 cells across published and estimated rows.
        assert_eq!(row("cassandra").unwrap().value("GLK"), Some(46.0));
        assert_eq!(row("zxing").unwrap().value("GLK"), Some(120.0));
        assert_eq!(row("avrora").unwrap().value("UAI"), Some(-19.0));
        assert_eq!(row("biojava").unwrap().value("UBR"), Some(3487.0));
        assert_eq!(row("tomcat").unwrap().value("USF"), Some(45.0));
        assert_eq!(row("tradesoap").unwrap().value("UAA"), Some(147.0));
        assert_eq!(row("xalan").unwrap().value("PKP"), Some(14.0));
    }

    #[test]
    fn complete_metrics_cover_most_of_the_table() {
        let complete = complete_metrics();
        assert!(complete.len() >= 33, "at least the paper's 33: {}", complete.len());
        assert!(!complete.contains(&"GML"));
        assert!(!complete.contains(&"GMV"));
        assert!(complete.contains(&"ARA"));
    }

    #[test]
    fn complete_matrix_is_rectangular() {
        let (benchmarks, metrics, matrix) = complete_matrix();
        assert_eq!(benchmarks.len(), 22);
        assert_eq!(matrix.len(), 22);
        assert!(matrix.iter().all(|r| r.len() == metrics.len()));
    }

    #[test]
    fn consistency_with_workload_profiles() {
        // The dataset's GMD/GMU/PET/ARA agree with the calibrated profiles.
        for p in chopin_workloads::suite::all() {
            let r = row(p.name).unwrap();
            assert_eq!(r.value("GMD"), Some(p.min_heap_default_mb), "{}", p.name);
            assert_eq!(r.value("GMU"), Some(p.min_heap_uncompressed_mb), "{}", p.name);
            assert_eq!(r.value("PET"), Some(p.exec_time_s), "{}", p.name);
            assert_eq!(r.value("ARA"), Some(p.alloc_rate_mb_s), "{}", p.name);
        }
    }
}
