//! The nominal-statistic metric definitions (Table 1).
//!
//! "We characterize each benchmark in the DaCapo Chopin suite across at
//! least 35 dimensions" (§5.1), using metrics grouped by the first letter
//! of their three-letter acronym: Allocation, Bytecode, Garbage collection,
//! Performance, and U(µ)-architecture. Table 1 lists the full set (its
//! caption counts 47; the table body enumerates the 48 codes reproduced
//! here — GMV exists only for h2, which likely accounts for the
//! difference).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five metric groups of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricGroup {
    /// A — allocation behaviour, from bytecode-instrumented runs.
    Allocation,
    /// B — bytecode execution profile.
    Bytecode,
    /// G — garbage collection and heap behaviour.
    GarbageCollection,
    /// P — end-to-end performance under varied configurations.
    Performance,
    /// U — microarchitectural behaviour from hardware counters.
    Microarchitecture,
}

impl fmt::Display for MetricGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MetricGroup::Allocation => "allocation",
            MetricGroup::Bytecode => "bytecode",
            MetricGroup::GarbageCollection => "garbage collection",
            MetricGroup::Performance => "performance",
            MetricGroup::Microarchitecture => "microarchitecture",
        };
        f.write_str(s)
    }
}

/// One nominal-statistic definition: code, group and Table 1 description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricDef {
    /// Three-letter acronym (e.g. "ARA").
    pub code: &'static str,
    /// The metric's group, per its first letter.
    pub group: MetricGroup,
    /// The description from Table 1.
    pub description: &'static str,
}

/// Every nominal statistic of Table 1, in table order.
pub const METRICS: [MetricDef; 48] = [
    MetricDef {
        code: "AOA",
        group: MetricGroup::Allocation,
        description: "nominal average object size (bytes)",
    },
    MetricDef {
        code: "AOL",
        group: MetricGroup::Allocation,
        description: "nominal 90-percentile object size (bytes)",
    },
    MetricDef {
        code: "AOM",
        group: MetricGroup::Allocation,
        description: "nominal median object size (bytes)",
    },
    MetricDef {
        code: "AOS",
        group: MetricGroup::Allocation,
        description: "nominal 10-percentile object size (bytes)",
    },
    MetricDef {
        code: "ARA",
        group: MetricGroup::Allocation,
        description: "nominal allocation rate (bytes / usec)",
    },
    MetricDef {
        code: "BAL",
        group: MetricGroup::Bytecode,
        description: "nominal aaload per usec",
    },
    MetricDef {
        code: "BAS",
        group: MetricGroup::Bytecode,
        description: "nominal aastore per usec",
    },
    MetricDef {
        code: "BEF",
        group: MetricGroup::Bytecode,
        description: "nominal execution focus / dominance of hot code",
    },
    MetricDef {
        code: "BGF",
        group: MetricGroup::Bytecode,
        description: "nominal getfield per usec",
    },
    MetricDef {
        code: "BPF",
        group: MetricGroup::Bytecode,
        description: "nominal putfield per usec",
    },
    MetricDef {
        code: "BUB",
        group: MetricGroup::Bytecode,
        description: "nominal thousands of unique bytecodes executed",
    },
    MetricDef {
        code: "BUF",
        group: MetricGroup::Bytecode,
        description: "nominal thousands of unique function calls executed",
    },
    MetricDef {
        code: "GCA",
        group: MetricGroup::GarbageCollection,
        description: "nominal average post-GC heap size as percent of min heap, when run at 2X min heap with G1",
    },
    MetricDef {
        code: "GCC",
        group: MetricGroup::GarbageCollection,
        description: "nominal GC count at 2X minimum heap size (G1)",
    },
    MetricDef {
        code: "GCM",
        group: MetricGroup::GarbageCollection,
        description: "nominal median post-GC heap size as percent of min heap, when run at 2X min heap with G1",
    },
    MetricDef {
        code: "GCP",
        group: MetricGroup::GarbageCollection,
        description: "nominal percentage of time spent in GC pauses at 2X minimum heap size (G1)",
    },
    MetricDef {
        code: "GLK",
        group: MetricGroup::GarbageCollection,
        description: "nominal percent 10th iteration memory leakage (10 iterations / 1 iterations)",
    },
    MetricDef {
        code: "GMD",
        group: MetricGroup::GarbageCollection,
        description: "nominal minimum heap size (MB) for default size configuration (with compressed pointers)",
    },
    MetricDef {
        code: "GML",
        group: MetricGroup::GarbageCollection,
        description: "nominal minimum heap size (MB) for large size configuration (with compressed pointers)",
    },
    MetricDef {
        code: "GMS",
        group: MetricGroup::GarbageCollection,
        description: "nominal minimum heap size (MB) for small size configuration (with compressed pointers)",
    },
    MetricDef {
        code: "GMU",
        group: MetricGroup::GarbageCollection,
        description: "nominal minimum heap size (MB) for default size without compressed pointers",
    },
    MetricDef {
        code: "GMV",
        group: MetricGroup::GarbageCollection,
        description: "nominal minimum heap size (MB) for vlarge size configuration (with compressed pointers)",
    },
    MetricDef {
        code: "GSS",
        group: MetricGroup::GarbageCollection,
        description: "nominal heap size sensitivity (slowdown with tight heap, as a percentage)",
    },
    MetricDef {
        code: "GTO",
        group: MetricGroup::GarbageCollection,
        description: "nominal memory turnover (total alloc bytes / min heap bytes)",
    },
    MetricDef {
        code: "PCC",
        group: MetricGroup::Performance,
        description: "nominal percentage slowdown due to forced c2 compilation compared to tiered baseline (compiler cost)",
    },
    MetricDef {
        code: "PCS",
        group: MetricGroup::Performance,
        description: "nominal percentage slowdown due to worst compiler configuration compared to best (sensitivity to compiler)",
    },
    MetricDef {
        code: "PET",
        group: MetricGroup::Performance,
        description: "nominal execution time (sec)",
    },
    MetricDef {
        code: "PFS",
        group: MetricGroup::Performance,
        description: "nominal percentage speedup due to enabling frequency scaling (CPU frequency sensitivity)",
    },
    MetricDef {
        code: "PIN",
        group: MetricGroup::Performance,
        description: "nominal percentage slowdown due to using the interpreter (sensitivity to interpreter)",
    },
    MetricDef {
        code: "PKP",
        group: MetricGroup::Performance,
        description: "nominal percentage of time spent in kernel mode (as percentage of user plus kernel time)",
    },
    MetricDef {
        code: "PLS",
        group: MetricGroup::Performance,
        description: "nominal percentage slowdown due to 1/16 reduction of LLC capacity (LLC sensitivity)",
    },
    MetricDef {
        code: "PMS",
        group: MetricGroup::Performance,
        description: "nominal percentage slowdown due to slower DRAM (memory speed sensitivity)",
    },
    MetricDef {
        code: "PPE",
        group: MetricGroup::Performance,
        description: "nominal parallel efficiency (speedup as percentage of ideal speedup for 32 threads)",
    },
    MetricDef {
        code: "PSD",
        group: MetricGroup::Performance,
        description: "nominal standard deviation among invocations at peak performance (as percentage of performance)",
    },
    MetricDef {
        code: "PWU",
        group: MetricGroup::Performance,
        description: "nominal iterations to warm up to within 1.5 % of best",
    },
    MetricDef {
        code: "UAA",
        group: MetricGroup::Microarchitecture,
        description: "nominal percentage change (slowdown) when running on ARM Neoverse N1 v AMD Zen 4 on a single core",
    },
    MetricDef {
        code: "UAI",
        group: MetricGroup::Microarchitecture,
        description: "nominal percentage change (slowdown) when running on Intel Golden Cove v AMD Zen 4 on a single core",
    },
    MetricDef {
        code: "UBM",
        group: MetricGroup::Microarchitecture,
        description: "nominal backend bound (memory)",
    },
    MetricDef {
        code: "UBP",
        group: MetricGroup::Microarchitecture,
        description: "nominal 1000 x bad speculation: mispredicts",
    },
    MetricDef {
        code: "UBR",
        group: MetricGroup::Microarchitecture,
        description: "nominal 1000000 x bad speculation: pipeline restarts",
    },
    MetricDef {
        code: "UBS",
        group: MetricGroup::Microarchitecture,
        description: "nominal 1000 x bad speculation",
    },
    MetricDef {
        code: "UDC",
        group: MetricGroup::Microarchitecture,
        description: "nominal data cache misses per K instructions",
    },
    MetricDef {
        code: "UDT",
        group: MetricGroup::Microarchitecture,
        description: "nominal DTLB misses per M instructions",
    },
    MetricDef {
        code: "UIP",
        group: MetricGroup::Microarchitecture,
        description: "nominal 100 x instructions per cycle (IPC)",
    },
    MetricDef {
        code: "ULL",
        group: MetricGroup::Microarchitecture,
        description: "nominal LLC misses per M instructions",
    },
    MetricDef {
        code: "USB",
        group: MetricGroup::Microarchitecture,
        description: "nominal 100 x back end bound",
    },
    MetricDef {
        code: "USC",
        group: MetricGroup::Microarchitecture,
        description: "nominal 1000 x SMT contention",
    },
    MetricDef {
        code: "USF",
        group: MetricGroup::Microarchitecture,
        description: "nominal 100 x front end bound",
    },
];

/// Index of a metric code within [`METRICS`], if it exists.
pub fn metric_index(code: &str) -> Option<usize> {
    METRICS.iter().position(|m| m.code == code)
}

/// The twelve most-determinant nominal statistics named by Table 2.
pub const TABLE2_METRICS: [&str; 12] = [
    "GLK", "GMU", "PET", "PFS", "PKP", "PWU", "UAA", "UAI", "UBP", "UBR", "UBS", "USF",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_match_first_letter() {
        for m in METRICS {
            let expect = match m.code.as_bytes()[0] {
                b'A' => MetricGroup::Allocation,
                b'B' => MetricGroup::Bytecode,
                b'G' => MetricGroup::GarbageCollection,
                b'P' => MetricGroup::Performance,
                b'U' => MetricGroup::Microarchitecture,
                _ => panic!("unexpected code {}", m.code),
            };
            assert_eq!(m.group, expect, "{}", m.code);
        }
    }

    #[test]
    fn codes_are_unique_three_letter_and_sorted() {
        let codes: Vec<&str> = METRICS.iter().map(|m| m.code).collect();
        assert!(codes.iter().all(|c| c.len() == 3));
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes.len(), sorted.len(), "codes are unique");
        assert_eq!(codes, sorted, "Table 1 lists codes alphabetically");
    }

    #[test]
    fn table2_metrics_exist() {
        for c in TABLE2_METRICS {
            assert!(metric_index(c).is_some(), "{c}");
        }
    }

    #[test]
    fn descriptions_are_nonempty() {
        assert!(METRICS.iter().all(|m| !m.description.is_empty()));
    }
}
