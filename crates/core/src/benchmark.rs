//! The suite registry and the benchmark runner.
//!
//! This is the user-facing entry point of the reproduction: look up a
//! benchmark in the [`Suite`], configure a run with the builder returned by
//! [`Benchmark::runner`] (collector, heap size in bytes or in multiples of
//! the nominal minimum heap, input size, iteration count), and execute it
//! on the simulated runtime. Defaults follow the paper's methodology
//! (§6.1): five iterations timing the last, a heap of 2 × GMD, and the
//! machine of §6.1.3.

use crate::iteration::{warmup_scale, IterationSet};
use chopin_faults::FaultPlan;
use chopin_runtime::collector::CollectorKind;
use chopin_runtime::config::{CompilerMode, RunConfig};
use chopin_runtime::machine::MachineConfig;
use chopin_runtime::result::RunError;
use chopin_runtime::time::SimDuration;
use chopin_workloads::{suite, SizeClass, WorkloadProfile};
use std::fmt;

/// Error raised when configuring a benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchmarkError {
    /// The requested size class is not provided by this workload.
    UnsupportedSize {
        /// The benchmark.
        benchmark: String,
        /// The requested size.
        size: SizeClass,
    },
    /// The underlying run failed (out of memory, thrash, bad config).
    Run(RunError),
    /// The profile produced an invalid mutator spec (calibration bug).
    Spec(String),
}

impl fmt::Display for BenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchmarkError::UnsupportedSize { benchmark, size } => {
                write!(f, "{benchmark} has no {size} size configuration")
            }
            BenchmarkError::Run(e) => write!(f, "run failed: {e}"),
            BenchmarkError::Spec(msg) => write!(f, "invalid workload spec: {msg}"),
        }
    }
}

impl std::error::Error for BenchmarkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchmarkError::Run(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RunError> for BenchmarkError {
    fn from(e: RunError) -> Self {
        BenchmarkError::Run(e)
    }
}

/// The DaCapo Chopin suite.
///
/// # Examples
///
/// ```
/// use chopin_core::Suite;
///
/// let suite = Suite::chopin();
/// assert_eq!(suite.len(), 22);
/// assert!(suite.benchmark("cassandra").is_some());
/// assert!(suite.benchmark("nonexistent").is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Suite {
    benchmarks: Vec<Benchmark>,
}

impl Suite {
    /// The full 22-benchmark Chopin suite.
    pub fn chopin() -> Suite {
        Suite {
            benchmarks: suite::all().into_iter().map(Benchmark::new).collect(),
        }
    }

    /// Number of benchmarks in the suite.
    pub fn len(&self) -> usize {
        self.benchmarks.len()
    }

    /// Whether the suite is empty (never, for the stock suite).
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }

    /// Iterate over the benchmarks in suite order.
    pub fn iter(&self) -> impl Iterator<Item = &Benchmark> {
        self.benchmarks.iter()
    }

    /// Look up a benchmark by name.
    pub fn benchmark(&self, name: &str) -> Option<&Benchmark> {
        self.benchmarks.iter().find(|b| b.name() == name)
    }

    /// The names of all benchmarks, in suite order.
    pub fn names(&self) -> Vec<&'static str> {
        self.benchmarks.iter().map(|b| b.profile().name).collect()
    }

    /// The nine latency-sensitive benchmarks.
    pub fn latency_sensitive(&self) -> impl Iterator<Item = &Benchmark> {
        self.benchmarks
            .iter()
            .filter(|b| b.profile().is_latency_sensitive())
    }
}

/// One benchmark of the suite: a profile plus run plumbing.
#[derive(Debug, Clone)]
pub struct Benchmark {
    profile: WorkloadProfile,
}

impl Benchmark {
    /// Wrap a workload profile as a runnable benchmark.
    pub fn new(profile: WorkloadProfile) -> Benchmark {
        Benchmark { profile }
    }

    /// The benchmark's name.
    pub fn name(&self) -> &str {
        self.profile.name
    }

    /// The calibrated workload profile (nominal statistics live in
    /// [`crate::nominal`]).
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The nominal minimum heap (GMD and friends) for `size`, in bytes.
    /// This is the denominator of recommendation H2's "heap sizes should be
    /// expressed in terms of multiples of the minimum heap size".
    pub fn nominal_min_heap(&self, size: SizeClass) -> Option<u64> {
        self.profile.min_heap_bytes(size)
    }

    /// Start configuring a run of this benchmark.
    pub fn runner(&self) -> BenchmarkRunner {
        BenchmarkRunner::new(self.profile.clone())
    }
}

/// Builder configuring and executing benchmark runs.
///
/// # Examples
///
/// ```
/// use chopin_core::Suite;
/// use chopin_runtime::collector::CollectorKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let suite = Suite::chopin();
/// let runs = suite
///     .benchmark("fop")
///     .expect("fop is in the suite")
///     .runner()
///     .collector(CollectorKind::Parallel)
///     .heap_factor(2.0)
///     .iterations(5)
///     .run()?;
/// // Per §6.1: five iterations, timing the last.
/// assert_eq!(runs.iterations().len(), 5);
/// assert!(runs.timed().wall_time().as_nanos() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BenchmarkRunner {
    profile: WorkloadProfile,
    collector: CollectorKind,
    size: SizeClass,
    heap_bytes: Option<u64>,
    heap_factor: f64,
    iterations: u32,
    seed: u64,
    machine: MachineConfig,
    noise_override: Option<f64>,
    compressed_oops: Option<bool>,
    compiler_mode: CompilerMode,
    fault_plan: Option<FaultPlan>,
}

impl BenchmarkRunner {
    /// Build a runner directly from a workload profile (equivalent to
    /// `Benchmark::new(profile).runner()`).
    pub fn for_profile(profile: WorkloadProfile) -> Self {
        Self::new(profile)
    }

    fn new(profile: WorkloadProfile) -> Self {
        BenchmarkRunner {
            profile,
            collector: CollectorKind::G1,
            size: SizeClass::Default,
            heap_bytes: None,
            heap_factor: 2.0,
            iterations: 5,
            seed: 1,
            machine: MachineConfig::default(),
            noise_override: None,
            compressed_oops: None,
            compiler_mode: CompilerMode::Tiered,
            fault_plan: None,
        }
    }

    /// Select the garbage collector (default: G1, the OpenJDK default and
    /// the paper's baseline).
    pub fn collector(mut self, collector: CollectorKind) -> Self {
        self.collector = collector;
        self
    }

    /// Select the input size class (default: `default`).
    pub fn size(mut self, size: SizeClass) -> Self {
        self.size = size;
        self
    }

    /// Set the heap as a multiple of the nominal minimum heap for the
    /// selected size (recommendation H2). Default: 2.0, the paper's
    /// baseline of "2× the benchmark's GMD nominal statistic" (§6.1.2).
    pub fn heap_factor(mut self, factor: f64) -> Self {
        self.heap_factor = factor;
        self.heap_bytes = None;
        self
    }

    /// Set the heap size explicitly in bytes (overrides
    /// [`BenchmarkRunner::heap_factor`]).
    pub fn heap_bytes(mut self, bytes: u64) -> Self {
        self.heap_bytes = Some(bytes);
        self
    }

    /// Number of iterations to run; the last is the timed one (default 5,
    /// per §6.1.2 "we ran 5 iterations of each benchmark, timing the
    /// last").
    pub fn iterations(mut self, n: u32) -> Self {
        self.iterations = n.max(1);
        self
    }

    /// Seed for this invocation; vary it across invocations to obtain
    /// confidence intervals.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Use a non-default machine.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Override the invocation noise (e.g. 0.0 for bitwise-deterministic
    /// minimum-heap searches).
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise_override = Some(noise);
        self
    }

    /// Force compressed pointers on or off (default: the collector's
    /// capability).
    pub fn compressed_oops(mut self, enabled: bool) -> Self {
        self.compressed_oops = Some(enabled);
        self
    }

    /// Select the compiler configuration (§4.3's tiered/-Xcomp/-Xint axis;
    /// default: tiered).
    pub fn compiler_mode(mut self, mode: CompilerMode) -> Self {
        self.compiler_mode = mode;
        self
    }

    /// Inject a deterministic fault plan into every iteration of the run
    /// (chaos experiments). The plan should already have passed
    /// [`FaultPlan::validate`]; an empty plan is equivalent to no plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// The heap size this configuration resolves to, in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BenchmarkError::UnsupportedSize`] when the profile lacks
    /// the selected size class.
    pub fn resolved_heap_bytes(&self) -> Result<u64, BenchmarkError> {
        if let Some(b) = self.heap_bytes {
            return Ok(b);
        }
        let min =
            self.profile
                .min_heap_bytes(self.size)
                .ok_or(BenchmarkError::UnsupportedSize {
                    benchmark: self.profile.name.to_string(),
                    size: self.size,
                })?;
        Ok((min as f64 * self.heap_factor).round() as u64)
    }

    /// Execute the configured run: `iterations` back-to-back iterations in
    /// one simulated JVM invocation, with JIT warmup modelled as a
    /// per-iteration work scale (derived from the workload's PWU nominal
    /// statistic) and heap leakage as a per-iteration live-set scale (GLK).
    ///
    /// # Errors
    ///
    /// Returns [`BenchmarkError`] if the workload cannot run in the
    /// configured heap or the configuration is inconsistent.
    pub fn run(&self) -> Result<IterationSet, BenchmarkError> {
        let heap = self.resolved_heap_bytes()?;
        let mut results = Vec::with_capacity(self.iterations as usize);
        for i in 0..self.iterations {
            // GLK models live-set leakage across iterations. The published
            // minimum heaps are defined over 5-iteration invocations
            // (§6.1.2), so the scale is normalised to reach 1.0 at the
            // fifth iteration: earlier iterations are lighter, later ones
            // (beyond the GMD definition) heavier.
            let leak = self.profile.leak_pct / 100.0;
            let live_scale = (1.0 + leak * (i as f64 / 9.0)) / (1.0 + leak * (4.0 / 9.0));
            let spec = self
                .profile
                .to_spec_scaled(self.size, live_scale)
                .ok_or(BenchmarkError::UnsupportedSize {
                    benchmark: self.profile.name.to_string(),
                    size: self.size,
                })?
                .map_err(|e| BenchmarkError::Spec(e.to_string()))?;
            let mut config = RunConfig::new(heap, self.collector)
                .with_machine(self.machine)
                .with_seed(
                    self.seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(i as u64),
                )
                .with_work_scale(warmup_scale(i, self.profile.warmup_iterations))
                .with_noise(
                    self.noise_override
                        .unwrap_or(self.profile.invocation_noise_pct / 100.0),
                )
                .with_compiler_mode(self.compiler_mode);
            if let Some(oops) = self.compressed_oops {
                config = config.with_compressed_oops(oops);
            }
            results.push(match &self.fault_plan {
                None => chopin_runtime::engine::run(&spec, &config)?,
                Some(plan) => chopin_runtime::engine::run_with_faults(&spec, &config, plan)?,
            });
        }
        Ok(IterationSet::new(results))
    }

    /// Convenience: run and return only the timed (last) iteration's wall
    /// time.
    ///
    /// # Errors
    ///
    /// See [`BenchmarkRunner::run`].
    pub fn run_timed_wall(&self) -> Result<SimDuration, BenchmarkError> {
        Ok(self.run()?.timed().wall_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_all_names() {
        let s = Suite::chopin();
        assert_eq!(s.len(), 22);
        assert!(!s.is_empty());
        assert_eq!(s.names().len(), 22);
        assert_eq!(s.latency_sensitive().count(), 9);
    }

    #[test]
    fn unsupported_size_is_reported() {
        let s = Suite::chopin();
        // fop has no large configuration in the published tables.
        let err = s
            .benchmark("fop")
            .unwrap()
            .runner()
            .size(SizeClass::Large)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, BenchmarkError::UnsupportedSize { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("fop"));
    }

    #[test]
    fn heap_factor_resolves_against_nominal_min_heap() {
        let s = Suite::chopin();
        let runner = s.benchmark("fop").unwrap().runner().heap_factor(2.0);
        let heap = runner.resolved_heap_bytes().unwrap();
        assert_eq!(heap, 2 * 13 * (1 << 20), "2 × fop's 13 MB GMD");
    }

    #[test]
    fn explicit_heap_bytes_override_factor() {
        let s = Suite::chopin();
        let runner = s
            .benchmark("fop")
            .unwrap()
            .runner()
            .heap_factor(3.0)
            .heap_bytes(42 << 20);
        assert_eq!(runner.resolved_heap_bytes().unwrap(), 42 << 20);
    }

    #[test]
    fn five_iterations_warm_up() {
        let s = Suite::chopin();
        let set = s
            .benchmark("fop")
            .unwrap()
            .runner()
            .iterations(5)
            .noise(0.0)
            .run()
            .unwrap();
        let walls: Vec<f64> = set
            .iterations()
            .iter()
            .map(|r| r.wall_time().as_secs_f64())
            .collect();
        assert_eq!(walls.len(), 5);
        assert!(walls[0] > walls[4], "first iteration is cold: {walls:?}");
        assert_eq!(
            set.timed().wall_time().as_secs_f64(),
            walls[4],
            "the timed iteration is the last"
        );
    }

    #[test]
    fn fault_plan_perturbs_the_run_deterministically() {
        let s = Suite::chopin();
        let plan = FaultPlan::new(5).with_window(
            1_000_000,
            50_000_000,
            chopin_faults::FaultKind::AllocSpike { factor: 3.0 },
        );
        let runner = s
            .benchmark("fop")
            .unwrap()
            .runner()
            .iterations(1)
            .noise(0.0);
        let clean = runner.clone().run().unwrap();
        let faulted = runner.clone().faults(plan.clone()).run().unwrap();
        let again = runner.faults(plan).run().unwrap();
        assert!(faulted.timed().telemetry().faults_injected > 0);
        assert_eq!(
            faulted.timed(),
            again.timed(),
            "fault-injected runs are as deterministic as clean ones"
        );
        assert_ne!(
            clean.timed(),
            faulted.timed(),
            "the injected spike must leave a mark"
        );
    }

    #[test]
    fn too_small_heap_fails_with_oom() {
        let s = Suite::chopin();
        let err = s
            .benchmark("fop")
            .unwrap()
            .runner()
            .heap_factor(0.5)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, BenchmarkError::Run(RunError::OutOfMemory { .. })),
            "{err}"
        );
    }

    #[test]
    fn zgc_cannot_run_at_one_times_baseline_min_heap() {
        // ZGC's lack of compressed pointers inflates its footprint past the
        // compressed-pointer minimum heap — the reason Figure 1 has no ZGC
        // points at small multiples.
        let s = Suite::chopin();
        let b = s.benchmark("pmd").unwrap(); // GMU/GMD = 269/191 ≈ 1.41
        let result = b
            .runner()
            .collector(CollectorKind::Zgc)
            .heap_factor(1.0)
            .iterations(1)
            .run();
        assert!(result.is_err());
        let ok = b
            .runner()
            .collector(CollectorKind::Zgc)
            .heap_factor(2.0)
            .iterations(1)
            .run();
        assert!(ok.is_ok(), "{:?}", ok.err());
    }
}
