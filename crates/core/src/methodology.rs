//! The paper's methodological recommendations (§4), as first-class data.
//!
//! The recommendations are the paper's response to the four failures its
//! motivation identifies: i) failure to expose garbage collection's
//! time–space tradeoff, ii) failure to appropriately evaluate latency,
//! iii) failure to expose total computational overheads, and iv) failure
//! to evaluate using diverse, appropriate workloads. The harness prints
//! them (`nominal --describe` and friends) so that the tooling carries its
//! own methodology, exactly as the suite does.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One methodological recommendation from §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The paper's identifier (H1, H2, P1, L1, L2, O1, O2).
    pub id: &'static str,
    /// The area the recommendation belongs to.
    pub area: Area,
    /// The recommendation text.
    pub text: &'static str,
}

/// The methodology area a recommendation addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Area {
    /// The time–space tradeoff (§4.2).
    HeapSizing,
    /// Compilers, warmup and experimental design (§4.3).
    Warmup,
    /// User-experienced latency (§4.4).
    Latency,
    /// Lower-bound garbage collection overheads (§4.5).
    Overheads,
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Area::HeapSizing => "time-space tradeoff",
            Area::Warmup => "compilers and warmup",
            Area::Latency => "user-experienced latency",
            Area::Overheads => "GC overheads",
        };
        f.write_str(s)
    }
}

/// All seven recommendations, in the order the paper presents them.
pub const RECOMMENDATIONS: [Recommendation; 7] = [
    Recommendation {
        id: "H1",
        area: Area::HeapSizing,
        text: "Garbage collectors should be evaluated across a range of heap sizes to \
               demonstrate the sensitivity of the collector to the time-space tradeoff.",
    },
    Recommendation {
        id: "H2",
        area: Area::HeapSizing,
        text: "Heap sizes should be expressed in terms of multiples of the minimum heap \
               size in which a baseline collector can run that workload.",
    },
    Recommendation {
        id: "P1",
        area: Area::Warmup,
        text: "Researchers should be cautious of naively following methodological \
               prescriptions. Instead they should be guided by: i) the coherence of their \
               experimental design with respect to the claims they plan to make, and \
               ii) the statistical significance of their findings.",
    },
    Recommendation {
        id: "L1",
        area: Area::Latency,
        text: "Researchers should report user-experienced latency, not weak proxies such \
               as GC pauses.",
    },
    Recommendation {
        id: "L2",
        area: Area::Latency,
        text: "Researchers should report distribution statistics and/or plot CDFs, rather \
               than reporting singular latency metrics.",
    },
    Recommendation {
        id: "O1",
        area: Area::Overheads,
        text: "Researchers should report GC overheads when evaluating garbage collectors, \
               using a methodology such as LBO.",
    },
    Recommendation {
        id: "O2",
        area: Area::Overheads,
        text: "Researchers should report both wall clock and total CPU overheads.",
    },
];

/// Look up a recommendation by its identifier (case-insensitive).
///
/// # Examples
///
/// ```
/// use chopin_core::methodology::{recommendation, Area};
///
/// let h2 = recommendation("h2").expect("H2 exists");
/// assert_eq!(h2.area, Area::HeapSizing);
/// assert!(h2.text.contains("multiples of the minimum heap"));
/// ```
pub fn recommendation(id: &str) -> Option<&'static Recommendation> {
    RECOMMENDATIONS
        .iter()
        .find(|r| r.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_recommendations_with_unique_ids() {
        let ids: Vec<&str> = RECOMMENDATIONS.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec!["H1", "H2", "P1", "L1", "L2", "O1", "O2"]);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(recommendation("o1").is_some());
        assert!(recommendation("O1").is_some());
        assert!(recommendation("Z9").is_none());
    }

    #[test]
    fn areas_display() {
        assert_eq!(Area::HeapSizing.to_string(), "time-space tradeoff");
        assert_eq!(Area::Overheads.to_string(), "GC overheads");
    }
}
