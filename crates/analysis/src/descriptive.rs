//! Descriptive statistics: mean, geometric mean, standard deviation and
//! percentiles.
//!
//! The paper's evaluation aggregates per-benchmark results with the
//! *geometric mean* (Figure 1 plots "the geometric mean of overhead over all
//! 22 DaCapo Chopin benchmarks") and reports latency *percentile*
//! distributions from the median up to 99.99 (§4.4).

use crate::AnalysisError;

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`AnalysisError::Empty`] for an empty slice.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// let m = chopin_analysis::mean(&[1.0, 2.0, 3.0])?;
/// assert_eq!(m, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn mean(values: &[f64]) -> Result<f64, AnalysisError> {
    if values.is_empty() {
        return Err(AnalysisError::Empty);
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Geometric mean of a slice of strictly positive values.
///
/// Computed in log space for numerical robustness; this is the aggregation
/// the paper uses across benchmarks (Figure 1).
///
/// # Errors
///
/// Returns [`AnalysisError::Empty`] for an empty slice and
/// [`AnalysisError::NotFinite`] if any value is non-positive or non-finite
/// (the logarithm would be undefined).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// let g = chopin_analysis::geometric_mean(&[1.0, 4.0])?;
/// assert!((g - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn geometric_mean(values: &[f64]) -> Result<f64, AnalysisError> {
    if values.is_empty() {
        return Err(AnalysisError::Empty);
    }
    let mut log_sum = 0.0;
    for &v in values {
        if !v.is_finite() || v <= 0.0 {
            return Err(AnalysisError::NotFinite {
                context: "geometric mean (requires finite positive values)",
            });
        }
        log_sum += v.ln();
    }
    Ok((log_sum / values.len() as f64).exp())
}

/// Sample standard deviation (Bessel-corrected, `n - 1` denominator).
///
/// # Errors
///
/// Returns [`AnalysisError::InsufficientData`] when fewer than two values are
/// provided: the sample standard deviation is undefined for `n < 2`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// let s = chopin_analysis::stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])?;
/// assert!((s - 2.138089935).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn stddev(values: &[f64]) -> Result<f64, AnalysisError> {
    if values.len() < 2 {
        return Err(AnalysisError::InsufficientData {
            needed: 2,
            got: values.len(),
        });
    }
    let m = mean(values)?;
    let ss: f64 = values.iter().map(|v| (v - m) * (v - m)).sum();
    Ok((ss / (values.len() - 1) as f64).sqrt())
}

/// Percentile of a slice using linear interpolation between closest ranks
/// (the same convention as NumPy's default `linear` method).
///
/// `p` is expressed in percent, in `0.0..=100.0`. The input need not be
/// sorted; a sorted copy is made internally. Use [`percentile_sorted`] when
/// the caller already holds sorted data and wants to avoid the copy.
///
/// # Errors
///
/// Returns [`AnalysisError::Empty`] for an empty slice and
/// [`AnalysisError::NotFinite`] if `p` is outside `[0, 100]` or any value is
/// NaN.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// let p50 = chopin_analysis::percentile(&[4.0, 1.0, 3.0, 2.0], 50.0)?;
/// assert_eq!(p50, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn percentile(values: &[f64], p: f64) -> Result<f64, AnalysisError> {
    if values.is_empty() {
        return Err(AnalysisError::Empty);
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(AnalysisError::NotFinite {
            context: "percentile input",
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

/// Percentile of an already **sorted** (ascending) slice.
///
/// See [`percentile`] for the interpolation convention.
///
/// # Errors
///
/// Returns [`AnalysisError::Empty`] for an empty slice and
/// [`AnalysisError::NotFinite`] if `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Result<f64, AnalysisError> {
    if sorted.is_empty() {
        return Err(AnalysisError::Empty);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(AnalysisError::NotFinite {
            context: "percentile rank (must be within [0, 100])",
        });
    }
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// A five-number-style summary (minimum, median, maximum) used by the
/// appendix nominal-statistics tables, which report Min / Median / Max for
/// every metric across the suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest value.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Largest value.
    pub max: f64,
}

impl Summary {
    /// Compute the summary of a slice.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Empty`] for an empty slice and
    /// [`AnalysisError::NotFinite`] if any value is NaN.
    ///
    /// # Examples
    ///
    /// ```
    /// use chopin_analysis::descriptive::Summary;
    /// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
    /// let s = Summary::of(&[3.0, 1.0, 2.0])?;
    /// assert_eq!((s.min, s.median, s.max), (1.0, 2.0, 3.0));
    /// # Ok(())
    /// # }
    /// ```
    pub fn of(values: &[f64]) -> Result<Self, AnalysisError> {
        if values.is_empty() {
            return Err(AnalysisError::Empty);
        }
        if values.iter().any(|v| v.is_nan()) {
            return Err(AnalysisError::NotFinite {
                context: "summary input",
            });
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(Summary {
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0)?,
            max: sorted[sorted.len() - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_empty_is_error() {
        assert_eq!(mean(&[]), Err(AnalysisError::Empty));
    }

    #[test]
    fn mean_of_constant_is_constant() {
        assert_eq!(mean(&[5.0; 7]).unwrap(), 5.0);
    }

    #[test]
    fn geometric_mean_rejects_nonpositive() {
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[1.0, -2.0]).is_err());
        assert!(geometric_mean(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn geometric_mean_of_reciprocal_pair_is_one() {
        let g = geometric_mean(&[8.0, 0.125]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stddev_needs_two_points() {
        assert!(matches!(
            stddev(&[1.0]),
            Err(AnalysisError::InsufficientData { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert_eq!(stddev(&[3.0, 3.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn percentile_extremes_are_min_and_max() {
        let v = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&v, 100.0).unwrap(), 9.0);
    }

    #[test]
    fn percentile_interpolates_linearly() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 25.0).unwrap(), 2.5);
        assert_eq!(percentile(&v, 75.0).unwrap(), 7.5);
    }

    #[test]
    fn percentile_rejects_out_of_range_rank() {
        assert!(percentile(&[1.0], 101.0).is_err());
        assert!(percentile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 99.9).unwrap(), 42.0);
    }

    #[test]
    fn summary_orders_fields() {
        let s = Summary::of(&[10.0, -1.0, 4.0, 4.0]).unwrap();
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.median, 4.0);
    }

    proptest! {
        #[test]
        fn prop_mean_bounded_by_extremes(v in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
            let m = mean(&v).unwrap();
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
        }

        #[test]
        fn prop_geomean_le_mean(v in proptest::collection::vec(1e-3f64..1e6, 1..50)) {
            // AM-GM inequality.
            let g = geometric_mean(&v).unwrap();
            let m = mean(&v).unwrap();
            prop_assert!(g <= m * (1.0 + 1e-9));
        }

        #[test]
        fn prop_percentile_monotone_in_rank(
            v in proptest::collection::vec(-1e6f64..1e6, 1..60),
            a in 0.0f64..100.0,
            b in 0.0f64..100.0,
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let pl = percentile(&v, lo).unwrap();
            let ph = percentile(&v, hi).unwrap();
            prop_assert!(pl <= ph + 1e-9);
        }

        #[test]
        fn prop_percentile_within_range(
            v in proptest::collection::vec(-1e6f64..1e6, 1..60),
            p in 0.0f64..100.0,
        ) {
            let x = percentile(&v, p).unwrap();
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9);
        }
    }
}
