//! Confidence intervals for repeated benchmark invocations.
//!
//! §6.1 of the paper: "We run 10 invocations of each benchmark and show or
//! plot the 95 % confidence intervals. In practice, 10 invocations is
//! sufficient to produce results with sufficiently tight confidence
//! intervals." This module computes those intervals with the Student *t*
//! distribution (the sample sizes are small, so the normal approximation
//! would be too optimistic).

use crate::descriptive::{mean, stddev};
use crate::AnalysisError;

/// Two-sided 97.5 % critical values of the Student *t* distribution
/// (i.e. the multipliers for a 95 % confidence interval), indexed by degrees
/// of freedom 1..=30.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The asymptotic (normal) multiplier used for large samples.
const Z_975: f64 = 1.960;

/// Critical value of the two-sided 95 % Student *t* for `df` degrees of
/// freedom.
///
/// For `df > 30` the normal approximation (1.960) is used — well within the
/// fidelity needed for plotting CI whiskers.
///
/// # Panics
///
/// Panics if `df == 0`; a confidence interval requires at least two samples.
pub fn t_critical_95(df: usize) -> f64 {
    assert!(df > 0, "confidence interval requires df >= 1");
    if df <= T_975.len() {
        T_975[df - 1]
    } else {
        Z_975
    }
}

/// A 95 % confidence interval around a sample mean.
///
/// # Examples
///
/// ```
/// use chopin_analysis::ConfidenceInterval;
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// // Ten invocations of a benchmark (milliseconds).
/// let runs = [101.0, 99.0, 100.5, 98.7, 100.2, 99.9, 101.3, 100.0, 99.5, 100.8];
/// let ci = ConfidenceInterval::from_samples(&runs)?;
/// assert!(ci.lower() < ci.mean() && ci.mean() < ci.upper());
/// assert!(ci.half_width() < 1.0, "ten invocations give a tight interval");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    mean: f64,
    half_width: f64,
    n: usize,
}

impl ConfidenceInterval {
    /// Build a 95 % confidence interval from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InsufficientData`] when fewer than two
    /// samples are provided.
    pub fn from_samples(samples: &[f64]) -> Result<Self, AnalysisError> {
        let n = samples.len();
        if n < 2 {
            return Err(AnalysisError::InsufficientData { needed: 2, got: n });
        }
        let m = mean(samples)?;
        let s = stddev(samples)?;
        let half = t_critical_95(n - 1) * s / (n as f64).sqrt();
        Ok(ConfidenceInterval {
            mean: m,
            half_width: half,
            n,
        })
    }

    /// The sample mean at the centre of the interval.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Half the width of the interval (the "± term").
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Lower bound of the interval.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Number of samples the interval was computed from.
    pub fn sample_count(&self) -> usize {
        self.n
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower() && value <= self.upper()
    }

    /// Relative half width (half width divided by the mean), the usual
    /// "tightness" figure quoted for benchmark results. Returns `None` when
    /// the mean is zero.
    pub fn relative_half_width(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.half_width / self.mean.abs())
        }
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={})",
            self.mean, self.half_width, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn t_table_matches_known_values() {
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(9), 2.262); // 10 invocations, as in §6.1
        assert_eq!(t_critical_95(30), 2.042);
        assert_eq!(t_critical_95(1000), 1.960);
    }

    #[test]
    #[should_panic(expected = "df >= 1")]
    fn t_table_rejects_zero_df() {
        t_critical_95(0);
    }

    #[test]
    fn interval_requires_two_samples() {
        assert!(ConfidenceInterval::from_samples(&[1.0]).is_err());
    }

    #[test]
    fn constant_samples_yield_zero_width() {
        let ci = ConfidenceInterval::from_samples(&[7.0; 10]).unwrap();
        assert_eq!(ci.half_width(), 0.0);
        assert_eq!(ci.lower(), 7.0);
        assert_eq!(ci.upper(), 7.0);
        assert!(ci.contains(7.0));
        assert!(!ci.contains(7.1));
    }

    #[test]
    fn display_shows_mean_and_width() {
        let ci = ConfidenceInterval::from_samples(&[1.0, 3.0]).unwrap();
        let s = ci.to_string();
        assert!(s.contains("2.0000"), "{s}");
        assert!(s.contains("n=2"), "{s}");
    }

    #[test]
    fn relative_half_width_none_for_zero_mean() {
        let ci = ConfidenceInterval::from_samples(&[-1.0, 1.0]).unwrap();
        assert_eq!(ci.relative_half_width(), None);
    }

    proptest! {
        #[test]
        fn prop_interval_contains_mean(v in proptest::collection::vec(-1e6f64..1e6, 2..40)) {
            let ci = ConfidenceInterval::from_samples(&v).unwrap();
            prop_assert!(ci.contains(ci.mean()));
        }

        #[test]
        fn prop_half_width_matches_the_t_formula(
            v in proptest::collection::vec(-1e6f64..1e6, 2..40)
        ) {
            // The interval is exactly t_{0.975, n-1} * s / sqrt(n).
            let ci = ConfidenceInterval::from_samples(&v).unwrap();
            let s = crate::descriptive::stddev(&v).unwrap();
            let expected = t_critical_95(v.len() - 1) * s / (v.len() as f64).sqrt();
            prop_assert!((ci.half_width() - expected).abs() <= expected.abs() * 1e-12 + 1e-12);
            prop_assert_eq!(ci.sample_count(), v.len());
        }
    }
}
