//! A log-bucketed high-dynamic-range histogram.
//!
//! DaCapo "stores event start and end times in an array" and reports
//! percentiles afterwards; "careful engineering ensures that the cost of
//! recording these measurements is low" (§4.4). For streaming aggregation
//! across millions of events (or merging distributions across invocations)
//! an HDR-style histogram is the standard tool: constant-time recording,
//! bounded memory, and a configurable relative error on every reported
//! percentile.
//!
//! The layout follows HdrHistogram: values are grouped into exponential
//! *segments* (one per power of two) each split into `2^precision_bits`
//! linear buckets, giving a guaranteed relative error of at most
//! `2^-precision_bits`.

use crate::AnalysisError;
use serde::{Deserialize, Serialize};

/// A high-dynamic-range histogram over `u64` values.
///
/// # Examples
///
/// ```
/// use chopin_analysis::histogram::HdrHistogram;
///
/// let mut h = HdrHistogram::new(3); // ≤ 1/8 relative error
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.len(), 1000);
/// let p50 = h.value_at_percentile(50.0);
/// assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.125 + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HdrHistogram {
    precision_bits: u32,
    /// Counts indexed by bucket; the bucket layout is derived from the
    /// value, see [`HdrHistogram::bucket_of`].
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
}

impl HdrHistogram {
    /// Create a histogram with `precision_bits` of sub-bucket precision
    /// (relative error ≤ `2^-precision_bits`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= precision_bits <= 12`.
    pub fn new(precision_bits: u32) -> Self {
        assert!(
            (1..=12).contains(&precision_bits),
            "precision_bits must lie in 1..=12"
        );
        // 64 segments of 2^precision_bits buckets covers the full u64 range.
        let buckets = 64 * (1usize << precision_bits);
        HdrHistogram {
            precision_bits,
            counts: vec![0; buckets],
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value. Constant time.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `count` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let idx = self.bucket_of(value);
        self.counts[idx] += count;
        self.total += count;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The guaranteed relative error bound of reported values.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.precision_bits) as f64
    }

    /// The value at percentile `p` (0–100): an upper bound of the bucket
    /// containing that rank, so the result is within the histogram's
    /// relative error of the true order statistic.
    ///
    /// Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.is_empty() {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                return self.bucket_upper(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Ragged`] when precisions differ.
    pub fn merge(&mut self, other: &HdrHistogram) -> Result<(), AnalysisError> {
        if self.precision_bits != other.precision_bits {
            return Err(AnalysisError::Ragged {
                expected: self.precision_bits as usize,
                found: other.precision_bits as usize,
                row: 0,
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        if !other.is_empty() {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        Ok(())
    }

    /// Bucket index of a value.
    fn bucket_of(&self, value: u64) -> usize {
        let p = self.precision_bits;
        if value < (1 << p) {
            // The first segment is fully linear.
            return value as usize;
        }
        // Segment = position of the highest set bit above the precision
        // range; sub-bucket = the next `p` bits.
        let msb = 63 - value.leading_zeros();
        let segment = msb - p + 1;
        let sub = (value >> (msb - p)) & ((1 << p) - 1);
        (segment as usize) * (1 << p) + sub as usize
    }

    /// Exclusive upper bound of a bucket (the value reported for it).
    fn bucket_upper(&self, idx: usize) -> u64 {
        let p = self.precision_bits;
        let segment = (idx >> p) as u32;
        let sub = (idx & ((1 << p) - 1)) as u64;
        if segment == 0 {
            return sub;
        }
        let base = 1u64 << (segment + p - 1);
        let unit = 1u64 << (segment - 1);
        base + (sub + 1) * unit - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "precision_bits")]
    fn zero_precision_rejected() {
        HdrHistogram::new(0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = HdrHistogram::new(5);
        assert!(h.is_empty());
        assert_eq!(h.value_at_percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value_dominates_every_percentile() {
        let mut h = HdrHistogram::new(7);
        h.record(12345);
        for p in [0.0, 50.0, 99.99, 100.0] {
            let v = h.value_at_percentile(p);
            let err = (v as f64 - 12345.0).abs() / 12345.0;
            assert!(err <= h.relative_error() + 1e-12, "p{p}: {v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = HdrHistogram::new(6);
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.value_at_percentile(100.0), 63);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = HdrHistogram::new(6);
        let mut b = HdrHistogram::new(6);
        a.record_n(100, 10);
        b.record_n(1_000_000, 10);
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 20);
        assert_eq!(a.max(), 1_000_000);
        assert!(a.value_at_percentile(25.0) <= 110);
        assert!(a.value_at_percentile(99.0) > 900_000);
    }

    #[test]
    fn merge_rejects_mismatched_precision() {
        let mut a = HdrHistogram::new(4);
        let b = HdrHistogram::new(5);
        assert!(a.merge(&b).is_err());
    }

    proptest! {
        #[test]
        fn prop_percentiles_within_relative_error(
            values in proptest::collection::vec(1u64..1_000_000_000, 1..300),
            p in 0.0f64..100.0,
        ) {
            let mut h = HdrHistogram::new(7);
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            // Exact order statistic with the same ceil-rank convention.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let exact = sorted[rank - 1] as f64;
            let reported = h.value_at_percentile(p) as f64;
            let err = (reported - exact).abs() / exact;
            prop_assert!(
                err <= h.relative_error() + 1e-9,
                "p{p}: reported {reported}, exact {exact}, err {err}"
            );
        }

        #[test]
        fn prop_percentiles_monotone(
            values in proptest::collection::vec(1u64..1_000_000, 2..200),
        ) {
            let mut h = HdrHistogram::new(5);
            for &v in &values {
                h.record(v);
            }
            let ps = [0.0, 10.0, 50.0, 90.0, 99.0, 100.0];
            let vs: Vec<u64> = ps.iter().map(|&p| h.value_at_percentile(p)).collect();
            for w in vs.windows(2) {
                prop_assert!(w[0] <= w[1], "{vs:?}");
            }
        }

        #[test]
        fn prop_count_and_extremes_exact(
            values in proptest::collection::vec(0u64..u64::MAX / 2, 1..100),
        ) {
            let mut h = HdrHistogram::new(3);
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.len(), values.len() as u64);
            prop_assert_eq!(h.min(), *values.iter().min().unwrap());
            prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        }
    }
}
