//! Symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! PCA needs the eigenvalues and eigenvectors of a covariance matrix, which
//! is symmetric positive semi-definite. The Jacobi method is simple, robust
//! and plenty fast for the ≤ 50 × 50 matrices this reproduction works with.

use crate::matrix::Matrix;
use crate::AnalysisError;

/// Result of a symmetric eigendecomposition: `a = v · diag(λ) · vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Eigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns of a square matrix, ordered to match
    /// [`Eigen::values`].
    pub vectors: Matrix,
}

/// Convergence threshold on the largest off-diagonal element.
const TOLERANCE: f64 = 1e-12;

/// Upper bound on full Jacobi sweeps; symmetric matrices of the sizes we use
/// converge in well under 20 sweeps.
const MAX_SWEEPS: usize = 100;

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// Eigenvalues are returned in descending order with matching eigenvector
/// columns. The input must be square and (numerically) symmetric.
///
/// # Errors
///
/// Returns [`AnalysisError::Ragged`] for non-square input,
/// [`AnalysisError::NotFinite`] for non-finite or asymmetric input and
/// [`AnalysisError::Empty`] for a 0 × 0 matrix.
///
/// # Examples
///
/// ```
/// use chopin_analysis::{Matrix, eigen::symmetric_eigen};
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]])?;
/// let e = symmetric_eigen(&a)?;
/// assert!((e.values[0] - 3.0).abs() < 1e-9);
/// assert!((e.values[1] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<Eigen, AnalysisError> {
    let n = a.rows();
    if n == 0 {
        return Err(AnalysisError::Empty);
    }
    if a.cols() != n {
        return Err(AnalysisError::Ragged {
            expected: n,
            found: a.cols(),
            row: 0,
        });
    }
    if !a.is_finite() {
        return Err(AnalysisError::NotFinite {
            context: "eigendecomposition input",
        });
    }
    // Symmetry check, scaled by magnitude.
    let scale = (0..n)
        .flat_map(|r| (0..n).map(move |c| (r, c)))
        .map(|(r, c)| a.get(r, c).abs())
        .fold(0.0f64, f64::max)
        .max(1.0);
    for r in 0..n {
        for c in (r + 1)..n {
            if (a.get(r, c) - a.get(c, r)).abs() > 1e-9 * scale {
                return Err(AnalysisError::NotFinite {
                    context: "eigendecomposition input (not symmetric)",
                });
            }
        }
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        if m.max_off_diagonal() <= TOLERANCE * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= TOLERANCE * scale {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Standard Jacobi rotation computation.
                let theta = (aqq - app) / (2.0 * apq);
                let t = {
                    let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
                    sign / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply rotation to rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Extract and sort eigenpairs descending by eigenvalue.
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n).map(|i| (m.get(i, i), v.column(i))).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));

    let values: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (col, (_, vec_col)) in pairs.iter().enumerate() {
        for (row, &x) in vec_col.iter().enumerate() {
            vectors.set(row, col, x);
        }
    }

    Ok(Eigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reconstruct(e: &Eigen) -> Matrix {
        let n = e.values.len();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d.set(i, i, e.values[i]);
        }
        e.vectors
            .multiply(&d)
            .unwrap()
            .multiply(&e.vectors.transpose())
            .unwrap()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 4.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 5.0).abs() < 1e-9);
        assert!((e.values[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_nonsquare_and_asymmetric() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(symmetric_eigen(&a).is_err());
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().multiply(&e.vectors).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (vtv.get(i, j) - expect).abs() < 1e-9,
                    "V^T V not identity at ({i},{j}): {}",
                    vtv.get(i, j)
                );
            }
        }
        // Known eigenvalues of this tridiagonal matrix: 2 + 2cos(kπ/4).
        let expected = [2.0 + 2.0_f64.sqrt(), 2.0, 2.0 - 2.0_f64.sqrt()];
        for (got, want) in e.values.iter().zip(expected) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 6.0, 3.0],
            vec![1.0, 3.0, 7.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let r = reconstruct(&e);
        for i in 0..3 {
            for j in 0..3 {
                assert!((r.get(i, j) - a.get(i, j)).abs() < 1e-8);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_trace_equals_eigenvalue_sum(seed in 0u64..500, n in 2usize..8) {
            // Build a random symmetric matrix from a deterministic LCG.
            let mut a = Matrix::zeros(n, n);
            let mut x = seed.wrapping_mul(2654435761).wrapping_add(1);
            for i in 0..n {
                for j in i..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let v = ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
                    a.set(i, j, v);
                    a.set(j, i, v);
                }
            }
            let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
            let e = symmetric_eigen(&a).unwrap();
            let sum: f64 = e.values.iter().sum();
            prop_assert!((trace - sum).abs() < 1e-8, "trace {trace} vs eigsum {sum}");
        }

        #[test]
        fn prop_eigenvalues_sorted_descending(seed in 0u64..200, n in 2usize..7) {
            let mut a = Matrix::zeros(n, n);
            let mut x = seed.wrapping_add(7);
            for i in 0..n {
                for j in i..n {
                    x = x.wrapping_mul(48271) % 0x7fffffff;
                    let v = x as f64 / 0x7fffffff as f64;
                    a.set(i, j, v);
                    a.set(j, i, v);
                }
            }
            let e = symmetric_eigen(&a).unwrap();
            for w in e.values.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }
}
