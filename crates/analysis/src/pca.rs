//! Principal components analysis.
//!
//! §5.2 of the paper: "We use the nominal statistics for each benchmark to
//! conduct a principal component analysis of the workloads in the suite. In
//! the analysis we use the 33 nominal metrics where all benchmarks have data
//! points. We use raw values rather than scores, and apply standard scaling."
//! Figure 4 plots the 22 workloads against PC1–PC4; together the top four
//! components account for over 50 % of the variance.

use crate::eigen::symmetric_eigen;
use crate::matrix::Matrix;
use crate::scaling::StandardScaler;
use crate::AnalysisError;

/// A fitted PCA model: principal axes, explained variance and the projected
/// observations.
///
/// # Examples
///
/// ```
/// use chopin_analysis::Pca;
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// // Four observations of three variables.
/// let data = vec![
///     vec![2.5, 2.4, 0.5],
///     vec![0.5, 0.7, 1.5],
///     vec![2.2, 2.9, 0.6],
///     vec![1.9, 2.2, 0.9],
/// ];
/// let pca = Pca::fit(&data)?;
/// let ratios = pca.explained_variance_ratio();
/// let total: f64 = ratios.iter().sum();
/// assert!((total - 1.0).abs() < 1e-9, "ratios sum to one");
/// assert_eq!(pca.scores().len(), 4, "one score row per observation");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    eigenvalues: Vec<f64>,
    /// Columns are principal axes (loadings), in eigenvalue order.
    components: Matrix,
    /// Projected observations: rows = observations, cols = components.
    scores: Vec<Vec<f64>>,
    total_variance: f64,
}

impl Pca {
    /// Fit a PCA to `data` (rows = observations, columns = variables),
    /// applying standard scaling first — exactly the paper's pipeline.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`StandardScaler`] and requires at
    /// least two observations ([`AnalysisError::InsufficientData`]).
    pub fn fit(data: &[Vec<f64>]) -> Result<Self, AnalysisError> {
        if data.len() < 2 {
            return Err(AnalysisError::InsufficientData {
                needed: 2,
                got: data.len(),
            });
        }
        let scaled = StandardScaler::fit_transform(data)?;
        let x = Matrix::from_rows(&scaled)?;
        let cov = x.covariance_of_centered()?;
        let eig = symmetric_eigen(&cov)?;

        // Clamp tiny negative eigenvalues produced by round-off: a covariance
        // matrix is positive semi-definite by construction.
        let eigenvalues: Vec<f64> = eig.values.iter().map(|l| l.max(0.0)).collect();
        let total_variance: f64 = eigenvalues.iter().sum();

        // Deterministic sign convention: make the largest-magnitude loading
        // of each component positive, so plots are reproducible run to run.
        let mut components = eig.vectors;
        let n = components.rows();
        for c in 0..components.cols() {
            let mut max_idx = 0;
            let mut max_abs = 0.0;
            for r in 0..n {
                let a = components.get(r, c).abs();
                if a > max_abs {
                    max_abs = a;
                    max_idx = r;
                }
            }
            if components.get(max_idx, c) < 0.0 {
                for r in 0..n {
                    let v = components.get(r, c);
                    components.set(r, c, -v);
                }
            }
        }

        let scores = x.multiply(&components)?;
        let scores_rows: Vec<Vec<f64>> =
            (0..scores.rows()).map(|r| scores.row(r).to_vec()).collect();

        Ok(Pca {
            eigenvalues,
            components,
            scores: scores_rows,
            total_variance,
        })
    }

    /// Eigenvalues of the covariance matrix, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance explained by each component, descending.
    /// The paper annotates Figure 4 with these (PC1 18 %, PC2 16 %, …).
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance == 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues
            .iter()
            .map(|l| l / self.total_variance)
            .collect()
    }

    /// Cumulative explained variance after the first `k` components
    /// (the paper's "together, these four principal components account for
    /// over 50 % of the variance").
    pub fn cumulative_explained_variance(&self, k: usize) -> f64 {
        self.explained_variance_ratio().iter().take(k).sum()
    }

    /// The loading (weight) of variable `var` on component `pc`
    /// (both zero-indexed).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn loading(&self, var: usize, pc: usize) -> f64 {
        self.components.get(var, pc)
    }

    /// Number of variables (columns) the model was fitted to.
    pub fn variable_count(&self) -> usize {
        self.components.rows()
    }

    /// Projected observations: one row per input row, one column per
    /// principal component, in eigenvalue order.
    pub fn scores(&self) -> &[Vec<f64>] {
        &self.scores
    }

    /// The indices of the `k` variables with the largest aggregate absolute
    /// loading across the first `n_components` components, descending.
    ///
    /// This is how we identify the paper's "twelve most determinant nominal
    /// statistics as revealed by our principal components analysis"
    /// (Table 2).
    pub fn most_determinant_variables(&self, k: usize, n_components: usize) -> Vec<usize> {
        let n_pc = n_components.min(self.eigenvalues.len());
        let mut weights: Vec<(usize, f64)> = (0..self.variable_count())
            .map(|v| {
                let w: f64 = (0..n_pc)
                    .map(|pc| self.loading(v, pc).abs() * self.eigenvalues[pc].sqrt())
                    .sum();
                (v, w)
            })
            .collect();
        weights.sort_by(|a, b| b.1.total_cmp(&a.1));
        weights.into_iter().take(k).map(|(v, _)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn toy_data() -> Vec<Vec<f64>> {
        vec![
            vec![2.5, 2.4],
            vec![0.5, 0.7],
            vec![2.2, 2.9],
            vec![1.9, 2.2],
            vec![3.1, 3.0],
            vec![2.3, 2.7],
            vec![2.0, 1.6],
            vec![1.0, 1.1],
            vec![1.5, 1.6],
            vec![1.1, 0.9],
        ]
    }

    #[test]
    fn requires_two_observations() {
        assert!(Pca::fit(&[vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn correlated_data_concentrates_variance_in_pc1() {
        let pca = Pca::fit(&toy_data()).unwrap();
        let r = pca.explained_variance_ratio();
        assert!(r[0] > 0.9, "PC1 should dominate: {r:?}");
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scores_have_one_row_per_observation() {
        let pca = Pca::fit(&toy_data()).unwrap();
        assert_eq!(pca.scores().len(), 10);
        assert_eq!(pca.scores()[0].len(), 2);
    }

    #[test]
    fn cumulative_variance_is_monotone() {
        let pca = Pca::fit(&toy_data()).unwrap();
        let c1 = pca.cumulative_explained_variance(1);
        let c2 = pca.cumulative_explained_variance(2);
        assert!(c2 >= c1);
        assert!((c2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn most_determinant_selects_informative_variable() {
        // Column 0 varies a lot (after scaling all columns are unit variance,
        // but column 2 is constant so it carries zero weight).
        let data = vec![
            vec![1.0, 10.0, 5.0],
            vec![2.0, 9.0, 5.0],
            vec![3.0, 12.0, 5.0],
            vec![4.0, 8.0, 5.0],
        ];
        let pca = Pca::fit(&data).unwrap();
        let top = pca.most_determinant_variables(2, 3);
        assert_eq!(top.len(), 2);
        assert!(!top.contains(&2), "constant column must not be determinant");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Pca::fit(&toy_data()).unwrap();
        let b = Pca::fit(&toy_data()).unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_variance_ratios_sum_to_one(
            rows in 3usize..10, cols in 2usize..5, seed in 0u64..300
        ) {
            let mut x = seed.wrapping_add(11);
            let data: Vec<Vec<f64>> = (0..rows).map(|_| {
                (0..cols).map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((x >> 33) as f64) / (1u64 << 31) as f64
                }).collect()
            }).collect();
            let pca = Pca::fit(&data).unwrap();
            let sum: f64 = pca.explained_variance_ratio().iter().sum();
            // All-constant data would have zero total variance; the LCG never
            // produces that, so the ratios must sum to 1.
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
        }

        #[test]
        fn prop_eigenvalues_nonnegative_descending(
            rows in 3usize..10, cols in 2usize..5, seed in 0u64..300
        ) {
            let mut x = seed.wrapping_add(3);
            let data: Vec<Vec<f64>> = (0..rows).map(|_| {
                (0..cols).map(|_| {
                    x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    ((x >> 32) as f64) / (1u64 << 32) as f64
                }).collect()
            }).collect();
            let pca = Pca::fit(&data).unwrap();
            let ev = pca.eigenvalues();
            for w in ev.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
            prop_assert!(ev.iter().all(|l| *l >= 0.0));
        }
    }
}
