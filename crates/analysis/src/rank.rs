//! Rank statistics: ranking with ties and Spearman rank correlation.
//!
//! The reproduction validates its simulated workload characterisation
//! against the paper's published nominal statistics by *rank agreement*:
//! absolute values belong to the authors' hardware, but if the simulation
//! is faithful, ordering the benchmarks by a measured metric should
//! correlate strongly with ordering them by the published one.

use crate::AnalysisError;

/// Fractional ranks of `values` (average rank for ties, 1-based, largest
/// value gets rank 1 — matching the nominal-statistics convention).
///
/// # Errors
///
/// Returns [`AnalysisError::Empty`] for empty input and
/// [`AnalysisError::NotFinite`] if any value is NaN.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// let r = chopin_analysis::rank::fractional_ranks(&[10.0, 30.0, 20.0])?;
/// assert_eq!(r, vec![3.0, 1.0, 2.0]);
/// // Ties share the average of the ranks they span.
/// let t = chopin_analysis::rank::fractional_ranks(&[5.0, 5.0, 1.0])?;
/// assert_eq!(t, vec![1.5, 1.5, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn fractional_ranks(values: &[f64]) -> Result<Vec<f64>, AnalysisError> {
    if values.is_empty() {
        return Err(AnalysisError::Empty);
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(AnalysisError::NotFinite {
            context: "rank input",
        });
    }
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    // Descending: rank 1 = largest.
    order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));

    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    Ok(ranks)
}

/// Spearman's rank correlation coefficient between two paired samples.
///
/// Computed as the Pearson correlation of the fractional ranks (correct in
/// the presence of ties). Returns a value in `[-1, 1]`.
///
/// # Errors
///
/// Returns [`AnalysisError::Ragged`] when lengths differ,
/// [`AnalysisError::InsufficientData`] for fewer than two pairs, and
/// [`AnalysisError::NotFinite`] when either sample is constant (the
/// correlation is undefined) or contains NaN.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// use chopin_analysis::rank::spearman;
/// // A perfectly monotone (but non-linear) relationship.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// assert!((spearman(&x, &y)? - 1.0).abs() < 1e-12);
/// // Reversing the order flips the sign.
/// let z = [64.0, 27.0, 8.0, 1.0];
/// assert!((spearman(&x, &z)? + 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, AnalysisError> {
    if x.len() != y.len() {
        return Err(AnalysisError::Ragged {
            expected: x.len(),
            found: y.len(),
            row: 0,
        });
    }
    if x.len() < 2 {
        return Err(AnalysisError::InsufficientData {
            needed: 2,
            got: x.len(),
        });
    }
    let rx = fractional_ranks(x)?;
    let ry = fractional_ranks(y)?;
    pearson(&rx, &ry)
}

/// Pearson correlation of two equal-length samples.
fn pearson(x: &[f64], y: &[f64]) -> Result<f64, AnalysisError> {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return Err(AnalysisError::NotFinite {
            context: "correlation of a constant sample",
        });
    }
    Ok(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ranks_of_distinct_values() {
        let r = fractional_ranks(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(r, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn tied_values_share_average_rank() {
        let r = fractional_ranks(&[7.0, 7.0, 7.0, 1.0]).unwrap();
        assert_eq!(r, vec![2.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert!(fractional_ranks(&[]).is_err());
        assert!(fractional_ranks(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn spearman_mismatched_lengths_rejected() {
        assert!(spearman(&[1.0, 2.0], &[1.0]).is_err());
        assert!(spearman(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn spearman_constant_sample_is_undefined() {
        assert!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn spearman_of_independent_permutation_is_small() {
        // A hand-picked near-orthogonal permutation of 8 items.
        let x: Vec<f64> = (1..=8).map(|v| v as f64).collect();
        let y = [3.0, 8.0, 1.0, 6.0, 2.0, 7.0, 4.0, 5.0];
        let rho = spearman(&x, &y).unwrap();
        assert!(rho.abs() < 0.5, "{rho}");
    }

    proptest! {
        #[test]
        fn prop_spearman_bounded(
            pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 3..50)
        ) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Ok(rho) = spearman(&x, &y) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho));
            }
        }

        #[test]
        fn prop_spearman_self_correlation_is_one(
            x in proptest::collection::vec(-1e6f64..1e6, 3..50)
        ) {
            if let Ok(rho) = spearman(&x, &x) {
                prop_assert!((rho - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_ranks_are_a_permutation_average(
            x in proptest::collection::vec(-1e3f64..1e3, 1..40)
        ) {
            let r = fractional_ranks(&x).unwrap();
            let n = x.len() as f64;
            let sum: f64 = r.iter().sum();
            // Ranks always sum to n(n+1)/2 regardless of ties.
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        }
    }
}
