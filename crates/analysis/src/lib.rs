//! Statistics substrate for the chopin reproduction of *Rethinking Java
//! Performance Analysis* (ASPLOS '25).
//!
//! This crate implements, from scratch, every piece of numerical machinery
//! the paper's evaluation relies on:
//!
//! * [`descriptive`] — means, geometric means, standard deviations and
//!   percentiles (the paper reports geometric means over the 22 workloads and
//!   latency percentiles from the median to 99.99).
//! * [`ci`] — 95 % confidence intervals via the Student *t* distribution
//!   (§6.1 runs 10 invocations of each benchmark and plots 95 % CIs).
//! * [`scaling`] — the standard scaler (zero mean, unit variance) applied to
//!   nominal statistics before PCA (§5.2).
//! * [`matrix`] — a small dense row-major matrix used by the eigensolver.
//! * [`eigen`] — a cyclic Jacobi eigendecomposition for symmetric matrices.
//! * [`pca`] — principal components analysis built on the above, reproducing
//!   Figure 4.
//! * [`rank`] — fractional ranking and Spearman rank correlation, used to
//!   validate simulated workload characterisation against the paper's
//!   published rankings.
//! * [`histogram`] — a log-bucketed HDR histogram for constant-cost latency
//!   recording and cross-invocation merging (§4.4's low-cost measurement
//!   engineering).
//!
//! # Examples
//!
//! ```
//! use chopin_analysis::pca::Pca;
//!
//! // Three observations of two (perfectly correlated) variables: one
//! // principal component explains all of the variance.
//! let data = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
//! let pca = Pca::fit(&data).expect("well-formed input");
//! assert!(pca.explained_variance_ratio()[0] > 0.999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ci;
pub mod descriptive;
pub mod eigen;
pub mod histogram;
pub mod matrix;
pub mod pca;
pub mod rank;
pub mod scaling;

pub use ci::ConfidenceInterval;
pub use descriptive::{geometric_mean, mean, percentile, stddev};
pub use histogram::HdrHistogram;
pub use matrix::Matrix;
pub use pca::Pca;
pub use rank::spearman;
pub use scaling::StandardScaler;

use std::error::Error;
use std::fmt;

/// Error produced by analysis routines when the input data is unusable.
///
/// All public entry points validate their arguments (empty inputs, ragged
/// matrices, non-finite values where finiteness is required) and report the
/// problem through this type rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The input collection was empty where at least one element is required.
    Empty,
    /// Rows of a two-dimensional input had inconsistent lengths.
    Ragged {
        /// Length of the first row.
        expected: usize,
        /// Length of the offending row.
        found: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// A value was not finite (NaN or infinite) where finiteness is required.
    NotFinite {
        /// Description of where the value was found.
        context: &'static str,
    },
    /// The requested quantity is undefined for the given input size.
    InsufficientData {
        /// Number of data points required.
        needed: usize,
        /// Number of data points provided.
        got: usize,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Empty => write!(f, "input is empty"),
            AnalysisError::Ragged {
                expected,
                found,
                row,
            } => write!(
                f,
                "ragged input: row {row} has length {found}, expected {expected}"
            ),
            AnalysisError::NotFinite { context } => {
                write!(f, "non-finite value in {context}")
            }
            AnalysisError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed}, got {got}")
            }
        }
    }
}

impl Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert_eq!(AnalysisError::Empty.to_string(), "input is empty");
        assert_eq!(
            AnalysisError::Ragged {
                expected: 3,
                found: 2,
                row: 1
            }
            .to_string(),
            "ragged input: row 1 has length 2, expected 3"
        );
        assert_eq!(
            AnalysisError::NotFinite { context: "pca" }.to_string(),
            "non-finite value in pca"
        );
        assert_eq!(
            AnalysisError::InsufficientData { needed: 2, got: 1 }.to_string(),
            "insufficient data: needed 2, got 1"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisError>();
    }
}
