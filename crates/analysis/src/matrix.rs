//! A small dense row-major matrix.
//!
//! The PCA in §5.2 operates on a 22 × 33 data matrix and its 33 × 33
//! covariance matrix — tiny by linear-algebra standards — so this module
//! favours clarity and validation over blocked kernels.

use crate::AnalysisError;

/// Dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use chopin_analysis::Matrix;
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.transpose().get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Empty`] when `rows` is empty or the first row
    /// is empty, and [`AnalysisError::Ragged`] when rows differ in length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, AnalysisError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(AnalysisError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(AnalysisError::Ragged {
                    expected: cols,
                    found: r.len(),
                    row: i,
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Set element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self × other`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Ragged`] when the inner dimensions disagree.
    pub fn multiply(&self, other: &Matrix) -> Result<Matrix, AnalysisError> {
        if self.cols != other.rows {
            return Err(AnalysisError::Ragged {
                expected: self.cols,
                found: other.rows,
                row: 0,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        Ok(out)
    }

    /// The covariance matrix of the columns of `self`, treating rows as
    /// observations, with the `n - 1` (sample) denominator. The input is
    /// assumed already centred (zero column means) — which is what
    /// [`crate::scaling::StandardScaler`] produces.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InsufficientData`] when there are fewer than
    /// two rows.
    pub fn covariance_of_centered(&self) -> Result<Matrix, AnalysisError> {
        if self.rows < 2 {
            return Err(AnalysisError::InsufficientData {
                needed: 2,
                got: self.rows,
            });
        }
        let mut cov = Matrix::zeros(self.cols, self.cols);
        let denom = (self.rows - 1) as f64;
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                let v = s / denom;
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }
        Ok(cov)
    }

    /// Maximum absolute off-diagonal element; used to monitor Jacobi
    /// convergence. Returns 0.0 for matrices smaller than 2 × 2.
    pub fn max_off_diagonal(&self) -> f64 {
        let mut m: f64 = 0.0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c {
                    m = m.max(self.get(r, c).abs());
                }
            }
        }
        m
    }

    /// Whether all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_rows_rejects_empty_and_ragged() {
        assert_eq!(Matrix::from_rows(&[]), Err(AnalysisError::Empty));
        assert!(matches!(
            Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0]]),
            Err(AnalysisError::Ragged { row: 1, .. })
        ));
    }

    #[test]
    fn identity_multiplication_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.multiply(&i).unwrap(), m);
        assert_eq!(i.multiply(&m).unwrap(), m);
    }

    #[test]
    fn multiply_checks_dimensions() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.multiply(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn covariance_of_known_data() {
        // Centred columns: x = [-1, 0, 1], y = [-2, 0, 2]. var(x)=1, var(y)=4, cov=2.
        let m = Matrix::from_rows(&[vec![-1.0, -2.0], vec![0.0, 0.0], vec![1.0, 2.0]]).unwrap();
        let cov = m.covariance_of_centered().unwrap();
        assert!((cov.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 4.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 2.0).abs() < 1e-12);
        assert_eq!(cov.get(0, 1), cov.get(1, 0));
    }

    #[test]
    fn covariance_requires_two_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(m.covariance_of_centered().is_err());
    }

    #[test]
    fn row_and_column_views() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_panics_out_of_bounds() {
        Matrix::zeros(1, 1).get(1, 0);
    }

    proptest! {
        #[test]
        fn prop_transpose_swaps_indices(
            rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000
        ) {
            let mut m = Matrix::zeros(rows, cols);
            let mut x = seed as f64;
            for r in 0..rows {
                for c in 0..cols {
                    x = (x * 1103515245.0 + 12345.0) % 1e6;
                    m.set(r, c, x);
                }
            }
            let t = m.transpose();
            for r in 0..rows {
                for c in 0..cols {
                    prop_assert_eq!(m.get(r, c), t.get(c, r));
                }
            }
        }

        #[test]
        fn prop_covariance_is_symmetric_psd_diag(
            rows in 2usize..8, cols in 1usize..5, seed in 0u64..1000
        ) {
            let mut m = Matrix::zeros(rows, cols);
            let mut x = seed as f64 + 1.0;
            for r in 0..rows {
                for c in 0..cols {
                    x = (x * 16807.0) % 2147483647.0;
                    m.set(r, c, x / 2147483647.0 - 0.5);
                }
            }
            // Centre the columns first.
            for c in 0..cols {
                let col_mean: f64 = (0..rows).map(|r| m.get(r, c)).sum::<f64>() / rows as f64;
                for r in 0..rows {
                    let v = m.get(r, c) - col_mean;
                    m.set(r, c, v);
                }
            }
            let cov = m.covariance_of_centered().unwrap();
            for i in 0..cols {
                prop_assert!(cov.get(i, i) >= -1e-12, "diagonal must be non-negative");
                for j in 0..cols {
                    prop_assert!((cov.get(i, j) - cov.get(j, i)).abs() < 1e-12);
                }
            }
        }
    }
}
