//! Standard scaling (zero mean, unit variance per column).
//!
//! §5.2: "We use raw values rather than scores, and apply standard scaling
//! (linear scaling with 0 mean and unit variance)" before principal
//! components analysis.

use crate::descriptive::mean;
use crate::AnalysisError;

/// A fitted standard scaler: per-column mean and standard deviation.
///
/// Columns with zero variance are passed through centred but unscaled
/// (dividing by zero would poison the PCA); such columns carry no
/// information and end up contributing nothing to any principal component.
///
/// # Examples
///
/// ```
/// use chopin_analysis::StandardScaler;
/// # fn main() -> Result<(), chopin_analysis::AnalysisError> {
/// let data = vec![vec![1.0, 10.0], vec![3.0, 30.0]];
/// let scaler = StandardScaler::fit(&data)?;
/// let scaled = scaler.transform(&data)?;
/// // Each column now has mean 0.
/// assert!((scaled[0][0] + scaled[1][0]).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stddevs: Vec<f64>,
}

impl StandardScaler {
    /// Fit the scaler to `data` (rows = observations, columns = variables).
    ///
    /// Uses the *population* standard deviation (`n` denominator), matching
    /// the convention of scikit-learn's `StandardScaler`, which the paper's
    /// analysis pipeline follows.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Empty`] for empty input,
    /// [`AnalysisError::Ragged`] for ragged rows and
    /// [`AnalysisError::NotFinite`] if any cell is not finite.
    pub fn fit(data: &[Vec<f64>]) -> Result<Self, AnalysisError> {
        validate(data)?;
        let cols = data[0].len();
        let n = data.len() as f64;
        let mut means = Vec::with_capacity(cols);
        let mut stddevs = Vec::with_capacity(cols);
        for c in 0..cols {
            let col: Vec<f64> = data.iter().map(|r| r[c]).collect();
            let m = mean(&col)?;
            let var = col.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n;
            means.push(m);
            stddevs.push(var.sqrt());
        }
        Ok(StandardScaler { means, stddevs })
    }

    /// Per-column means learned by [`StandardScaler::fit`].
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column population standard deviations learned by
    /// [`StandardScaler::fit`].
    pub fn stddevs(&self) -> &[f64] {
        &self.stddevs
    }

    /// Apply the fitted scaling to `data`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Ragged`] if the column count differs from the
    /// fitted data, plus the validation errors of [`StandardScaler::fit`].
    pub fn transform(&self, data: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, AnalysisError> {
        validate(data)?;
        if data[0].len() != self.means.len() {
            return Err(AnalysisError::Ragged {
                expected: self.means.len(),
                found: data[0].len(),
                row: 0,
            });
        }
        Ok(data
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, v)| {
                        let centred = v - self.means[c];
                        if self.stddevs[c] > 0.0 {
                            centred / self.stddevs[c]
                        } else {
                            centred
                        }
                    })
                    .collect()
            })
            .collect())
    }

    /// Convenience: fit to `data` and transform it in one call.
    ///
    /// # Errors
    ///
    /// See [`StandardScaler::fit`].
    pub fn fit_transform(data: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, AnalysisError> {
        Self::fit(data)?.transform(data)
    }
}

fn validate(data: &[Vec<f64>]) -> Result<(), AnalysisError> {
    if data.is_empty() || data[0].is_empty() {
        return Err(AnalysisError::Empty);
    }
    let cols = data[0].len();
    for (i, row) in data.iter().enumerate() {
        if row.len() != cols {
            return Err(AnalysisError::Ragged {
                expected: cols,
                found: row.len(),
                row: i,
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(AnalysisError::NotFinite {
                context: "scaler input",
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_rejects_bad_input() {
        assert!(StandardScaler::fit(&[]).is_err());
        assert!(StandardScaler::fit(&[vec![]]).is_err());
        assert!(StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(StandardScaler::fit(&[vec![f64::NAN]]).is_err());
    }

    #[test]
    fn scaled_columns_have_zero_mean_unit_variance() {
        let data = vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ];
        let scaled = StandardScaler::fit_transform(&data).unwrap();
        for c in 0..2 {
            let col: Vec<f64> = scaled.iter().map(|r| r[c]).collect();
            let m: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 = col.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / col.len() as f64;
            assert!(m.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_is_centred_not_scaled() {
        let data = vec![vec![5.0], vec![5.0], vec![5.0]];
        let scaled = StandardScaler::fit_transform(&data).unwrap();
        assert!(scaled.iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn transform_rejects_mismatched_width() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!(scaler.transform(&[vec![1.0]]).is_err());
    }

    proptest! {
        #[test]
        fn prop_scaling_preserves_row_count(
            rows in 1usize..10, cols in 1usize..6, seed in 0i64..1000
        ) {
            let data: Vec<Vec<f64>> = (0..rows)
                .map(|r| (0..cols).map(|c| ((r * 31 + c * 7) as i64 + seed) as f64).collect())
                .collect();
            let scaled = StandardScaler::fit_transform(&data).unwrap();
            prop_assert_eq!(scaled.len(), rows);
            prop_assert!(scaled.iter().all(|r| r.len() == cols));
        }

        #[test]
        fn prop_scaled_mean_is_zero(
            rows in 2usize..12, seed in 0i64..500
        ) {
            let data: Vec<Vec<f64>> = (0..rows)
                .map(|r| vec![((r as i64 * 37 + seed * 13) % 101) as f64])
                .collect();
            let scaled = StandardScaler::fit_transform(&data).unwrap();
            let m: f64 = scaled.iter().map(|r| r[0]).sum::<f64>() / rows as f64;
            prop_assert!(m.abs() < 1e-9);
        }
    }
}
