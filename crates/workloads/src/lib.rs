//! The 22 DaCapo Chopin workload profiles as synthetic drivers for the
//! chopin simulated runtime.
//!
//! A real DaCapo benchmark is hundreds of thousands of lines of Java; what
//! the paper's *evaluation* depends on is each workload's quantitative
//! signature — allocation rate, live-set size and shape, turnover,
//! parallelism, kernel share, request structure. This crate encodes those
//! signatures, calibrated from the paper's published per-benchmark nominal
//! statistics (appendix B), and converts them into
//! [`chopin_runtime::spec::MutatorSpec`]s the simulation engine can run.
//!
//! # Examples
//!
//! ```
//! use chopin_workloads::{suite, SizeClass};
//!
//! let profiles = suite::all();
//! assert_eq!(profiles.len(), 22);
//!
//! let lusearch = suite::by_name("lusearch").expect("in the suite");
//! let spec = lusearch
//!     .to_spec(SizeClass::Default)
//!     .expect("default size exists")
//!     .expect("profile is valid");
//! assert_eq!(spec.threads(), 32, "lusearch has 32 client threads");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod faults;
pub mod profile;
pub mod suite;

pub use profile::{Provenance, RequestSpec, SizeClass, WorkloadProfile};
