//! Named fault presets: ready-made [`FaultPlan`]s scaled to a run horizon.
//!
//! The chaos experiments (and the `--faults` CLI flag) want a small
//! vocabulary of reproducible duress profiles rather than hand-written
//! window lists. Each preset takes a seed and the expected run horizon in
//! simulated nanoseconds and returns a plan whose windows all lie inside
//! that horizon, so the result always passes `FaultPlan::validate` and the
//! lint rules R701–R703.

use chopin_faults::{FaultKind, FaultPlan};

/// Seed substituted when a caller passes zero: a zero seed is rejected for
/// non-empty plans (rule R701), and presets should never hand back a plan
/// that fails validation. The constant is the 64-bit golden-ratio mixing
/// word, chosen for having no accidental meaning.
pub const FALLBACK_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Names of all fault presets, in the order [`preset`] documents them.
pub const PRESET_NAMES: [&str; 6] = [
    "chaos",
    "spike",
    "squeeze",
    "slowdown",
    "storm",
    "degenerate",
];

fn nonzero(seed: u64) -> u64 {
    if seed == 0 {
        FALLBACK_SEED
    } else {
        seed
    }
}

/// Look up a preset by name.
///
/// * `chaos` — all five fault kinds at moderate magnitude, interleaved.
/// * `spike` — allocation-rate spikes (factor 4) over a third of the run.
/// * `squeeze` — transient heap-capacity squeezes (35% of capacity gone).
/// * `slowdown` — GC threads slowed 8x over half the run.
/// * `storm` — pacing-stall storms capping the mutator throttle at 10%.
/// * `degenerate` — windows forcing collections to run degenerate.
///
/// Returns `None` for an unknown name. A zero `seed` is replaced with
/// [`FALLBACK_SEED`] so every returned plan validates.
///
/// # Examples
///
/// ```
/// use chopin_workloads::faults::preset;
///
/// let horizon = 500_000_000; // 500 simulated ms
/// let plan = preset("chaos", 42, horizon).expect("chaos is a preset");
/// plan.validate(Some(horizon)).expect("presets always validate");
/// assert!(preset("tsunami", 42, horizon).is_none());
/// ```
pub fn preset(name: &str, seed: u64, horizon_ns: u64) -> Option<FaultPlan> {
    let seed = nonzero(seed);
    let plan = match name {
        "chaos" => FaultPlan::new(seed)
            .with_storm(FaultKind::AllocSpike { factor: 3.0 }, horizon_ns, 3, 0.2)
            .with_storm(
                FaultKind::HeapSqueeze { fraction: 0.25 },
                horizon_ns,
                2,
                0.15,
            )
            .with_storm(FaultKind::GcSlowdown { factor: 4.0 }, horizon_ns, 3, 0.2)
            .with_storm(FaultKind::StallStorm { throttle: 0.15 }, horizon_ns, 3, 0.1)
            .with_storm(FaultKind::ForceDegenerate, horizon_ns, 2, 0.1),
        "spike" => FaultPlan::new(seed).with_storm(
            FaultKind::AllocSpike { factor: 4.0 },
            horizon_ns,
            4,
            0.35,
        ),
        "squeeze" => FaultPlan::new(seed).with_storm(
            FaultKind::HeapSqueeze { fraction: 0.35 },
            horizon_ns,
            3,
            0.25,
        ),
        "slowdown" => FaultPlan::new(seed).with_storm(
            FaultKind::GcSlowdown { factor: 8.0 },
            horizon_ns,
            3,
            0.5,
        ),
        "storm" => FaultPlan::new(seed).with_storm(
            FaultKind::StallStorm { throttle: 0.1 },
            horizon_ns,
            6,
            0.15,
        ),
        "degenerate" => {
            FaultPlan::new(seed).with_storm(FaultKind::ForceDegenerate, horizon_ns, 3, 0.3)
        }
        _ => return None,
    };
    Some(plan)
}

/// The horizon the `--faults` CLI flag assumes when nothing better is
/// known: 10 simulated seconds covers every suite workload's first
/// measured iterations, and windows past the end of a shorter run simply
/// never fire.
pub const DEFAULT_HORIZON_NS: u64 = 10_000_000_000;

/// Parse a `--faults` flag value of the form `preset` or `preset:seed`
/// (e.g. `chaos`, `spike:42`) into a validated plan over `horizon_ns`.
///
/// # Errors
///
/// A human-readable message naming the valid presets for an unknown name,
/// or the parse failure for a malformed seed.
///
/// # Examples
///
/// ```
/// use chopin_workloads::faults::{parse_flag, DEFAULT_HORIZON_NS};
///
/// let plan = parse_flag("storm:7", DEFAULT_HORIZON_NS).expect("valid flag");
/// assert_eq!(plan.seed, 7);
/// assert!(parse_flag("tsunami", DEFAULT_HORIZON_NS).is_err());
/// ```
pub fn parse_flag(flag: &str, horizon_ns: u64) -> Result<FaultPlan, String> {
    let (name, seed) = match flag.split_once(':') {
        None => (flag, FALLBACK_SEED),
        Some((name, seed)) => (
            name,
            seed.parse::<u64>()
                .map_err(|_| format!("invalid fault seed `{seed}` in `--faults {flag}`"))?,
        ),
    };
    preset(name, seed, horizon_ns).ok_or_else(|| {
        format!(
            "unknown fault preset `{name}`; expected one of {}",
            PRESET_NAMES.join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: u64 = 400_000_000;

    #[test]
    fn every_named_preset_exists_and_validates_within_horizon() {
        for name in PRESET_NAMES {
            let plan = preset(name, 7, HORIZON).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!plan.is_empty(), "{name} schedules no windows");
            plan.validate(Some(HORIZON))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn presets_are_deterministic_in_seed_and_horizon() {
        for name in PRESET_NAMES {
            let a = preset(name, 42, HORIZON).unwrap();
            let b = preset(name, 42, HORIZON).unwrap();
            assert_eq!(a, b, "{name} not deterministic");
            let c = preset(name, 43, HORIZON).unwrap();
            assert_eq!(a.windows.len(), c.windows.len());
        }
    }

    #[test]
    fn zero_seed_is_replaced_so_plans_still_validate() {
        let plan = preset("chaos", 0, HORIZON).unwrap();
        assert_eq!(plan.seed, FALLBACK_SEED);
        plan.validate(Some(HORIZON)).unwrap();
    }

    #[test]
    fn unknown_preset_is_none() {
        assert!(preset("", 1, HORIZON).is_none());
        assert!(preset("Chaos", 1, HORIZON).is_none());
    }

    #[test]
    fn flag_parsing_handles_seeds_and_rejects_junk() {
        assert_eq!(parse_flag("chaos", HORIZON).unwrap().seed, FALLBACK_SEED);
        assert_eq!(parse_flag("spike:42", HORIZON).unwrap().seed, 42);
        assert!(parse_flag("spike:many", HORIZON)
            .unwrap_err()
            .contains("invalid fault seed"));
        let err = parse_flag("tsunami", HORIZON).unwrap_err();
        assert!(err.contains("unknown fault preset"), "{err}");
        assert!(err.contains("chaos"), "lists the valid names: {err}");
    }
}
