//! The 22 DaCapo Chopin workloads, one module per benchmark.
//!
//! "The DaCapo Chopin suite replaces DaCapo Bach, adding eight new
//! benchmarks and removing one." (§5) Each module carries the workload's
//! description from the paper's appendix and its calibrated profile. Nine
//! of the workloads are latency-sensitive and report per-event latency.

pub mod avrora;
pub mod batik;
pub mod biojava;
pub mod cassandra;
pub mod eclipse;
pub mod fop;
pub mod graphchi;
pub mod h2;
pub mod h2o;
pub mod jme;
pub mod jython;
pub mod kafka;
pub mod luindex;
pub mod lusearch;
pub mod pmd;
pub mod spring;
pub mod sunflow;
pub mod tomcat;
pub mod tradebeans;
pub mod tradesoap;
pub mod xalan;
pub mod zxing;

use crate::profile::WorkloadProfile;

/// The full suite, in alphabetical order (the order the paper's tables
/// use).
pub fn all() -> Vec<WorkloadProfile> {
    vec![
        avrora::profile(),
        batik::profile(),
        biojava::profile(),
        cassandra::profile(),
        eclipse::profile(),
        fop::profile(),
        graphchi::profile(),
        h2::profile(),
        h2o::profile(),
        jme::profile(),
        jython::profile(),
        kafka::profile(),
        luindex::profile(),
        lusearch::profile(),
        pmd::profile(),
        spring::profile(),
        sunflow::profile(),
        tomcat::profile(),
        tradebeans::profile(),
        tradesoap::profile(),
        xalan::profile(),
        zxing::profile(),
    ]
}

/// Look up one workload by name.
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    all().into_iter().find(|p| p.name == name)
}

/// Notable characteristics of a workload from the paper's appendix prose.
pub fn highlights(name: &str) -> Option<&'static [&'static str]> {
    Some(match name {
        "avrora" => avrora::highlights(),
        "batik" => batik::highlights(),
        "biojava" => biojava::highlights(),
        "cassandra" => cassandra::highlights(),
        "eclipse" => eclipse::highlights(),
        "fop" => fop::highlights(),
        "graphchi" => graphchi::highlights(),
        "h2" => h2::highlights(),
        "h2o" => h2o::highlights(),
        "jme" => jme::highlights(),
        "jython" => jython::highlights(),
        "kafka" => kafka::highlights(),
        "luindex" => luindex::highlights(),
        "lusearch" => lusearch::highlights(),
        "pmd" => pmd::highlights(),
        "spring" => spring::highlights(),
        "sunflow" => sunflow::highlights(),
        "tomcat" => tomcat::highlights(),
        "tradebeans" => tradebeans::highlights(),
        "tradesoap" => tradesoap::highlights(),
        "xalan" => xalan::highlights(),
        "zxing" => zxing::highlights(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Provenance;

    #[test]
    fn suite_has_twenty_two_workloads() {
        assert_eq!(all().len(), 22);
    }

    #[test]
    fn eight_workloads_are_new_in_chopin() {
        assert_eq!(all().iter().filter(|p| p.new_in_chopin).count(), 8);
    }

    #[test]
    fn nine_workloads_are_latency_sensitive() {
        // §3.2: "it introduces a novel integrated latency measure and nine
        // latency-sensitive workloads".
        assert_eq!(all().iter().filter(|p| p.is_latency_sensitive()).count(), 9);
    }

    #[test]
    fn names_are_unique_and_sorted() {
        let names: Vec<&str> = all().iter().map(|p| p.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted);
    }

    #[test]
    fn min_heaps_span_5mb_to_20gb() {
        // §1: "with minimum heap sizes from 5 MB to 20 GB".
        let min = all()
            .iter()
            .map(|p| p.min_heap_default_mb)
            .fold(f64::INFINITY, f64::min);
        let max = all()
            .iter()
            .filter_map(|p| p.min_heap_vlarge_mb)
            .fold(0.0f64, f64::max);
        assert_eq!(min, 5.0, "avrora's 5 MB minimum");
        assert!(max > 20_000.0, "h2 vlarge exceeds 20 GB: {max}");
    }

    #[test]
    fn by_name_finds_all_and_rejects_unknown() {
        for p in all() {
            assert_eq!(by_name(p.name).unwrap().name, p.name);
        }
        assert!(by_name("dacapo").is_none());
    }

    #[test]
    fn every_workload_has_highlights() {
        for p in all() {
            let h = highlights(p.name).unwrap_or_else(|| panic!("{}", p.name));
            assert!(h.len() >= 3, "{}", p.name);
        }
        assert!(highlights("specjbb").is_none());
    }

    #[test]
    fn every_profile_validates() {
        for p in all() {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn only_truncated_benchmarks_are_estimated() {
        let estimated: Vec<&str> = all()
            .iter()
            .filter(|p| p.provenance == Provenance::Estimated)
            .map(|p| p.name)
            .collect();
        assert_eq!(
            estimated,
            vec!["tomcat", "tradebeans", "tradesoap", "xalan", "zxing"]
        );
    }

    #[test]
    fn h2_has_the_largest_heaps() {
        let h2 = by_name("h2").unwrap();
        for p in all() {
            assert!(p.min_heap_default_mb <= h2.min_heap_default_mb);
        }
        assert_eq!(h2.min_heap_vlarge_mb, Some(20641.0));
    }

    #[test]
    fn lusearch_has_the_highest_allocation_rate() {
        let lu = by_name("lusearch").unwrap();
        for p in all() {
            assert!(p.alloc_rate_mb_s <= lu.alloc_rate_mb_s);
        }
    }
}
