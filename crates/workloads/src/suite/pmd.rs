//! The `pmd` workload.
//!
//! Checks a corpus of Java source code with the PMD static code analyzer; strongly last-level-cache and memory-speed sensitive.
//! This profile is refreshed from the previous DaCapo release.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `pmd`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "pmd",
        description: "Checks a corpus of Java source code with the PMD static code analyzer; strongly last-level-cache and memory-speed sensitive",
        new_in_chopin: false,
        min_heap_default_mb: 191.0,
        min_heap_uncompressed_mb: 269.0,
        min_heap_small_mb: 7.0,
        min_heap_large_mb: Some(3519.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 1.0,
        alloc_rate_mb_s: 6721.0,
        mean_object_size: 32,
        parallel_efficiency_pct: 10.0,
        kernel_pct: 1.0,
        threads: 16,
        turnover: 32.0,
        leak_pct: 5.0,
        warmup_iterations: 7,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 11.0,
        memory_sensitivity_pct: 19.0,
        llc_sensitivity_pct: 31.0,
        forced_c2_pct: 179.0,
        interpreter_pct: 74.0,
        survival_fraction: 0.0869,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `pmd` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "static analysis of a Java source corpus (~120 KLOC analyzer)",
    "among the most LLC-size- and memory-speed-sensitive workloads (PLS 31%, PMS 19%)",
    "one of the least generational workloads (GCM rank 1) and slow to warm up (PWU 7)",
    "the strongest uncompressed-pointer inflation used in our ZGC minimum-heap tests (GMU/GMD 1.41)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // strong pointer inflation (GMU).
        assert_eq!(p.min_heap_uncompressed_mb, 269.0);
        // PMS.
        assert_eq!(p.memory_sensitivity_pct, 19.0);
        // PLS.
        assert_eq!(p.llc_sensitivity_pct, 31.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "pmd");
    }
}
