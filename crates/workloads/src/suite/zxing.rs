//! The `zxing` workload.
//!
//! Decodes a corpus of 1-D and 2-D barcode images with the ZXing barcode library; exhibits the largest iteration-to-iteration memory leakage in the suite.
//! This profile is one of the eight workloads new in Chopin.
//!
//! The appendix table for this benchmark is truncated in our source text;
//! values not present in Table 2 are estimated (see DESIGN.md, D4).

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `zxing`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "zxing",
        description: "Decodes a corpus of 1-D and 2-D barcode images with the ZXing barcode library; exhibits the largest iteration-to-iteration memory leakage in the suite",
        new_in_chopin: true,
        min_heap_default_mb: 102.0,
        min_heap_uncompressed_mb: 127.0,
        min_heap_small_mb: 50.0,
        min_heap_large_mb: None,
        min_heap_vlarge_mb: None,
        exec_time_s: 1.0,
        alloc_rate_mb_s: 2500.0,
        mean_object_size: 60,
        parallel_efficiency_pct: 25.0,
        kernel_pct: 5.0,
        threads: 16,
        turnover: 40.0,
        leak_pct: 120.0,
        warmup_iterations: 7,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: -1.0,
        memory_sensitivity_pct: 8.0,
        llc_sensitivity_pct: 10.0,
        forced_c2_pct: 220.0,
        interpreter_pct: 70.0,
        survival_fraction: 0.0775,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Estimated,
    }
}

/// Notable characteristics of `zxing` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
        "decodes 1-D and 2-D barcode images with the ZXing library",
        "the largest iteration-to-iteration memory leakage in the suite (GLK 120%)",
        "the only workload slowed by enabling frequency boost (PFS -1%)",
        "appendix table truncated in our source: non-Table-2 cells are estimates",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the largest leakage in the suite (GLK).
        assert_eq!(p.leak_pct, 120.0);
        // slowed by frequency boost (PFS).
        assert_eq!(p.freq_sensitivity_pct, -1.0);
        // PWU.
        assert_eq!(p.warmup_iterations, 7);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "zxing");
    }
}
