//! The `lusearch` workload.
//!
//! Issues search queries against the Apache Lucene search engine from 32 client threads; the highest allocation rate and memory turnover in the suite.
//! This profile is refreshed from the previous DaCapo release.

use crate::profile::{Provenance, RequestSpec, WorkloadProfile};

/// The published/calibrated profile for `lusearch`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "lusearch",
        description: "Issues search queries against the Apache Lucene search engine from 32 client threads; the highest allocation rate and memory turnover in the suite",
        new_in_chopin: false,
        min_heap_default_mb: 19.0,
        min_heap_uncompressed_mb: 21.0,
        min_heap_small_mb: 5.0,
        min_heap_large_mb: Some(109.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 2.0,
        alloc_rate_mb_s: 23556.0,
        mean_object_size: 75,
        parallel_efficiency_pct: 34.0,
        kernel_pct: 7.0,
        threads: 32,
        turnover: 1211.0,
        leak_pct: 0.0,
        warmup_iterations: 8,
        invocation_noise_pct: 3.0,
        freq_sensitivity_pct: 11.0,
        memory_sensitivity_pct: 9.0,
        llc_sensitivity_pct: 19.0,
        forced_c2_pct: 172.0,
        interpreter_pct: 202.0,
        survival_fraction: 0.0412,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: Some(RequestSpec {
            count: 100000,
            workers: 32,
            dispersion: 0.6,
        }),
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `lusearch` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "32 client threads issuing search queries against a Lucene index",
    "the highest allocation rate (23.5 GB/s) and memory turnover (GTO 1211) in the suite",
    "the most GCs at 2x heap (GCC 22408) and among the highest GC pause shares (GCP 32%)",
    "Shenandoah's allocation pacer collapses its wall-clock time: the paper's Figure 5 case study",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the highest allocation rate (ARA).
        assert_eq!(p.alloc_rate_mb_s, 23556.0);
        // the highest memory turnover (GTO).
        assert_eq!(p.turnover, 1211.0);
        // 32 client threads.
        assert_eq!(p.threads, 32);
        // PWU.
        assert_eq!(p.warmup_iterations, 8);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "lusearch");
    }
}
