//! The `biojava` workload.
//!
//! Generates ten physico-chemical properties of protein sequences using the BioJava framework; the highest-IPC, most compute-bound workload in the suite.
//! This profile is one of the eight workloads new in Chopin.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `biojava`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "biojava",
        description: "Generates ten physico-chemical properties of protein sequences using the BioJava framework; the highest-IPC, most compute-bound workload in the suite",
        new_in_chopin: true,
        min_heap_default_mb: 93.0,
        min_heap_uncompressed_mb: 183.0,
        min_heap_small_mb: 7.0,
        min_heap_large_mb: Some(1027.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 5.0,
        alloc_rate_mb_s: 2041.0,
        mean_object_size: 28,
        parallel_efficiency_pct: 5.0,
        kernel_pct: 1.0,
        threads: 4,
        turnover: 102.0,
        leak_pct: 0.0,
        warmup_iterations: 1,
        invocation_noise_pct: 0.3,
        freq_sensitivity_pct: 19.0,
        memory_sensitivity_pct: 0.0,
        llc_sensitivity_pct: 1.0,
        forced_c2_pct: 224.0,
        interpreter_pct: 106.0,
        survival_fraction: 0.0547,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `biojava` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
        "computes physico-chemical properties of protein sequences (>300 KLOC framework)",
        "the tightest hot-code focus (BEF) and the highest IPC in the suite (4.76)",
        "the lowest data-cache miss rate and among the lowest stalls of any kind",
        "one of the most heap-size-sensitive benchmarks (GSS 7107%)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // nearly 2x pointer inflation.
        assert_eq!(p.min_heap_uncompressed_mb, 183.0);
        // PET.
        assert_eq!(p.exec_time_s, 5.0);
        // ARA.
        assert_eq!(p.alloc_rate_mb_s, 2041.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "biojava");
    }
}
