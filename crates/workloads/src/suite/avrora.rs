//! The `avrora` workload.
//!
//! Simulates a number of programs run on a grid of AVR micro-controllers; each simulated entity is a thread, giving a high degree of fine-grained concurrency.
//! This profile is refreshed from the previous DaCapo release.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `avrora`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "avrora",
        description: "Simulates a number of programs run on a grid of AVR micro-controllers; each simulated entity is a thread, giving a high degree of fine-grained concurrency",
        new_in_chopin: false,
        min_heap_default_mb: 5.0,
        min_heap_uncompressed_mb: 7.0,
        min_heap_small_mb: 5.0,
        min_heap_large_mb: Some(15.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 4.0,
        alloc_rate_mb_s: 56.0,
        mean_object_size: 34,
        parallel_efficiency_pct: 3.0,
        kernel_pct: 56.0,
        threads: 27,
        turnover: 33.0,
        leak_pct: 0.0,
        warmup_iterations: 2,
        invocation_noise_pct: 4.0,
        freq_sensitivity_pct: 18.0,
        memory_sensitivity_pct: 6.0,
        llc_sensitivity_pct: 2.0,
        forced_c2_pct: 83.0,
        interpreter_pct: 7.0,
        survival_fraction: 0.0855,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `avrora` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "one of the most unusual workloads in the suite: each simulated micro-controller entity is a thread, giving very fine-grained concurrency",
    "second lowest allocation rate in the suite (ARA) and the highest share of kernel time (PKP 56%)",
    "the most front-end-bound workload (USF rank 1), likely due to heavy use of locking primitives",
    "highly concurrent yet with very low parallel efficiency (PPE 3%)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the smallest minimum heap in the suite.
        assert_eq!(p.min_heap_default_mb, 5.0);
        // the highest kernel share (PKP).
        assert_eq!(p.kernel_pct, 56.0);
        // second-lowest allocation rate.
        assert_eq!(p.alloc_rate_mb_s, 56.0);
        // fine-grained per-entity concurrency.
        assert_eq!(p.threads, 27);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "avrora");
    }
}
