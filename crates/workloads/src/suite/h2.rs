//! The `h2` workload.
//!
//! Executes a TPC-C-like transactional workload over the H2 in-memory database: builds a large database, then times 100000 queries against it.
//! This profile is refreshed from the previous DaCapo release.

use crate::profile::{Provenance, RequestSpec, WorkloadProfile};

/// The published/calibrated profile for `h2`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "h2",
        description: "Executes a TPC-C-like transactional workload over the H2 in-memory database: builds a large database, then times 100000 queries against it",
        new_in_chopin: false,
        min_heap_default_mb: 681.0,
        min_heap_uncompressed_mb: 903.0,
        min_heap_small_mb: 69.0,
        min_heap_large_mb: Some(10201.0),
        min_heap_vlarge_mb: Some(20641.0),
        exec_time_s: 2.0,
        alloc_rate_mb_s: 11858.0,
        mean_object_size: 41,
        parallel_efficiency_pct: 24.0,
        kernel_pct: 0.0,
        threads: 16,
        turnover: 30.0,
        leak_pct: 0.0,
        warmup_iterations: 2,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 5.0,
        memory_sensitivity_pct: 40.0,
        llc_sensitivity_pct: 31.0,
        forced_c2_pct: 87.0,
        interpreter_pct: 55.0,
        survival_fraction: 0.09,
        live_floor_fraction: 0.12,
        build_fraction: 0.3,
        requests: Some(RequestSpec {
            count: 20000,
            workers: 16,
            dispersion: 1.2,
        }),
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `h2` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
        "TPC-C-like transactions over an in-memory database: build a large database, then query it",
        "the largest heaps in the suite: 681 MB default, 10.2 GB large, 20.6 GB vlarge",
        "very low memory turnover (GTO) but the strongest memory-speed sensitivity (PMS 40%)",
        "its latency distributions under the five collectors are the paper's Figure 6 case study",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the largest default minimum heap.
        assert_eq!(p.min_heap_default_mb, 681.0);
        // the 20 GB vlarge configuration.
        assert_eq!(p.min_heap_vlarge_mb, Some(20641.0));
        // the most DRAM-sensitive workload (PMS).
        assert_eq!(p.memory_sensitivity_pct, 40.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "h2");
    }
}
