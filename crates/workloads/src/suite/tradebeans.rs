//! The `tradebeans` workload.
//!
//! Runs the DayTrader stock-trading benchmark via EJB beans on an in-memory h2 database under Apache Geronimo.
//! This profile is refreshed from the previous DaCapo release.
//!
//! The appendix table for this benchmark is truncated in our source text;
//! values not present in Table 2 are estimated (see DESIGN.md, D4).

use crate::profile::{Provenance, RequestSpec, WorkloadProfile};

/// The published/calibrated profile for `tradebeans`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "tradebeans",
        description: "Runs the DayTrader stock-trading benchmark via EJB beans on an in-memory h2 database under Apache Geronimo",
        new_in_chopin: false,
        min_heap_default_mb: 113.0,
        min_heap_uncompressed_mb: 141.0,
        min_heap_small_mb: 60.0,
        min_heap_large_mb: None,
        min_heap_vlarge_mb: None,
        exec_time_s: 1.0,
        alloc_rate_mb_s: 1500.0,
        mean_object_size: 40,
        parallel_efficiency_pct: 12.0,
        kernel_pct: 2.0,
        threads: 8,
        turnover: 60.0,
        leak_pct: 26.0,
        warmup_iterations: 6,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 17.0,
        memory_sensitivity_pct: 5.0,
        llc_sensitivity_pct: 8.0,
        forced_c2_pct: 250.0,
        interpreter_pct: 80.0,
        survival_fraction: 0.065,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: Some(RequestSpec {
            count: 8000,
            workers: 8,
            dispersion: 0.8,
        }),
        provenance: Provenance::Estimated,
    }
}

/// Notable characteristics of `tradebeans` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
        "the DayTrader stock-trading benchmark via EJB beans over an in-memory h2 database",
        "leaks noticeably across iterations (GLK 26%)",
        "the second-largest ARM-vs-x86 slowdown in the suite (UAA 144)",
        "appendix table truncated in our source: non-Table-2 cells are estimates",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // GLK (published in Table 2).
        assert_eq!(p.leak_pct, 26.0);
        // GMU (published in Table 2).
        assert_eq!(p.min_heap_uncompressed_mb, 141.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "tradebeans");
    }
}
