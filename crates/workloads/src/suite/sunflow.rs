//! The `sunflow` workload.
//!
//! Renders photorealistic images with the Sunflow ray tracer; nearly ideal parallel scalability and a very high allocation rate.
//! This profile is refreshed from the previous DaCapo release.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `sunflow`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "sunflow",
        description: "Renders photorealistic images with the Sunflow ray tracer; nearly ideal parallel scalability and a very high allocation rate",
        new_in_chopin: false,
        min_heap_default_mb: 29.0,
        min_heap_uncompressed_mb: 31.0,
        min_heap_small_mb: 5.0,
        min_heap_large_mb: Some(149.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 3.0,
        alloc_rate_mb_s: 10518.0,
        mean_object_size: 40,
        parallel_efficiency_pct: 87.0,
        kernel_pct: 1.0,
        threads: 32,
        turnover: 711.0,
        leak_pct: 0.0,
        warmup_iterations: 6,
        invocation_noise_pct: 13.0,
        freq_sensitivity_pct: 16.0,
        memory_sensitivity_pct: 5.0,
        llc_sensitivity_pct: -2.0,
        forced_c2_pct: 200.0,
        interpreter_pct: 150.0,
        survival_fraction: 0.0421,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `sunflow` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "photorealistic ray tracing across 32 threads",
    "nearly ideal parallel scalability (the highest PPE in the suite) with a very high allocation rate",
    "the least LLC-size-sensitive workload (PLS -2%) and the noisiest between invocations (PSD 13%)",
    "the highest aaload and getfield rates in the suite (BAL, BGF)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the best parallel scaling in the suite (PPE).
        assert_eq!(p.parallel_efficiency_pct, 87.0);
        // the noisiest benchmark between invocations (PSD).
        assert_eq!(p.invocation_noise_pct, 13.0);
        // the only negative LLC sensitivity.
        assert_eq!(p.llc_sensitivity_pct, -2.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "sunflow");
    }
}
