//! The `batik` workload.
//!
//! Renders a number of SVG files with the Apache Batik scalable vector graphics toolkit.
//! This profile is refreshed from the previous DaCapo release.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `batik`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "batik",
        description:
            "Renders a number of SVG files with the Apache Batik scalable vector graphics toolkit",
        new_in_chopin: false,
        min_heap_default_mb: 175.0,
        min_heap_uncompressed_mb: 229.0,
        min_heap_small_mb: 19.0,
        min_heap_large_mb: Some(1759.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 2.0,
        alloc_rate_mb_s: 506.0,
        mean_object_size: 58,
        parallel_efficiency_pct: 4.0,
        kernel_pct: 0.0,
        threads: 4,
        turnover: 3.0,
        leak_pct: 0.0,
        warmup_iterations: 4,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 20.0,
        memory_sensitivity_pct: 2.0,
        llc_sensitivity_pct: 0.0,
        forced_c2_pct: 306.0,
        interpreter_pct: 24.0,
        survival_fraction: 0.35,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `batik` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "renders SVG files with a ~400 KLOC Apache toolkit",
    "the lowest memory turnover in the suite (GTO 3) and the most frequency-scaling-sensitive workload (PFS 20%)",
    "among the most back-end-bound workloads yet with one of the highest IPCs",
    "its large configuration needs a 1.7 GB minimum heap",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the lowest memory turnover (GTO).
        assert_eq!(p.turnover, 3.0);
        // the most frequency-sensitive workload.
        assert_eq!(p.freq_sensitivity_pct, 20.0);
        // a 1.7 GB large configuration.
        assert_eq!(p.min_heap_large_mb, Some(1759.0));
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "batik");
    }
}
