//! The `xalan` workload.
//!
//! Transforms XML documents into HTML with the Apache Xalan XSLT processor; poor locality with very high data-cache, LLC and DTLB miss rates.
//! This profile is refreshed from the previous DaCapo release.
//!
//! The appendix table for this benchmark is truncated in our source text;
//! values not present in Table 2 are estimated (see DESIGN.md, D4).

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `xalan`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "xalan",
        description: "Transforms XML documents into HTML with the Apache Xalan XSLT processor; poor locality with very high data-cache, LLC and DTLB miss rates",
        new_in_chopin: false,
        min_heap_default_mb: 14.0,
        min_heap_uncompressed_mb: 17.0,
        min_heap_small_mb: 7.0,
        min_heap_large_mb: None,
        min_heap_vlarge_mb: None,
        exec_time_s: 1.0,
        alloc_rate_mb_s: 9000.0,
        mean_object_size: 32,
        parallel_efficiency_pct: 45.0,
        kernel_pct: 14.0,
        threads: 32,
        turnover: 300.0,
        leak_pct: 7.0,
        warmup_iterations: 1,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 12.0,
        memory_sensitivity_pct: 15.0,
        llc_sensitivity_pct: 25.0,
        forced_c2_pct: 180.0,
        interpreter_pct: 100.0,
        survival_fraction: 0.045,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Estimated,
    }
}

/// Notable characteristics of `xalan` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "XSLT transformation of XML documents to HTML across 32 threads",
    "poor locality is key to its low IPC (~0.94): very high data-cache, LLC and DTLB miss rates",
    "sensitive to LLC size (PLS) and fast to warm up (PWU 1)",
    "appendix table truncated in our source: non-Table-2 cells are estimates",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // PKP (published in Table 2).
        assert_eq!(p.kernel_pct, 14.0);
        // the fastest warmup (PWU).
        assert_eq!(p.warmup_iterations, 1);
        // 32 transformation threads.
        assert_eq!(p.threads, 32);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "xalan");
    }
}
