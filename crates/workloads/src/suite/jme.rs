//! The `jme` workload.
//!
//! Renders a series of video frames with jMonkeyEngine, a 3-D game engine; the least GC-intensive workload, reporting per-frame latency.
//! This profile is one of the eight workloads new in Chopin.

use crate::profile::{Provenance, RequestSpec, WorkloadProfile};

/// The published/calibrated profile for `jme`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "jme",
        description: "Renders a series of video frames with jMonkeyEngine, a 3-D game engine; the least GC-intensive workload, reporting per-frame latency",
        new_in_chopin: true,
        min_heap_default_mb: 29.0,
        min_heap_uncompressed_mb: 29.0,
        min_heap_small_mb: 29.0,
        min_heap_large_mb: Some(29.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 7.0,
        alloc_rate_mb_s: 54.0,
        mean_object_size: 42,
        parallel_efficiency_pct: 3.0,
        kernel_pct: 8.0,
        threads: 4,
        turnover: 12.0,
        leak_pct: 0.0,
        warmup_iterations: 1,
        invocation_noise_pct: 0.3,
        freq_sensitivity_pct: 0.0,
        memory_sensitivity_pct: 0.0,
        llc_sensitivity_pct: 0.0,
        forced_c2_pct: 72.0,
        interpreter_pct: 1.0,
        survival_fraction: 0.04,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: Some(RequestSpec {
            count: 420,
            workers: 1,
            dispersion: 0.2,
        }),
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `jme` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
        "renders video frames with the jMonkeyEngine 3-D game engine, reporting per-frame latency",
        "the least GC-intensive workload in the suite (31 collections at 2x heap)",
        "insensitive to frequency scaling, compiler choice and heap size, consistent with GPU use",
        "the lowest SMT contention in the suite (USC)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // completely frequency-insensitive.
        assert_eq!(p.freq_sensitivity_pct, 0.0);
        // the second-lowest turnover.
        assert_eq!(p.turnover, 12.0);
        // PET.
        assert_eq!(p.exec_time_s, 7.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "jme");
    }
}
