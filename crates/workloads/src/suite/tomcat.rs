//! The `tomcat` workload.
//!
//! Serves a series of HTTP requests with the Apache Tomcat servlet container against a deterministic client workload.
//! This profile is refreshed from the previous DaCapo release.
//!
//! The appendix table for this benchmark is truncated in our source text;
//! values not present in Table 2 are estimated (see DESIGN.md, D4).

use crate::profile::{Provenance, RequestSpec, WorkloadProfile};

/// The published/calibrated profile for `tomcat`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "tomcat",
        description: "Serves a series of HTTP requests with the Apache Tomcat servlet container against a deterministic client workload",
        new_in_chopin: false,
        min_heap_default_mb: 19.0,
        min_heap_uncompressed_mb: 24.0,
        min_heap_small_mb: 12.0,
        min_heap_large_mb: None,
        min_heap_vlarge_mb: None,
        exec_time_s: 4.0,
        alloc_rate_mb_s: 2000.0,
        mean_object_size: 48,
        parallel_efficiency_pct: 20.0,
        kernel_pct: 19.0,
        threads: 32,
        turnover: 90.0,
        leak_pct: 0.0,
        warmup_iterations: 2,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 2.0,
        memory_sensitivity_pct: 2.0,
        llc_sensitivity_pct: 3.0,
        forced_c2_pct: 200.0,
        interpreter_pct: 60.0,
        survival_fraction: 0.0567,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: Some(RequestSpec {
            count: 64000,
            workers: 32,
            dispersion: 0.7,
        }),
        provenance: Provenance::Estimated,
    }
}

/// Notable characteristics of `tomcat` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
        "serves HTTP requests through the Tomcat servlet container against a deterministic client",
        "kernel-heavy (PKP 19%) and insensitive to CPU frequency (PFS 2%)",
        "among the most front-end-bound workloads (USF 45)",
        "appendix table truncated in our source: non-Table-2 cells are estimates",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // kernel-heavy request serving.
        assert_eq!(p.kernel_pct, 19.0);
        // PET (published in Table 2).
        assert_eq!(p.exec_time_s, 4.0);
        // GMU (published in Table 2).
        assert_eq!(p.min_heap_uncompressed_mb, 24.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "tomcat");
    }
}
