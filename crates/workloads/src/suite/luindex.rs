//! The `luindex` workload.
//!
//! Builds a search index from a document corpus with the Apache Lucene search engine; allocates the largest objects in the suite.
//! This profile is refreshed from the previous DaCapo release.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `luindex`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "luindex",
        description: "Builds a search index from a document corpus with the Apache Lucene search engine; allocates the largest objects in the suite",
        new_in_chopin: false,
        min_heap_default_mb: 29.0,
        min_heap_uncompressed_mb: 31.0,
        min_heap_small_mb: 13.0,
        min_heap_large_mb: Some(37.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 3.0,
        alloc_rate_mb_s: 841.0,
        mean_object_size: 211,
        parallel_efficiency_pct: 3.0,
        kernel_pct: 2.0,
        threads: 2,
        turnover: 76.0,
        leak_pct: 0.0,
        warmup_iterations: 2,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 18.0,
        memory_sensitivity_pct: 2.0,
        llc_sensitivity_pct: 38.0,
        forced_c2_pct: 201.0,
        interpreter_pct: 61.0,
        survival_fraction: 0.0597,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `luindex` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
        "builds a Lucene search index from a document corpus (~830 KLOC framework)",
        "allocates the largest objects in the suite (AOA 211 bytes)",
        "the second most LLC-size-sensitive workload (PLS 38%)",
        "high IPC despite among the worst bad-speculation rates",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the largest objects in the suite (AOA).
        assert_eq!(p.mean_object_size, 211);
        // among the most LLC-sensitive (PLS).
        assert_eq!(p.llc_sensitivity_pct, 38.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "luindex");
    }
}
