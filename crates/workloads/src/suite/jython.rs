//! The `jython` workload.
//!
//! Executes a standard Python performance test on Jython, a Java implementation of Python; spends its time in a small but poorly predicted interpreter loop.
//! This profile is refreshed from the previous DaCapo release.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `jython`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "jython",
        description: "Executes a standard Python performance test on Jython, a Java implementation of Python; spends its time in a small but poorly predicted interpreter loop",
        new_in_chopin: false,
        min_heap_default_mb: 25.0,
        min_heap_uncompressed_mb: 31.0,
        min_heap_small_mb: 25.0,
        min_heap_large_mb: Some(25.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 3.0,
        alloc_rate_mb_s: 1462.0,
        mean_object_size: 37,
        parallel_efficiency_pct: 5.0,
        kernel_pct: 1.0,
        threads: 2,
        turnover: 139.0,
        leak_pct: 0.0,
        warmup_iterations: 9,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 20.0,
        memory_sensitivity_pct: 0.0,
        llc_sensitivity_pct: 1.0,
        forced_c2_pct: 211.0,
        interpreter_pct: 277.0,
        survival_fraction: 0.0508,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `jython` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "a standard Python performance test running on a Java implementation of Python",
    "the most unique function calls in the suite (BUF rank 1) and the slowest warmup (PWU 9)",
    "spends its time in a small but poorly predicted interpreter loop: very high mispredict stalls",
    "tied for the most frequency-scaling-sensitive workload (PFS 20%)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the slowest warmup in the suite (PWU).
        assert_eq!(p.warmup_iterations, 9);
        // PIN.
        assert_eq!(p.interpreter_pct, 277.0);
        // GMD.
        assert_eq!(p.min_heap_default_mb, 25.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "jython");
    }
}
