//! The `h2o` workload.
//!
//! Performs machine learning over the citibike trip dataset on the H2O ML platform; the most memory-bound, lowest-IPC workload in the suite.
//! This profile is one of the eight workloads new in Chopin.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `h2o`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "h2o",
        description: "Performs machine learning over the citibike trip dataset on the H2O ML platform; the most memory-bound, lowest-IPC workload in the suite",
        new_in_chopin: true,
        min_heap_default_mb: 72.0,
        min_heap_uncompressed_mb: 73.0,
        min_heap_small_mb: 29.0,
        min_heap_large_mb: Some(2543.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 3.0,
        alloc_rate_mb_s: 5740.0,
        mean_object_size: 142,
        parallel_efficiency_pct: 4.0,
        kernel_pct: 4.0,
        threads: 16,
        turnover: 187.0,
        leak_pct: 17.0,
        warmup_iterations: 4,
        invocation_noise_pct: 2.0,
        freq_sensitivity_pct: 9.0,
        memory_sensitivity_pct: 21.0,
        llc_sensitivity_pct: 11.0,
        forced_c2_pct: 207.0,
        interpreter_pct: 57.0,
        survival_fraction: 0.048,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `h2o` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "machine learning over the citibike trip dataset on the H2O platform",
    "the lowest IPC in the suite (0.89): the most back-end-bound, highest LLC-miss-rate workload",
    "very sensitive to DRAM speed (PMS 21%) and one of the noisiest between invocations (PSD)",
    "leaks moderately across iterations (GLK 17%)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // among the largest average objects (AOA).
        assert_eq!(p.mean_object_size, 142);
        // GLK.
        assert_eq!(p.leak_pct, 17.0);
        // GTO.
        assert_eq!(p.turnover, 187.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "h2o");
    }
}
