//! The `spring` workload.
//!
//! Runs the petclinic workload over the Spring Boot microservices framework with a deterministic request stream replacing the synthetic load generator.
//! This profile is one of the eight workloads new in Chopin.

use crate::profile::{Provenance, RequestSpec, WorkloadProfile};

/// The published/calibrated profile for `spring`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "spring",
        description: "Runs the petclinic workload over the Spring Boot microservices framework with a deterministic request stream replacing the synthetic load generator",
        new_in_chopin: true,
        min_heap_default_mb: 55.0,
        min_heap_uncompressed_mb: 70.0,
        min_heap_small_mb: 43.0,
        min_heap_large_mb: Some(65.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 2.0,
        alloc_rate_mb_s: 10849.0,
        mean_object_size: 70,
        parallel_efficiency_pct: 36.0,
        kernel_pct: 7.0,
        threads: 32,
        turnover: 283.0,
        leak_pct: 0.0,
        warmup_iterations: 2,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 8.0,
        memory_sensitivity_pct: 20.0,
        llc_sensitivity_pct: 6.0,
        forced_c2_pct: 162.0,
        interpreter_pct: 110.0,
        survival_fraction: 0.0453,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: Some(RequestSpec {
            count: 32000,
            workers: 32,
            dispersion: 0.6,
        }),
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `spring` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
        "the petclinic workload on Spring Boot with a deterministic request stream",
        "one of the highest unique bytecode and function-call counts in the suite",
        "strong memory-speed sensitivity (PMS 20%) and high parallel efficiency (PPE 36%)",
        "one of the nine latency-sensitive workloads",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the second-highest parallel efficiency.
        assert_eq!(p.parallel_efficiency_pct, 36.0);
        // GTO.
        assert_eq!(p.turnover, 283.0);
        // GMD.
        assert_eq!(p.min_heap_default_mb, 55.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "spring");
    }
}
