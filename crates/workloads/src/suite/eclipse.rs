//! The `eclipse` workload.
//!
//! Executes the Eclipse IDE's performance tests; the tightest hot-code focus and strongest compiler sensitivity in the suite.
//! This profile is refreshed from the previous DaCapo release.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `eclipse`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "eclipse",
        description: "Executes the Eclipse IDE's performance tests; the tightest hot-code focus and strongest compiler sensitivity in the suite",
        new_in_chopin: false,
        min_heap_default_mb: 135.0,
        min_heap_uncompressed_mb: 167.0,
        min_heap_small_mb: 13.0,
        min_heap_large_mb: Some(139.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 8.0,
        alloc_rate_mb_s: 1043.0,
        mean_object_size: 84,
        parallel_efficiency_pct: 5.0,
        kernel_pct: 6.0,
        threads: 4,
        turnover: 52.0,
        leak_pct: 1.0,
        warmup_iterations: 3,
        invocation_noise_pct: 0.3,
        freq_sensitivity_pct: 18.0,
        memory_sensitivity_pct: 5.0,
        llc_sensitivity_pct: 23.0,
        forced_c2_pct: 349.0,
        interpreter_pct: 224.0,
        survival_fraction: 0.0688,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `eclipse` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
        "runs the Eclipse IDE performance tests over a >6 MLOC codebase",
        "the highest concentration of hot code (BEF rank 1)",
        "among the most compiler-configuration-sensitive workloads (PCC, PCS)",
        "suffers high bad speculation from branch mispredicts (UBP, UBS)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the longest nominal execution time.
        assert_eq!(p.exec_time_s, 8.0);
        // GMD.
        assert_eq!(p.min_heap_default_mb, 135.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "eclipse");
    }
}
