//! The `fop` workload.
//!
//! Renders XSL-FO files into PDF with the Apache FOP print formatter; executes the most unique bytecodes of any workload.
//! This profile is refreshed from the previous DaCapo release.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `fop`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "fop",
        description: "Renders XSL-FO files into PDF with the Apache FOP print formatter; executes the most unique bytecodes of any workload",
        new_in_chopin: false,
        min_heap_default_mb: 13.0,
        min_heap_uncompressed_mb: 17.0,
        min_heap_small_mb: 9.0,
        min_heap_large_mb: None,
        min_heap_vlarge_mb: None,
        exec_time_s: 1.0,
        alloc_rate_mb_s: 3340.0,
        mean_object_size: 58,
        parallel_efficiency_pct: 9.0,
        kernel_pct: 2.0,
        threads: 2,
        turnover: 75.0,
        leak_pct: 0.0,
        warmup_iterations: 8,
        invocation_noise_pct: 0.3,
        freq_sensitivity_pct: 13.0,
        memory_sensitivity_pct: 12.0,
        llc_sensitivity_pct: 37.0,
        forced_c2_pct: 1083.0,
        interpreter_pct: 23.0,
        survival_fraction: 0.06,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `fop` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "renders XSL-FO documents to PDF (>400 KLOC framework)",
    "executes the most unique bytecodes in the suite (BUB rank 1)",
    "one of the slowest benchmarks to warm up (PWU 8) and among the most heap-size sensitive (GSS)",
    "one of the highest shares of time in GC pauses at 2x heap (GCP 23%)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the highest forced-C2 cost (PCC).
        assert_eq!(p.forced_c2_pct, 1083.0);
        // slow to warm up.
        assert_eq!(p.warmup_iterations, 8);
        // GMD.
        assert_eq!(p.min_heap_default_mb, 13.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "fop");
    }
}
