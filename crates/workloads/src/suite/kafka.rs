//! The `kafka` workload.
//!
//! Issues requests against the Apache Kafka publish-subscribe messaging framework; kernel-intensive and insensitive to heap size.
//! This profile is one of the eight workloads new in Chopin.

use crate::profile::{Provenance, RequestSpec, WorkloadProfile};

/// The published/calibrated profile for `kafka`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "kafka",
        description: "Issues requests against the Apache Kafka publish-subscribe messaging framework; kernel-intensive and insensitive to heap size",
        new_in_chopin: true,
        min_heap_default_mb: 201.0,
        min_heap_uncompressed_mb: 208.0,
        min_heap_small_mb: 157.0,
        min_heap_large_mb: Some(345.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 6.0,
        alloc_rate_mb_s: 803.0,
        mean_object_size: 54,
        parallel_efficiency_pct: 3.0,
        kernel_pct: 25.0,
        threads: 8,
        turnover: 19.0,
        leak_pct: 0.0,
        warmup_iterations: 3,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 1.0,
        memory_sensitivity_pct: 0.0,
        llc_sensitivity_pct: 0.0,
        forced_c2_pct: 255.0,
        interpreter_pct: 34.0,
        survival_fraction: 0.03,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: Some(RequestSpec {
            count: 60000,
            workers: 8,
            dispersion: 0.7,
        }),
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `kafka` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "issues requests against the Kafka publish-subscribe framework (~840 KLOC of Java and Scala)",
    "kernel-intensive (PKP 25%) and completely insensitive to heap size (GSS 0)",
    "very high data-cache and LLC miss rates; among the most front-end-bound workloads",
    "insensitive to CPU frequency and memory speed",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // kernel-intensive (PKP).
        assert_eq!(p.kernel_pct, 25.0);
        // GMD.
        assert_eq!(p.min_heap_default_mb, 201.0);
        // frequency-insensitive.
        assert_eq!(p.freq_sensitivity_pct, 1.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "kafka");
    }
}
