//! The `graphchi` workload.
//!
//! Performs ALS matrix factorization over the Netflix Challenge dataset with the Java port of the GraphChi out-of-core graph engine.
//! This profile is one of the eight workloads new in Chopin.

use crate::profile::{Provenance, WorkloadProfile};

/// The published/calibrated profile for `graphchi`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "graphchi",
        description: "Performs ALS matrix factorization over the Netflix Challenge dataset with the Java port of the GraphChi out-of-core graph engine",
        new_in_chopin: true,
        min_heap_default_mb: 175.0,
        min_heap_uncompressed_mb: 179.0,
        min_heap_small_mb: 141.0,
        min_heap_large_mb: Some(1183.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 3.0,
        alloc_rate_mb_s: 2737.0,
        mean_object_size: 110,
        parallel_efficiency_pct: 9.0,
        kernel_pct: 1.0,
        threads: 16,
        turnover: 38.0,
        leak_pct: 0.0,
        warmup_iterations: 2,
        invocation_noise_pct: 1.0,
        freq_sensitivity_pct: 14.0,
        memory_sensitivity_pct: 10.0,
        llc_sensitivity_pct: 5.0,
        forced_c2_pct: 276.0,
        interpreter_pct: 323.0,
        survival_fraction: 0.0795,
        live_floor_fraction: 0.55,
        build_fraction: 0.08,
        requests: None,
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `graphchi` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
        "ALS matrix factorization of the Netflix Challenge dataset on the GraphChi engine",
        "the most compiler-sensitive workload in the suite (PCS rank 1)",
        "the lowest front-end stalls and bad speculation, one of the best IPCs",
        "its large configuration needs a 1.1 GB minimum heap",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // the most interpreter-sensitive workload (PIN).
        assert_eq!(p.interpreter_pct, 323.0);
        // an unusually large small configuration.
        assert_eq!(p.min_heap_small_mb, 141.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "graphchi");
    }
}
