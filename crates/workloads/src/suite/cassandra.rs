//! The `cassandra` workload.
//!
//! Executes the Yahoo! Cloud Serving Benchmark (YCSB) over the Apache Cassandra NoSQL database management system.
//! This profile is one of the eight workloads new in Chopin.

use crate::profile::{Provenance, RequestSpec, WorkloadProfile};

/// The published/calibrated profile for `cassandra`.
pub fn profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "cassandra",
        description: "Executes the Yahoo! Cloud Serving Benchmark (YCSB) over the Apache Cassandra NoSQL database management system",
        new_in_chopin: true,
        min_heap_default_mb: 174.0,
        // The seed data carried GMU = 142 < GMD, which is physically
        // impossible (uncompressed pointers cannot shrink the footprint);
        // the engine floored the inflation ratio to 1.0, so GMU = GMD
        // preserves behaviour while making the statistics self-consistent.
        min_heap_uncompressed_mb: 174.0,
        min_heap_small_mb: 77.0,
        min_heap_large_mb: Some(174.0),
        min_heap_vlarge_mb: None,
        exec_time_s: 6.0,
        alloc_rate_mb_s: 890.0,
        mean_object_size: 40,
        parallel_efficiency_pct: 13.0,
        kernel_pct: 11.0,
        threads: 32,
        turnover: 34.0,
        leak_pct: 46.0,
        warmup_iterations: 2,
        invocation_noise_pct: 0.3,
        freq_sensitivity_pct: 2.0,
        memory_sensitivity_pct: 2.0,
        llc_sensitivity_pct: 3.0,
        forced_c2_pct: 60.0,
        interpreter_pct: 31.0,
        survival_fraction: 0.0841,
        live_floor_fraction: 0.6,
        build_fraction: 0.08,
        requests: Some(RequestSpec {
            count: 100000,
            workers: 32,
            dispersion: 0.8,
        }),
        provenance: Provenance::Published,
    }
}

/// Notable characteristics of `cassandra` from the paper's appendix prose,
/// for reports and documentation.
pub fn highlights() -> &'static [&'static str] {
    &[
    "YCSB over the Apache Cassandra NoSQL database (~700 KLOC), reporting request latencies",
    "one of the least GC-intensive workloads (GCP) but leaks memory across iterations (GLK 46%)",
    "the highest DTLB miss rate in the suite (UDT) with very high data- and last-level-cache miss rates",
    "its wall/task-clock divergence under concurrent collectors is the paper's Figure 5 case study",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_internally_consistent() {
        profile().validate().unwrap();
    }

    #[test]
    fn highlights_are_present() {
        assert!(highlights().len() >= 3);
        assert!(highlights().iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn published_values_are_transcribed_faithfully() {
        let p = profile();
        // leaks across iterations (GLK).
        assert_eq!(p.leak_pct, 46.0);
        // 32 YCSB client threads.
        assert_eq!(p.threads, 32);
        // PET.
        assert_eq!(p.exec_time_s, 6.0);
    }

    #[test]
    fn name_matches_module() {
        assert_eq!(profile().name, "cassandra");
    }
}
