//! Workload profiles: the published characteristics of each DaCapo Chopin
//! benchmark, and their conversion into runnable [`MutatorSpec`]s.
//!
//! Each profile is parameterised from the paper's per-benchmark nominal
//! statistics (appendix B): minimum heap sizes (GMD/GMS/GML/GMV/GMU),
//! execution time (PET), allocation rate (ARA), mean object size (AOA),
//! parallel efficiency (PPE), kernel share (PKP), memory turnover (GTO),
//! leakage (GLK), warmup (PWU) and invocation noise (PSD). Where the source
//! text of the paper truncates a benchmark's table, values are estimated
//! and flagged via [`Provenance::Estimated`].

use chopin_runtime::spec::{MutatorSpec, RequestProfile, SpecError};
use chopin_runtime::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a profile's calibration numbers come straight from the paper's
/// appendix tables or were estimated for benchmarks whose tables are
/// truncated in our source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// Values transcribed from the paper.
    Published,
    /// Values estimated from Table 2 plus the paper's prose (documented in
    /// DESIGN.md).
    Estimated,
}

/// The DaCapo Chopin workload size classes.
///
/// §3.2: "its workloads have minimum heap sizes ranging from 5 MB to
/// 20 GB" across the small/default/large/vlarge configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SizeClass {
    /// The `small` input configuration.
    Small,
    /// The `default` input configuration — what the paper's evaluation uses.
    Default,
    /// The `large` input configuration.
    Large,
    /// The `vlarge` input configuration (only h2 provides one, at 20 GB).
    VLarge,
}

impl SizeClass {
    /// All size classes in ascending order.
    pub const ALL: [SizeClass; 4] = [
        SizeClass::Small,
        SizeClass::Default,
        SizeClass::Large,
        SizeClass::VLarge,
    ];
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SizeClass::Small => "small",
            SizeClass::Default => "default",
            SizeClass::Large => "large",
            SizeClass::VLarge => "vlarge",
        };
        f.write_str(s)
    }
}

/// Request structure for the nine latency-sensitive workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Number of timed events in the default configuration.
    pub count: u32,
    /// Worker threads consuming the pre-determined request stream.
    pub workers: u32,
    /// Log-normal dispersion of per-request demand.
    pub dispersion: f64,
}

/// A complete, documented workload profile.
///
/// Fields mirror the nominal statistics they are calibrated from; see the
/// module docs. All heap quantities are in megabytes, matching the paper's
/// tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name, lower-case, as used by the suite (`-b` flags etc.).
    pub name: &'static str,
    /// One-line description from the paper's appendix.
    pub description: &'static str,
    /// Whether the workload is new in Chopin (§5: eight entirely new).
    pub new_in_chopin: bool,
    /// Minimum heap, default size, compressed pointers (GMD, MB).
    pub min_heap_default_mb: f64,
    /// Minimum heap, default size, uncompressed pointers (GMU, MB).
    pub min_heap_uncompressed_mb: f64,
    /// Minimum heap, small size (GMS, MB).
    pub min_heap_small_mb: f64,
    /// Minimum heap, large size (GML, MB), if the workload has one.
    pub min_heap_large_mb: Option<f64>,
    /// Minimum heap, vlarge size (GMV, MB), if the workload has one.
    pub min_heap_vlarge_mb: Option<f64>,
    /// Nominal execution time in seconds (PET).
    pub exec_time_s: f64,
    /// Nominal allocation rate in bytes/µs ≡ MB/s (ARA).
    pub alloc_rate_mb_s: f64,
    /// Nominal average object size in bytes (AOA).
    pub mean_object_size: u64,
    /// Nominal parallel efficiency as a percentage of ideal 32-thread
    /// speedup (PPE).
    pub parallel_efficiency_pct: f64,
    /// Nominal percentage of time in kernel mode (PKP).
    pub kernel_pct: f64,
    /// Application thread count.
    pub threads: u32,
    /// Memory turnover: total allocation / minimum heap (GTO).
    pub turnover: f64,
    /// Percent 10th-iteration memory leakage (GLK).
    pub leak_pct: f64,
    /// Iterations to warm up to within 1.5 % of best (PWU).
    pub warmup_iterations: u32,
    /// Invocation-to-invocation standard deviation in percent (PSD).
    pub invocation_noise_pct: f64,
    /// Percentage speedup from CPU frequency scaling (PFS) — used by the
    /// architectural-sensitivity experiments.
    pub freq_sensitivity_pct: f64,
    /// Percentage slowdown under the paper's slow-DRAM profile (PMS).
    pub memory_sensitivity_pct: f64,
    /// Percentage slowdown under the 1/16-LLC restriction (PLS).
    pub llc_sensitivity_pct: f64,
    /// Percentage slowdown under forced C2 compilation (PCC).
    pub forced_c2_pct: f64,
    /// Percentage slowdown under the interpreter (PIN).
    pub interpreter_pct: f64,
    /// Fraction of fresh allocation surviving its first collection
    /// (calibrated, not a published statistic).
    pub survival_fraction: f64,
    /// Live floor as a fraction of the live peak (calibrated).
    pub live_floor_fraction: f64,
    /// Fraction of the run over which the live set ramps up (calibrated;
    /// large for build-then-query workloads like h2).
    pub build_fraction: f64,
    /// Request structure for latency-sensitive workloads.
    pub requests: Option<RequestSpec>,
    /// Whether the numbers are published or estimated.
    pub provenance: Provenance,
}

/// Live peak as a fraction of the published minimum heap: the minimum heap
/// includes the collector's minimum working headroom, which the engine's
/// futility threshold models; 0.90 places the simulated minimum heap within
/// a few percent of GMD.
const LIVE_PEAK_OF_MIN_HEAP: f64 = 0.90;

const MB: f64 = (1u64 << 20) as f64;

impl WorkloadProfile {
    /// Whether this workload reports per-event latency.
    pub fn is_latency_sensitive(&self) -> bool {
        self.requests.is_some()
    }

    /// The heap scale factor of `size` relative to the default size, from
    /// the published per-size minimum heaps. Returns `None` when the
    /// workload does not provide that size class.
    pub fn size_scale(&self, size: SizeClass) -> Option<f64> {
        match size {
            SizeClass::Small => Some(self.min_heap_small_mb / self.min_heap_default_mb),
            SizeClass::Default => Some(1.0),
            SizeClass::Large => self.min_heap_large_mb.map(|l| l / self.min_heap_default_mb),
            SizeClass::VLarge => self
                .min_heap_vlarge_mb
                .map(|v| v / self.min_heap_default_mb),
        }
    }

    /// The nominal minimum heap of `size`, in bytes.
    pub fn min_heap_bytes(&self, size: SizeClass) -> Option<u64> {
        let mb = match size {
            SizeClass::Small => Some(self.min_heap_small_mb),
            SizeClass::Default => Some(self.min_heap_default_mb),
            SizeClass::Large => self.min_heap_large_mb,
            SizeClass::VLarge => self.min_heap_vlarge_mb,
        }?;
        Some((mb * MB) as u64)
    }

    /// Total allocation per iteration in bytes, derived from the published
    /// memory turnover: GTO × GMD. (Deriving it from ARA × PET instead
    /// would compound PET's rounding to whole seconds — the published GTO,
    /// GMD and ARA columns are mutually consistent, PET is coarse.)
    pub fn total_allocation_bytes(&self) -> u64 {
        (self.turnover * self.min_heap_default_mb * MB) as u64
    }

    /// Execution time implied by the published allocation rate and
    /// turnover: total allocation / ARA. Falls back to PET if degenerate.
    pub fn derived_exec_time_s(&self) -> f64 {
        let t = self.total_allocation_bytes() as f64 / (self.alloc_rate_mb_s * MB);
        if t.is_finite() && t > 1e-3 {
            t
        } else {
            self.exec_time_s
        }
    }

    /// Total useful CPU work per iteration: the derived execution time
    /// multiplied by the effective CPUs the workload keeps busy.
    pub fn total_work(&self) -> SimDuration {
        let eff = self.effective_cpus();
        SimDuration::from_secs_f64(self.derived_exec_time_s() * eff)
    }

    /// Effective CPUs from the PPE statistic (percentage of ideal 32-thread
    /// speedup on the paper's machine).
    pub fn effective_cpus(&self) -> f64 {
        (32.0 * self.parallel_efficiency_pct / 100.0).max(1.0)
    }

    /// The per-thread parallel-efficiency parameter that reproduces
    /// [`WorkloadProfile::effective_cpus`] with this thread count.
    pub fn parallel_efficiency_param(&self) -> f64 {
        if self.threads <= 1 {
            return 1.0;
        }
        ((self.effective_cpus() - 1.0) / (self.threads - 1) as f64).clamp(0.0, 1.0)
    }

    /// Uncompressed-pointer footprint inflation (GMU / GMD, floored at 1).
    pub fn uncompressed_inflation(&self) -> f64 {
        (self.min_heap_uncompressed_mb / self.min_heap_default_mb).max(1.0)
    }

    /// Build the runnable [`MutatorSpec`] for `size`, optionally scaling the
    /// live set by `live_scale` (used by the iteration layer to model the
    /// GLK leakage statistic across iterations).
    ///
    /// Returns `None` when the workload does not provide the requested size
    /// class.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] if the calibration numbers are inconsistent
    /// (only possible for hand-edited profiles).
    pub fn to_spec_scaled(
        &self,
        size: SizeClass,
        live_scale: f64,
    ) -> Option<Result<MutatorSpec, SpecError>> {
        let scale = self.size_scale(size)?;
        let live_peak =
            (self.min_heap_default_mb * MB * LIVE_PEAK_OF_MIN_HEAP * scale * live_scale) as u64;
        let live_floor = (live_peak as f64 * self.live_floor_fraction) as u64;
        let total_alloc = (self.total_allocation_bytes() as f64 * scale) as u64;
        let total_work = self.total_work().mul_f64(scale);

        let mut builder = MutatorSpec::builder(self.name)
            .threads(self.threads)
            .parallel_efficiency(self.parallel_efficiency_param())
            .kernel_fraction((self.kernel_pct / 100.0).clamp(0.0, 1.0))
            .total_work(total_work)
            .total_allocation(total_alloc.max(1))
            .mean_object_size(self.mean_object_size)
            .live_range(live_floor.max(1 << 20), live_peak.max(1 << 20))
            .build_fraction(self.build_fraction)
            .survival_fraction(self.survival_fraction)
            .uncompressed_inflation(self.uncompressed_inflation())
            // Core Performance Boost adds ~20% clock; the PFS statistic
            // records how much of it each workload realises.
            .freq_sensitivity((self.freq_sensitivity_pct / 20.0).clamp(0.0, 1.0))
            .memory_sensitivity((self.memory_sensitivity_pct / 100.0).max(0.0))
            .llc_sensitivity((self.llc_sensitivity_pct / 100.0).max(-0.05))
            .forced_c2_cost((self.forced_c2_pct / 100.0).max(0.0))
            .interpreter_cost((self.interpreter_pct / 100.0).max(0.0));
        if let Some(r) = &self.requests {
            builder = builder.requests(RequestProfile {
                count: ((r.count as f64 * scale).round() as u32).max(16),
                workers: r.workers,
                dispersion: r.dispersion,
            });
        }
        Some(builder.build())
    }

    /// Build the runnable [`MutatorSpec`] for `size` with no live-set
    /// scaling. See [`WorkloadProfile::to_spec_scaled`].
    pub fn to_spec(&self, size: SizeClass) -> Option<Result<MutatorSpec, SpecError>> {
        self.to_spec_scaled(size, 1.0)
    }

    /// Sanity-check the profile's calibration numbers.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("name must be non-empty".into());
        }
        if self.min_heap_default_mb <= 0.0 {
            return Err(format!("{}: GMD must be positive", self.name));
        }
        if !(self.min_heap_small_mb > 0.0 && self.min_heap_small_mb <= self.min_heap_default_mb) {
            return Err(format!("{}: GMS must lie in (0, GMD]", self.name));
        }
        if let Some(l) = self.min_heap_large_mb {
            if l < self.min_heap_default_mb {
                return Err(format!("{}: GML must be at least GMD", self.name));
            }
        }
        if !(self.exec_time_s > 0.0 && self.alloc_rate_mb_s > 0.0) {
            return Err(format!("{}: PET and ARA must be positive", self.name));
        }
        if self.threads == 0 {
            return Err(format!("{}: threads must be positive", self.name));
        }
        if !(0.0..=100.0).contains(&self.parallel_efficiency_pct) {
            return Err(format!("{}: PPE must lie in [0, 100]", self.name));
        }
        if !(0.0..=100.0).contains(&self.kernel_pct) {
            return Err(format!("{}: PKP must lie in [0, 100]", self.name));
        }
        if !(0.0..=1.0).contains(&self.survival_fraction) {
            return Err(format!("{}: survival must lie in [0, 1]", self.name));
        }
        // The spec builder enforces the rest.
        match self.to_spec(SizeClass::Default) {
            Some(Ok(_)) => Ok(()),
            Some(Err(e)) => Err(format!("{}: {e}", self.name)),
            None => Err(format!("{}: default size must exist", self.name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> WorkloadProfile {
        WorkloadProfile {
            name: "toy",
            description: "test profile",
            new_in_chopin: false,
            min_heap_default_mb: 100.0,
            min_heap_uncompressed_mb: 130.0,
            min_heap_small_mb: 20.0,
            min_heap_large_mb: Some(1000.0),
            min_heap_vlarge_mb: None,
            exec_time_s: 2.0,
            alloc_rate_mb_s: 1000.0,
            mean_object_size: 64,
            parallel_efficiency_pct: 25.0,
            kernel_pct: 5.0,
            threads: 16,
            turnover: 20.0,
            leak_pct: 0.0,
            warmup_iterations: 3,
            invocation_noise_pct: 1.0,
            freq_sensitivity_pct: 10.0,
            memory_sensitivity_pct: 5.0,
            llc_sensitivity_pct: 5.0,
            forced_c2_pct: 100.0,
            interpreter_pct: 60.0,
            survival_fraction: 0.05,
            live_floor_fraction: 0.5,
            build_fraction: 0.1,
            requests: Some(RequestSpec {
                count: 1000,
                workers: 16,
                dispersion: 0.5,
            }),
            provenance: Provenance::Published,
        }
    }

    #[test]
    fn toy_profile_validates_and_builds() {
        let p = toy();
        p.validate().unwrap();
        let spec = p.to_spec(SizeClass::Default).unwrap().unwrap();
        assert_eq!(spec.name(), "toy");
        assert_eq!(spec.threads(), 16);
        assert!(spec.requests().is_some());
    }

    #[test]
    fn effective_cpus_from_ppe() {
        let p = toy();
        assert_eq!(p.effective_cpus(), 8.0); // 32 × 25%
        let eff = p.parallel_efficiency_param();
        assert!((eff - 7.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn size_scaling_follows_published_min_heaps() {
        let p = toy();
        assert_eq!(p.size_scale(SizeClass::Small), Some(0.2));
        assert_eq!(p.size_scale(SizeClass::Large), Some(10.0));
        assert_eq!(p.size_scale(SizeClass::VLarge), None);
        assert_eq!(p.min_heap_bytes(SizeClass::Default), Some(100 * (1 << 20)));
    }

    #[test]
    fn large_size_scales_work_allocation_and_requests() {
        let p = toy();
        let d = p.to_spec(SizeClass::Default).unwrap().unwrap();
        let l = p.to_spec(SizeClass::Large).unwrap().unwrap();
        assert!(l.total_allocation() > 9 * d.total_allocation());
        assert!(l.total_work() > d.total_work() * 9);
        assert!(l.requests().unwrap().count > 9 * d.requests().unwrap().count);
    }

    #[test]
    fn live_scale_inflates_live_set_only() {
        let p = toy();
        let base = p.to_spec_scaled(SizeClass::Default, 1.0).unwrap().unwrap();
        let leaky = p.to_spec_scaled(SizeClass::Default, 1.5).unwrap().unwrap();
        assert!(leaky.live_peak() > base.live_peak());
        assert_eq!(leaky.total_allocation(), base.total_allocation());
    }

    #[test]
    fn inflation_is_gmu_over_gmd() {
        assert!((toy().uncompressed_inflation() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut p = toy();
        p.min_heap_small_mb = 200.0;
        assert!(p.validate().is_err());
        let mut p = toy();
        p.parallel_efficiency_pct = 200.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn single_thread_param_is_one() {
        let mut p = toy();
        p.threads = 1;
        assert_eq!(p.parallel_efficiency_param(), 1.0);
    }
}
