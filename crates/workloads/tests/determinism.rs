//! The suite-wide determinism guard required by the fault-injection work:
//! with no fault plan and no observer, every one of the 22 workload
//! profiles must produce a bit-identical [`RunResult`] run after run, and
//! attaching an observer (which routes through the same
//! `run_with_observer_and_faults` entry point as fault injection) must not
//! perturb a single bit.
//!
//! This is the contract that lets the chaos experiments trust a clean
//! baseline: if the no-fault path ever diverges from the pre-fault-plane
//! engine, every A/B comparison against faulted runs is invalid.

use chopin_obs::{EventRecorder, MetricsObserver, Tee};
use chopin_runtime::collector::CollectorKind;
use chopin_runtime::config::RunConfig;
use chopin_runtime::engine::{run, run_with_observer};
use chopin_workloads::{suite, SizeClass};

#[test]
fn all_22_workloads_are_bit_identical_without_faults_or_observers() {
    let profiles = suite::all();
    assert_eq!(profiles.len(), 22, "the full DaCapo Chopin suite");

    for (i, profile) in profiles.iter().enumerate() {
        let spec = profile
            .to_spec(SizeClass::Default)
            .expect("default size exists")
            .expect("profile is valid");
        let min_heap = profile
            .min_heap_bytes(SizeClass::Default)
            .expect("default size exists");
        // A comfortable heap so every profile completes, and a rotating
        // collector so all five engine paths get suite coverage.
        let collector = CollectorKind::ALL[i % CollectorKind::ALL.len()];
        let config = RunConfig::new(min_heap * 3, collector);

        let first = run(&spec, &config).map_err(|e| e.to_string());
        let second = run(&spec, &config).map_err(|e| e.to_string());
        assert_eq!(
            first, second,
            "{}/{collector:?}: repeated runs must be bit-identical",
            profile.name
        );

        let mut tee = Tee(EventRecorder::new(), MetricsObserver::new());
        let observed = run_with_observer(&spec, &config, &mut tee).map_err(|e| e.to_string());
        assert_eq!(
            first, observed,
            "{}/{collector:?}: an observer must not perturb the run",
            profile.name
        );
    }
}
