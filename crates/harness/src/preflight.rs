//! The default pre-flight gate: compile the command line into a
//! [`PlanIR`] and refuse to start an experiment the static analyses
//! prove broken.
//!
//! Every runnable binary (`runbms`, `lbo`, `latency`, `suite`) calls
//! [`gate`] after resolving its flags and before simulating anything.
//! Analyzer *errors* (R801, R803, R804, R806, R808, provenance errors)
//! abort with exit code 2 and a rendered diagnostic table; *warnings*
//! are printed but do not block. `--no-preflight` skips the gate
//! entirely — the escape hatch for deliberately running a plan the
//! analyses reject.
//!
//! The module also owns the named plan registry behind `artifact
//! analyze --plan NAME`: one [`PlanIR`] per shipped preset (the exact
//! configurations the presets execute) plus the deliberately broken
//! `demo:*` plans from [`chopin_analyzer::demo`].

use crate::cli::Args;
use crate::sandbox::{hard_plan_from_args, isolation_from_args, sandbox_policy_from_args};
use crate::supervisor::{plan_from_args, policy_from_args, supervision_requested};
use chopin_analyzer::{demo, Methodology, PlanIR};
use chopin_core::sweep::SweepConfig;
use chopin_core::Suite;
use chopin_faults::SupervisorPolicy;
use chopin_lint::LintReport;
use chopin_runtime::collector::CollectorKind;
use chopin_workloads::{suite, SizeClass, WorkloadProfile};

/// Every named shipped plan `artifact analyze --plan` accepts, beyond
/// the `demo:*` family.
pub const PLAN_NAMES: [&str; 7] = [
    "default",
    "quick",
    "lbo",
    "latency",
    "kick-the-tires",
    "validate",
    "chaos",
];

fn resolve_profiles(benchmarks: &[String]) -> Result<Vec<WorkloadProfile>, String> {
    let mut profiles = Vec::with_capacity(benchmarks.len());
    for name in benchmarks {
        profiles.push(suite::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?);
    }
    Ok(profiles)
}

fn whole_suite() -> Vec<String> {
    Suite::chopin()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Compile the plan a binary is about to execute from its resolved
/// flags: faults from `--faults`, the supervisor policy from
/// `--cell-deadline`/`--retries`/`--backoff-ms` when supervision is
/// requested (no watchdog otherwise), journalling from `--journal`,
/// the isolation backend from `--isolation`, the sandbox policy from
/// `--heartbeat-ms`/`--rlimit-as-mb`/`--rlimit-cpu-s` and hard faults
/// from `--hard-faults`, the fleet shape from
/// `--fleet`/`--lease-deadline`, the net-fault shim from `--net-faults`
/// and the standby registration from `--fleet-standby` — so the R90x
/// sandbox, R120x fleet and R140x partition-tolerance analyses see
/// exactly what the run would do.
///
/// # Errors
///
/// A human-readable message for an unknown benchmark, a malformed
/// supervisor flag or a profile without a minimum heap at the plan's
/// size class.
pub fn plan_for_args(
    name: &str,
    methodology: Methodology,
    benchmarks: &[String],
    config: &SweepConfig,
    args: &Args,
) -> Result<PlanIR, String> {
    let profiles = resolve_profiles(benchmarks)?;
    let faults = plan_from_args(args)?;
    let policy = if supervision_requested(args) {
        policy_from_args(args)?
    } else {
        // An unsupervised run has no watchdog: nothing for R808 to bound.
        SupervisorPolicy {
            cell_deadline_ms: None,
            ..SupervisorPolicy::default()
        }
    };
    let fleet = crate::fleet::fleet_config_from_args(args)?;
    let (fleet_plan, net_faults, standby) = match fleet {
        Some(config) => {
            let standby = config.standby_of.is_some();
            (Some(config.plan), config.net, standby)
        }
        None => (None, None, false),
    };
    Ok(PlanIR::compile(
        name,
        methodology,
        &profiles,
        config.clone(),
        faults,
        policy,
        args.has("journal") || args.has("resume"),
    )?
    .with_isolation(isolation_from_args(args)?)
    .with_sandbox(sandbox_policy_from_args(args)?)
    .with_hard_faults(hard_plan_from_args(args)?)
    .with_fleet(fleet_plan)
    .with_net_faults(net_faults)
    .with_standby(standby))
}

/// Run the analyses over `plan` and return the findings (rule order).
/// Pure — the rendering/exit policy lives in [`gate`].
pub fn preflight_report(plan: &PlanIR) -> LintReport {
    chopin_analyzer::analyze(plan)
}

/// The binaries' pre-flight gate. Prints findings to stderr; returns
/// `Err(2)` when the plan fails to compile or has analyzer errors
/// (unless `--no-preflight`). The caller — always a bin entry point —
/// turns the code into a process exit; library code keeps destructors
/// and journals intact (srclint R1006).
pub fn gate(args: &Args, plan: Result<PlanIR, String>) -> Result<(), i32> {
    if args.has("no-preflight") {
        eprintln!("preflight: skipped (--no-preflight)");
        return Ok(());
    }
    let plan = match plan {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return Err(2);
        }
    };
    let report = preflight_report(&plan);
    if report.has_errors() {
        eprint!("{}", report.render_table());
        eprintln!(
            "preflight: {} error(s) in plan `{}`; fix the plan or rerun with --no-preflight",
            report.error_count(),
            plan.name
        );
        return Err(2);
    }
    if report.warn_count() > 0 {
        eprint!("{}", report.render_table());
    }
    eprintln!(
        "preflight: plan `{}` OK ({} warning(s))",
        plan.name,
        report.warn_count()
    );
    Ok(())
}

fn compile_shipped(
    name: &str,
    methodology: Methodology,
    benchmarks: &[String],
    config: SweepConfig,
    faults: Option<chopin_faults::FaultPlan>,
    policy: SupervisorPolicy,
) -> PlanIR {
    let profiles = resolve_profiles(benchmarks)
        .unwrap_or_else(|e| unreachable!("shipped plan `{name}` references the suite: {e}"));
    PlanIR::compile(name, methodology, &profiles, config, faults, policy, false)
        .unwrap_or_else(|e| unreachable!("shipped plan `{name}` compiles: {e}"))
}

/// Build a named plan: a shipped preset from [`PLAN_NAMES`] or a
/// deliberately broken [`demo`] plan. `None` for unknown names.
pub fn plan_by_name(name: &str) -> Option<PlanIR> {
    if name.starts_with("demo:") {
        return demo::demo_plan(name);
    }
    let no_watchdog = SupervisorPolicy {
        cell_deadline_ms: None,
        ..SupervisorPolicy::default()
    };
    let plan = match name {
        // The default runbms sweep: the whole suite over the paper grid.
        "default" => compile_shipped(
            name,
            Methodology::Sweep,
            &whole_suite(),
            SweepConfig::default(),
            None,
            no_watchdog,
        ),
        // runbms/lbo --quick: the coarse smoke grid.
        "quick" => compile_shipped(
            name,
            Methodology::Sweep,
            &whole_suite(),
            SweepConfig::quick(),
            None,
            no_watchdog,
        ),
        // artifact lbo (Figures 1 and 5).
        "lbo" => compile_shipped(
            name,
            Methodology::Lbo,
            &whole_suite(),
            crate::presets::lbo_sweep_config(),
            None,
            no_watchdog,
        ),
        // artifact latency (Figures 3 and 6): the two figure benchmarks.
        "latency" => compile_shipped(
            name,
            Methodology::Latency,
            &["cassandra".to_string(), "h2".to_string()],
            SweepConfig {
                collectors: CollectorKind::ALL.to_vec(),
                heap_factors: crate::presets::LATENCY_HEAP_FACTORS.to_vec(),
                invocations: 1,
                iterations: 2,
                size: SizeClass::Default,
            },
            None,
            no_watchdog,
        ),
        // artifact kick-the-tires (A.5): fop on G1 and ZGC at 2x and 6x.
        "kick-the-tires" => compile_shipped(
            name,
            Methodology::Sweep,
            &["fop".to_string()],
            SweepConfig {
                collectors: vec![CollectorKind::G1, CollectorKind::Zgc],
                heap_factors: crate::presets::KICK_THE_TIRES_HEAP_FACTORS.to_vec(),
                invocations: 1,
                iterations: 2,
                size: SizeClass::Default,
            },
            None,
            no_watchdog,
        ),
        // artifact validate: the scorecard's coarse suite sweep. The
        // scorecard reports per-run telemetry, so warmup rules do not
        // apply (Methodology::Suite).
        "validate" => compile_shipped(
            name,
            Methodology::Suite,
            &whole_suite(),
            crate::validate::scorecard_sweep_config(),
            None,
            no_watchdog,
        ),
        // artifact chaos: fop + lusearch under the chaos fault preset,
        // supervised with the default policy.
        "chaos" => compile_shipped(
            name,
            Methodology::Sweep,
            &["fop".to_string(), "lusearch".to_string()],
            crate::presets::chaos_sweep_config(),
            chopin_workloads::faults::preset(
                "chaos",
                chopin_workloads::faults::FALLBACK_SEED,
                chopin_workloads::faults::DEFAULT_HORIZON_NS,
            ),
            SupervisorPolicy::default(),
        ),
        _ => return None,
    };
    Some(plan)
}

/// Every shipped plan, compiled — the `artifact analyze --check` corpus.
pub fn shipped_plans() -> Vec<PlanIR> {
    PLAN_NAMES
        .iter()
        .map(|name| plan_by_name(name).unwrap_or_else(|| unreachable!("{name} is shipped")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_plan_analyzes_error_free() {
        for plan in shipped_plans() {
            let report = preflight_report(&plan);
            assert!(
                !report.has_errors(),
                "shipped plan `{}` must be error-free:\n{}",
                plan.name,
                report.render_table()
            );
        }
    }

    #[test]
    fn every_demo_plan_resolves_and_errors() {
        for (name, rule) in demo::DEMOS {
            let plan = plan_by_name(name).unwrap_or_else(|| panic!("{name} resolves"));
            let report = preflight_report(&plan);
            assert!(report.has_errors(), "{name} must have errors");
            assert!(
                report.diagnostics.iter().any(|d| d.rule == rule),
                "{name} trips {rule}"
            );
        }
    }

    #[test]
    fn unknown_plan_names_are_rejected() {
        assert!(plan_by_name("nope").is_none());
        assert!(plan_by_name("demo:nope").is_none());
    }

    #[test]
    fn plan_for_args_reads_supervisor_flags() {
        let args = Args::parse([
            "--faults",
            "chaos:9",
            "--journal",
            "x.journal",
            "--cell-deadline",
            "1000",
        ]);
        let plan = plan_for_args(
            "runbms",
            Methodology::Sweep,
            &["fop".to_string()],
            &SweepConfig::quick(),
            &args,
        )
        .expect("compiles");
        assert!(plan.faults.is_some());
        assert!(plan.journalled);
        assert_eq!(plan.policy.cell_deadline_ms, Some(1000));

        let bare = plan_for_args(
            "runbms",
            Methodology::Sweep,
            &["fop".to_string()],
            &SweepConfig::quick(),
            &Args::parse(Vec::<String>::new()),
        )
        .expect("compiles");
        assert_eq!(
            bare.policy.cell_deadline_ms, None,
            "no watchdog unsupervised"
        );

        assert!(plan_for_args(
            "runbms",
            Methodology::Sweep,
            &["no-such-benchmark".to_string()],
            &SweepConfig::quick(),
            &Args::parse(Vec::<String>::new()),
        )
        .is_err());
    }

    #[test]
    fn plan_for_args_reads_partition_tolerance_flags() {
        // A stormed, standby-watched, journalled fleet compiles into an
        // IR the R140x analyses accept.
        let args = Args::parse([
            "--fleet",
            "2",
            "--net-faults",
            "storm:7",
            "--fleet-standby",
            "127.0.0.1:7070",
            "--journal",
            "x.journal",
        ]);
        let plan = plan_for_args(
            "runbms",
            Methodology::Sweep,
            &["fop".to_string()],
            &SweepConfig::quick(),
            &args,
        )
        .expect("compiles");
        assert!(plan.fleet.is_some());
        assert!(plan.net_faults.is_some());
        assert!(plan.standby && plan.journalled);
        let report = preflight_report(&plan);
        assert!(
            !report.diagnostics.iter().any(|d| d.rule.starts_with("R14")),
            "sane partition-tolerance flags pass the R140x gate:\n{}",
            report.render_table()
        );

        // The same standby without a journal trips R1405 pre-flight.
        let args = Args::parse(["--fleet", "2", "--fleet-standby", "127.0.0.1:7070"]);
        let plan = plan_for_args(
            "runbms",
            Methodology::Sweep,
            &["fop".to_string()],
            &SweepConfig::quick(),
            &args,
        )
        .expect("compiles");
        let report = preflight_report(&plan);
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "R1405"),
            "an unjournalled standby must trip R1405:\n{}",
            report.render_table()
        );
    }

    #[test]
    fn plan_for_args_reads_isolation_flags_and_gates_hard_faults() {
        // Hard faults under the default (thread) backend: the compiled
        // plan must trip R903 in the pre-flight report.
        let args = Args::parse(["--hard-faults", "kill", "--retries", "1"]);
        let plan = plan_for_args(
            "runbms",
            Methodology::Sweep,
            &["fop".to_string()],
            &SweepConfig::quick(),
            &args,
        )
        .expect("compiles");
        assert!(plan.hard_faults.is_some());
        let report = preflight_report(&plan);
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "R903"),
            "thread + hard faults must trip R903:\n{}",
            report.render_table()
        );

        // The same hard faults under process isolation pass the gate.
        let args = Args::parse(["--hard-faults", "kill", "--isolation", "process"]);
        let plan = plan_for_args(
            "runbms",
            Methodology::Sweep,
            &["fop".to_string()],
            &SweepConfig::quick(),
            &args,
        )
        .expect("compiles");
        if chopin_sandbox::supported() {
            let report = preflight_report(&plan);
            assert!(
                !report.diagnostics.iter().any(|d| d.rule == "R903"),
                "process isolation satisfies R903:\n{}",
                report.render_table()
            );
        }

        // An undersized explicit RLIMIT_AS override trips R901.
        let args = Args::parse(["--isolation", "process", "--rlimit-as-mb", "1"]);
        let plan = plan_for_args(
            "runbms",
            Methodology::Sweep,
            &["fop".to_string()],
            &SweepConfig::quick(),
            &args,
        )
        .expect("compiles");
        assert_eq!(plan.sandbox.rlimit_as_bytes, Some(1 << 20));
        if chopin_sandbox::supported() {
            let report = preflight_report(&plan);
            assert!(
                report.diagnostics.iter().any(|d| d.rule == "R901"),
                "a 1 MiB RLIMIT_AS cannot cover any cell:\n{}",
                report.render_table()
            );
        }
    }
}
