//! The `artifact lint` aggregator: static validation over everything the
//! harness can execute.
//!
//! [`chopin_lint::lint_suite`] covers the suite registry, every workload
//! profile, the nominal dataset, the collector models and the core sweep
//! configurations. This module extends that pass to the harness's own
//! preset configurations — the exact [`SweepConfig`]s and heap-factor
//! grids that `artifact lbo`, `artifact latency`, `artifact
//! kick-the-tires` and `artifact validate` execute — so a miscalibrated
//! preset fails CI without running a single simulation.

use chopin_core::sweep::SweepConfig;
use chopin_lint::LintReport;

/// The named sweep configurations the artifact presets execute.
pub fn preset_sweep_configs() -> Vec<(&'static str, SweepConfig)> {
    vec![
        ("preset:lbo", crate::presets::lbo_sweep_config()),
        ("preset:validate", crate::validate::scorecard_sweep_config()),
        ("preset:chaos", crate::presets::chaos_sweep_config()),
    ]
}

/// Run the full static-validation pass: the shipped suite plus every
/// harness preset configuration. Pure — nothing is simulated.
pub fn lint_all() -> LintReport {
    let mut diagnostics = chopin_lint::lint_suite().diagnostics;
    for (name, config) in preset_sweep_configs() {
        diagnostics.extend(chopin_lint::lint_sweep_config(name, &config));
        diagnostics.extend(chopin_lint::lint_lbo_grid(name, &config.heap_factors));
    }
    diagnostics.extend(chopin_lint::lint_lbo_grid(
        "preset:latency",
        &crate::presets::LATENCY_HEAP_FACTORS,
    ));
    diagnostics.extend(chopin_lint::lint_lbo_grid(
        "preset:kick-the-tires",
        &crate::presets::KICK_THE_TIRES_HEAP_FACTORS,
    ));
    // R6: the `artifact trace` default output configuration.
    diagnostics.extend(chopin_lint::lint_obs_config(
        "preset:trace",
        &chopin_obs::ObsConfig {
            trace_out: Some(crate::obs::DEFAULT_TRACE_OUT.to_string()),
            events_out: Some(crate::obs::DEFAULT_EVENTS_OUT.to_string()),
            ..chopin_obs::ObsConfig::default()
        },
    ));
    LintReport::new(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_presets_lint_clean() {
        let report = lint_all();
        assert!(
            report.diagnostics.is_empty(),
            "expected clean presets:\n{}",
            report.render_table()
        );
    }

    #[test]
    fn preset_configs_are_named_uniquely() {
        let configs = preset_sweep_configs();
        let mut names: Vec<&str> = configs.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), configs.len());
    }
}
